//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API subset the bench suite uses
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) on top of a
//! plain wall-clock harness: each benchmark is sampled `sample_size`
//! times (auto-batching very fast closures) and the median, minimum and
//! mean are printed. No statistics machinery, no plotting — enough to
//! compare configurations (e.g. thread counts) on one machine.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark: rendered as `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Filled in by `iter`: collected per-iteration durations.
    result: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    median: Duration,
    min: Duration,
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size so one sample lasts ≥ ~1 ms.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            per_iter.push(t.elapsed() / batch);
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let total: Duration = per_iter.iter().sum();
        let mean = total / per_iter.len() as u32;
        self.result = Some(Stats { median, min, mean });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(2),
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{full_id:<48} median {:>12}   min {:>12}   mean {:>12}",
            fmt_duration(s.median),
            fmt_duration(s.min),
            fmt_duration(s.mean)
        ),
        None => println!("{full_id:<48} (no measurement — iter() not called)"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    filter: Option<&'a str>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.matches(&full) {
            run_one(&full, self.samples, &mut f);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.matches(&full) {
            run_one(&full, self.samples, &mut |b| f(b, input));
        }
        self
    }

    pub fn finish(&mut self) {}

    fn matches(&self, full: &str) -> bool {
        self.filter.is_none_or(|f| full.contains(f))
    }
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads a substring filter from argv (ignores criterion's own
    /// `--bench`/`--test` harness flags).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
                break;
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            filter: self.filter.as_deref(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into().id;
        if self.filter.as_deref().is_none_or(|flt| full.contains(flt)) {
            run_one(&full, 20, &mut f);
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
