//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! primitives with parking_lot's non-poisoning API shape.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error (poisoned locks are
/// recovered, matching parking_lot's behavior of not having poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Reader-writer lock with the same non-poisoning shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
