//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! module implements the small API subset the workspace uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], `gen`, and `gen_range`
//! over integer and float ranges. The generator is xoshiro256** seeded
//! with splitmix64 — deterministic across platforms, which is all the
//! callers (seeded synthetic workload/DAG generators) rely on.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value of type `Self` from an `Rng`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a uniform sample of type `T` can be drawn from. Parameterized
/// over `T` (as in real rand) so `gen_range`'s return type drives the
/// inference of integer literals in the range expression.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer in `[0, n)` (Lemire-style).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Multiply-shift; the tiny modulo bias is irrelevant for chart data.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// random source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-cryptographic "thread rng": seeded from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..4.0f64);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut r = StdRng::seed_from_u64(9);
        let _ = r.gen_range(0..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }
}
