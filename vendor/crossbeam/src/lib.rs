//! Offline stand-in for `crossbeam`. Only the `deque` module is
//! provided, with the `Injector`/`Worker`/`Stealer` API the task-pool
//! crate uses. The lock-free algorithms are replaced by mutex-guarded
//! queues — semantics (FIFO injector, LIFO/FIFO worker deques, stealing
//! from the opposite end) are preserved, raw throughput is not the point
//! of this stand-in.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    /// A global FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Moves a batch into `worker`'s deque and pops one item.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half of the remaining items over.
            let batch = q.len() / 2;
            let mut dst = worker.shared.lock().unwrap();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => dst.push_back(v),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// Which end the owner pops from.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// A worker-owned deque. The owner pushes/pops at one end; stealers
    /// take from the other.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        pub fn new_lifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        pub fn push(&self, value: T) {
            self.shared.lock().unwrap().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            let mut q = self.shared.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Handle other workers use to steal from a [`Worker`].
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_fifo_order() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert!(matches!(inj.steal(), Steal::Success(1)));
            assert!(matches!(inj.steal(), Steal::Success(2)));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn batch_steal_moves_items() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(0)));
            assert!(!w.is_empty());
            let s = w.stealer();
            assert!(matches!(s.steal(), Steal::Success(_)));
        }
    }
}
