//! Offline stand-in for `crossbeam`. The `deque` module carries the
//! `Injector`/`Worker`/`Stealer` API the task-pool crate uses, and
//! [`scope`] carries the scoped-spawn API the chunked-ingest paths use.
//! The lock-free algorithms are replaced by mutex-guarded queues —
//! semantics (FIFO injector, LIFO/FIFO worker deques, stealing from the
//! opposite end) are preserved, raw throughput is not the point of this
//! stand-in.

pub mod thread {
    //! Scoped threads with the `crossbeam::scope` shape: spawned threads
    //! may borrow from the caller's stack, and all are joined before
    //! `scope` returns. Built on `std::thread::scope` (Rust ≥ 1.63).

    /// A scope handle; `spawn` borrows data living at least as long as
    /// the scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// returns `Ok(f's result)` once every spawned thread has been
    /// joined, or `Err` with the payload of the first panic.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod scope_tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let sums = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn panics_surface_through_join() {
        let res = super::scope(|s| s.spawn(|_| panic!("boom")).join());
        assert!(res.unwrap().is_err());
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    /// A global FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Moves a batch into `worker`'s deque and pops one item.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half of the remaining items over.
            let batch = q.len() / 2;
            let mut dst = worker.shared.lock().unwrap();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => dst.push_back(v),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// Which end the owner pops from.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// A worker-owned deque. The owner pushes/pops at one end; stealers
    /// take from the other.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        pub fn new_lifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        pub fn push(&self, value: T) {
            self.shared.lock().unwrap().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            let mut q = self.shared.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Handle other workers use to steal from a [`Worker`].
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_fifo_order() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert!(matches!(inj.steal(), Steal::Success(1)));
            assert!(matches!(inj.steal(), Steal::Success(2)));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn batch_steal_moves_items() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(0)));
            assert!(!w.is_empty());
            let s = w.stealer();
            assert!(matches!(s.steal(), Steal::Success(_)));
        }
    }
}
