//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, `Just`, `any`, collection and regex-string strategies, and
//! the `proptest!`/`prop_oneof!`/`prop_assert!` macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case is reported verbatim (test name,
//!   case number and the generated inputs) and the panic is propagated.
//! * **Deterministic seeding.** The RNG is seeded from the test's module
//!   path and name, so failures reproduce across runs without a
//!   persistence file (`.proptest-regressions` files are ignored).

pub mod test_runner {
    /// Run configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256** generator used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seeds deterministically from a test identifier (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy simply draws a value from the RNG.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter (rejection sampling with a retry cap).
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + Clone,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// Strategy driving [`Arbitrary`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Bounds for generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u64 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap` (duplicate keys collapse, so the size is
    /// an upper bound — same caveat as real proptest documents).
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet` (duplicates collapse).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from [`string_regex`] on an unsupported pattern.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One parsed regex atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Atom {
        /// Inclusive char ranges the atom can produce.
        ranges: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    /// Strategy generating strings matching a (subset) regex.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let span = (atom.max - atom.min) as u64 + 1;
                let count = atom.min + rng.below(span) as u32;
                let total: u64 = atom
                    .ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                for _ in 0..count {
                    let mut pick = rng.below(total);
                    for &(lo, hi) in &atom.ranges {
                        let size = hi as u64 - lo as u64 + 1;
                        if pick < size {
                            // Skip the surrogate gap if the range straddles it.
                            let cp = lo as u64 + pick;
                            let ch =
                                char::from_u32(cp as u32).unwrap_or(char::REPLACEMENT_CHARACTER);
                            out.push(ch);
                            break;
                        }
                        pick -= size;
                    }
                }
            }
            out
        }
    }

    /// The `.` metachar's alphabet: printable ASCII plus a little
    /// Unicode, excluding newline (as real proptest does by default).
    const DOT_RANGES: &[(char, char)] = &[(' ', '~'), ('¡', 'ÿ'), ('Ā', 'ſ'), ('☀', '☃')];

    /// Builds a strategy for strings matching a subset of regex syntax:
    /// literal chars, escapes, `.`, character classes with ranges, and
    /// the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (starred forms are
    /// capped at 8 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    let mut pending: Option<char> = None;
                    let mut closed = false;
                    while i < chars.len() {
                        let c = chars[i];
                        if c == ']' {
                            i += 1;
                            closed = true;
                            break;
                        }
                        let literal = if c == '\\' {
                            i += 1;
                            *chars
                                .get(i)
                                .ok_or_else(|| Error("trailing backslash in class".into()))?
                        } else {
                            c
                        };
                        if literal == '-'
                            && c != '\\'
                            && pending.is_some()
                            && i + 1 < chars.len()
                            && chars[i + 1] != ']'
                        {
                            // Range like `a-z` (or ` -~`).
                            let lo = pending.take().expect("checked above");
                            i += 1;
                            let mut hi = chars[i];
                            if hi == '\\' {
                                i += 1;
                                hi = *chars
                                    .get(i)
                                    .ok_or_else(|| Error("trailing backslash".into()))?;
                            }
                            if hi < lo {
                                return Err(Error(format!("bad class range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                        } else {
                            if let Some(p) = pending.take() {
                                ranges.push((p, p));
                            }
                            pending = Some(literal);
                        }
                        i += 1;
                    }
                    if !closed {
                        return Err(Error("unterminated character class".into()));
                    }
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    ranges
                }
                '.' => {
                    i += 1;
                    DOT_RANGES.to_vec()
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .ok_or_else(|| Error("trailing backslash".into()))?;
                    i += 1;
                    let lit = match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    vec![(lit, lit)]
                }
                '(' | ')' | '|' => {
                    return Err(Error(format!(
                        "unsupported regex construct {:?} in {pattern:?}",
                        chars[i]
                    )))
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };

            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .ok_or_else(|| Error("unterminated {} quantifier".into()))?
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        let parse = |s: &str| {
                            s.trim()
                                .parse::<u32>()
                                .map_err(|_| Error(format!("bad quantifier {body:?}")))
                        };
                        match body.split_once(',') {
                            Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                            None => {
                                let n = parse(&body)?;
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            if max < min {
                return Err(Error("quantifier max < min".into()));
            }
            atoms.push(Atom { ranges, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn class_with_ranges_and_escapes() {
            let s = string_regex("[A-Za-z_][A-Za-z0-9_.-]{0,12}").unwrap();
            let mut rng = TestRng::seed_from_u64(1);
            for _ in 0..200 {
                let v = s.generate(&mut rng);
                assert!(!v.is_empty() && v.len() <= 13);
                let first = v.chars().next().unwrap();
                assert!(first.is_ascii_alphabetic() || first == '_', "{v:?}");
            }
        }

        #[test]
        fn escaped_brackets_in_class() {
            let s = string_regex("[-0-9eE. ,;:{}\\[\\]<>a-zA-Z\"]{0,80}").unwrap();
            let mut rng = TestRng::seed_from_u64(2);
            for _ in 0..100 {
                let v = s.generate(&mut rng);
                assert!(v.chars().count() <= 80);
            }
        }

        #[test]
        fn dot_and_unicode_class() {
            let s = string_regex(".{0,200}").unwrap();
            let mut rng = TestRng::seed_from_u64(3);
            let v = s.generate(&mut rng);
            assert!(!v.contains('\n'));
            let s2 = string_regex("[ -~àéü☃𝄞]{0,40}").unwrap();
            for _ in 0..100 {
                let v = s2.generate(&mut rng);
                assert!(v.chars().count() <= 40);
            }
        }

        #[test]
        fn rejects_unsupported() {
            assert!(string_regex("(a|b)").is_err());
            assert!(string_regex("[abc").is_err());
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::…` path alias, as real proptest's prelude provides.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
            for __case in 0..__config.cases {
                let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                let __desc = format!("{:?}", __vals);
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ( $($pat,)+ ) = __vals;
                    $body
                }));
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest {}: case {}/{} failed with input: {}",
                        __test_name,
                        __case + 1,
                        __config.cases,
                        __desc
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn arb_tree(depth: u32) -> BoxedStrategy<Tree> {
        let leaf = (0u32..100).prop_map(Tree::Leaf);
        if depth == 0 {
            leaf.boxed()
        } else {
            prop_oneof![
                leaf,
                crate::collection::vec(arb_tree(depth - 1), 0..3).prop_map(Tree::Node),
            ]
            .boxed()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_and_ranges(x in 0u32..10, y in -5i64..=5, f in 0.0..1.0f64, b in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn collections(v in crate::collection::vec(0u8..4, 1..6),
                       m in crate::collection::btree_map(0u32..8, 0u32..8, 0..5),
                       s in crate::collection::btree_set(0u32..64, 0..20)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(m.len() < 5);
            prop_assert!(s.len() < 20);
        }

        #[test]
        fn recursive_strategies(t in arb_tree(3)) {
            fn depth(t: &Tree) -> u32 {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            prop_assert!(depth(&t) <= 4);
        }

        #[test]
        fn mut_bindings_work(mut v in crate::collection::vec(0i64..100, 0..10)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..6);
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
