#!/usr/bin/env bash
# Regenerates tests/goldens/digests.json, the golden-figure digests that
# CI verifies every run (see .github/workflows/ci.yml, job golden-figures).
#
# Run this after an intended visual change, then LOOK at the rendered
# artifacts in target/goldens/ before committing the new digests — the
# digests only prove the bytes changed, your eyes prove the change is
# the one you meant to make. The set includes .html explorer pages
# (fig13_birdseye.html, fig4_compare.html): their digests move whenever
# the embedded SVG, the meta JSON, or the explorer template
# (crates/render/src/explorer.html) changes — open the artifact in a
# browser to eyeball template edits.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p jedule-bench --bin goldens -- --update
echo "Artifacts for inspection:"
ls -l target/goldens/
git --no-pager diff -- tests/goldens/digests.json || true
echo "Review the artifacts, then commit tests/goldens/digests.json."
