#!/usr/bin/env bash
# Regenerates BENCH_gate.json, the perf-regression-gate baseline that CI
# diffs every run against (see .github/workflows/ci.yml, job perf-gate).
#
# CI runs the gate in quick mode, so the committed baseline must be a
# quick-mode recording; perfgate refuses to compare across modes. Run
# this on a quiet machine, inspect the diff, and commit it together with
# the change that moved the numbers.
#
# The long-form scale baselines (BENCH_birdseye.json, BENCH_ingest.json)
# are narrative documents updated by hand from full `cargo bench` runs;
# perfgate only cross-checks their acceptance sections.
set -euo pipefail
cd "$(dirname "$0")/.."

JEDULE_BENCH_QUICK=1 cargo run --release -p jedule-bench --bin perfgate -- --update
git --no-pager diff --stat -- BENCH_gate.json || true
echo "Review the diff above and commit BENCH_gate.json if it looks right."
