#!/usr/bin/env bash
# Regenerates BENCH_gate.json, the perf-regression-gate baseline that CI
# diffs every run against (see .github/workflows/ci.yml, job perf-gate).
#
# CI runs the gate in quick mode, so the committed baseline must be a
# quick-mode recording; perfgate refuses to compare across modes. Run
# this on a quiet machine, inspect the diff, and commit it together with
# the change that moved the numbers.
#
# The long-form scale baselines (BENCH_birdseye.json, BENCH_ingest.json,
# BENCH_serve.json) are narrative documents updated by hand from full
# `cargo bench` runs; perfgate only cross-checks their acceptance
# sections (every `<name>_speedup` key must meet `<name>_required`).
# When the render hot path changes, re-run
#   cargo bench -p jedule-bench --bench birdseye_scale
# on a quiet machine and recompute BENCH_birdseye.json's ratios from the
# criterion medians — in particular `soa_layout_1m_speedup`
# (= layout_only_auto / layout_prepared_auto at 1M tasks), the columnar
# storage gate, alongside the LOD and window-culling ratios.
# When the ingest or snapshot path changes, also re-run
#   cargo bench -p jedule-bench --bench pack_load
# and recompute BENCH_ingest.json's `jpack_load_1m_speedup`
# (= pack_cold/swf_parse_prepare / pack_cold/jpack_load at 1M tasks),
# the mmap-snapshot cold-load gate. BENCH_serve.json is rewritten
# whole by `cargo bench -p jedule-bench --bench serve_load`, including
# its `sidecar_cold_first_request_speedup` row.
set -euo pipefail
cd "$(dirname "$0")/.."

JEDULE_BENCH_QUICK=1 cargo run --release -p jedule-bench --bin perfgate -- --update
git --no-pager diff --stat -- BENCH_gate.json || true
echo "Review the diff above and commit BENCH_gate.json if it looks right."
echo "If the render hot path changed, also refresh BENCH_birdseye.json's"
echo "acceptance ratios from a full birdseye_scale run (see header)."
