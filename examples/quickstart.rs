//! Quickstart: build a small schedule by hand, save it in the Jedule XML
//! format of the paper's Fig. 1, and render it as SVG, PNG and an ANSI
//! preview right in the terminal.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use jedule::prelude::*;

fn main() {
    // A two-cluster system: an 8-host commodity cluster and a quad-core
    // machine. At least one cluster is required (paper, §II-C1).
    let schedule = ScheduleBuilder::new()
        .cluster(0, "cluster-0", 8)
        .cluster(1, "quadcore", 4)
        .meta("algorithm", "hand-made")
        .meta("note", "quickstart example")
        // The Fig. 1 task: computation on all 8 hosts of cluster 0.
        .task(Task::new("1", "computation", 0.0, 0.310).on(Allocation::contiguous(0, 0, 8)))
        // A transfer overlapping the computation — the overlap becomes an
        // orange composite task (Fig. 3).
        .task(Task::new("2", "transfer", 0.2, 0.45).on(Allocation::contiguous(0, 2, 4)))
        // A multiprocessor task with a *non-contiguous* allocation: Jedule
        // draws one rectangle per contiguous host run.
        .task(
            Task::new("3", "computation", 0.35, 0.6)
                .on(Allocation::new(0, HostSet::from_hosts([0, 1, 6, 7]))),
        )
        // A task spanning both clusters (e.g. an inter-cluster transfer).
        .task(
            Task::new("4", "transfer", 0.45, 0.55)
                .on(Allocation::contiguous(0, 7, 1))
                .on(Allocation::contiguous(1, 0, 1)),
        )
        .task(Task::new("5", "computation", 0.1, 0.5).on(Allocation::contiguous(1, 1, 3)))
        .build()
        .expect("schedule is valid");

    // Save the schedule in the paper's XML format.
    let xml = write_schedule_string(&schedule);
    std::fs::create_dir_all("target/examples").unwrap();
    std::fs::write("target/examples/quickstart.jed", &xml).unwrap();
    println!("wrote target/examples/quickstart.jed ({} bytes)", xml.len());

    // Round-trip check — the parser is the same one the CLI uses.
    let back = read_schedule(&xml).expect("round-trips");
    assert_eq!(back, schedule);

    // Batch rendering, as the command-line mode would do it.
    for (format, name) in [
        (OutputFormat::Svg, "quickstart.svg"),
        (OutputFormat::Png, "quickstart.png"),
        (OutputFormat::Pdf, "quickstart.pdf"),
    ] {
        let opts = RenderOptions::default()
            .with_format(format)
            .with_title("Jedule quickstart");
        let path = format!("target/examples/{name}");
        render_to_file(&schedule, &opts, &path).unwrap();
        println!("wrote {path}");
    }

    // Terminal preview (what `jedule view` shows interactively).
    let ansi = render(
        &schedule,
        &RenderOptions::default().with_format(OutputFormat::Ascii),
    );
    println!("{}", String::from_utf8_lossy(&ansi));

    // Interactive-mode semantics without a GUI: zoom, then inspect the
    // task under the "mouse".
    let mut view = ViewState::fit(&schedule);
    view.zoom_time(0.5, 0.3);
    if let Some(info) = view.click(&schedule, 0.25, 3.0) {
        println!(
            "clicked task {} [{}]: {:.3}..{:.3} on {:?}",
            info.id,
            info.kind,
            info.start,
            info.end,
            info.resources
                .iter()
                .map(|(c, _, h)| format!("cluster {c} hosts {h}"))
                .collect::<Vec<_>>()
        );
    }
}
