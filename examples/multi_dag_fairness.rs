//! The §IV case study: schedule a batch of mixed-parallel applications
//! on one cluster under the CRA policies, compare makespan vs fairness
//! (stretch), verify the resource constraint the Fig. 5 chart confirms,
//! and apply the conservative backfilling post-pass.
//!
//! ```text
//! cargo run --release --example multi_dag_fairness
//! ```

use jedule::dag::{layered, Dag, GenParams};
use jedule::prelude::*;
use jedule::sched::multidag::verify_partition;
use jedule::sched::{backfill, schedule_multi_dag, CraPolicy};

fn batch() -> Vec<Dag> {
    (0..4)
        .map(|i| {
            let mut d = layered(&GenParams {
                seed: 40 + i as u64,
                depth: 5,
                width: 3,
                work_mean: 20.0 * (1.0 + i as f64),
                ..GenParams::default()
            });
            d.name = format!("app{i}");
            d
        })
        .collect()
}

fn main() {
    let dags = batch();
    let procs = 20;

    println!("four applications on a cluster of {procs} processors\n");
    println!("policy      μ     makespan   max-stretch  mean-stretch  shares");
    for (policy, mu) in [
        (CraPolicy::Equal, 1.0),
        (CraPolicy::Work { mu: 0.0 }, 0.0),
        (CraPolicy::Work { mu: 0.5 }, 0.5),
        (CraPolicy::Width { mu: 0.0 }, 0.0),
        (CraPolicy::Width { mu: 0.5 }, 0.5),
    ] {
        let r = schedule_multi_dag(&dags, procs, 1.0, policy);
        // The check the Fig. 5 color map made visual: every application
        // stays within its processor range.
        verify_partition(&r).expect("resource constraint respected");
        println!(
            "{:<11} {:<5} {:<10.2} {:<12.3} {:<13.3} {:?}",
            policy.name(),
            mu,
            r.overall_makespan,
            r.max_stretch,
            r.mean_stretch,
            r.apps.iter().map(|a| a.share).collect::<Vec<_>>()
        );
    }

    // Render the CRA_WORK schedule with one color per application.
    let r = schedule_multi_dag(&dags, procs, 1.0, CraPolicy::Work { mu: 0.5 });
    let cmap = ColorMap::per_type("apps", ["app0", "app1", "app2", "app3"]);
    std::fs::create_dir_all("target/examples").unwrap();
    render_to_file(
        &r.schedule,
        &RenderOptions::default()
            .with_colormap(cmap)
            .with_title("CRA_WORK — four applications, one cluster"),
        "target/examples/multi_dag.svg",
    )
    .unwrap();

    // Conservative backfilling: same-application precedence is
    // over-approximated by start order within the app.
    let kinds: Vec<String> = r.schedule.tasks.iter().map(|t| t.kind.clone()).collect();
    let starts: Vec<f64> = r.schedule.tasks.iter().map(|t| t.start).collect();
    let report = backfill(&r.schedule, |i, j| {
        kinds[i] == kinds[j] && starts[i] < starts[j]
    });
    println!(
        "\nconservative backfilling: makespan {:.2} -> {:.2}, idle {:.1} -> {:.1} ({} tasks moved)",
        report.makespan_before,
        report.makespan_after,
        report.idle_before,
        report.idle_after,
        report.moved
    );
    jedule::sched::backfill::verify_no_delay(&r.schedule, &report.schedule)
        .expect("no task delayed — the check the paper made visually");
    println!("verified: no task was delayed by the backfilling step");
    println!("\nwrote target/examples/multi_dag.svg");
}
