//! The §V case study: schedule a Montage workflow with HEFT on the
//! heterogeneous Fig. 7 platform, once with the flawed platform
//! description (backbone latency == intra-cluster latency) and once with
//! the corrected one — and show why the makespan alone would have hidden
//! the problem.
//!
//! ```text
//! cargo run --release --example heft_montage
//! ```

use jedule::dag::montage;
use jedule::platform::{fig7_platform, fig7_platform_flawed, fig7_platform_realistic};
use jedule::prelude::*;
use jedule::sched::heft;

fn main() {
    let dag = montage(12); // ~50 compute nodes, as in the paper
    println!(
        "Montage workflow: {} tasks, {} edges",
        dag.task_count(),
        dag.edges.len()
    );

    // Export the workflow structure (the paper's Fig. 6).
    std::fs::create_dir_all("target/examples").unwrap();
    std::fs::write("target/examples/montage.dot", dag.to_dot()).unwrap();

    let flawed = fig7_platform_flawed();
    let realistic = fig7_platform_realistic();
    print!("{}", realistic.describe());

    let r_flawed = heft(&dag, &flawed);
    let r_real = heft(&dag, &realistic);

    println!("HEFT makespans:");
    println!("  flawed platform    : {:8.2} s", r_flawed.makespan);
    println!("  realistic platform : {:8.2} s", r_real.makespan);
    println!(
        "  -> nearly identical (paper: both 140.9 s). \"If we had only relied on this\n\
         \x20    metric to detect suspect behaviors, we would have missed the issue\n\
         \x20    highlighted by Jedule.\""
    );

    // What the chart reveals: where each mBackground task ran.
    println!("\nmBackground placements (task -> global host / cluster):");
    for (i, t) in dag.tasks.iter().enumerate() {
        if t.kind != "mBackground" {
            continue;
        }
        let hf = r_flawed.of(i).unwrap().host;
        let hr = r_real.of(i).unwrap().host;
        println!(
            "  {:<15} flawed: host {:>2} (cluster {})   realistic: host {:>2} (cluster {})",
            t.name,
            hf,
            flawed.host(hf).unwrap().cluster,
            hr,
            realistic.host(hr).unwrap().cluster,
        );
    }

    // How hard the backbone latency has to rise before the schedule
    // visibly consolidates.
    println!("\nbackbone latency sweep:");
    for mult in [1.0, 100.0, 10_000.0, 100_000.0] {
        let p = fig7_platform(1e-4 * mult);
        let r = heft(&dag, &p);
        let cross = dag
            .edges
            .iter()
            .filter(|e| {
                p.host(r.of(e.from).unwrap().host).unwrap().cluster
                    != p.host(r.of(e.to).unwrap().host).unwrap().cluster
            })
            .count();
        println!(
            "  latency x{mult:<9}: makespan {:8.2} s, {cross} inter-cluster edges",
            r.makespan
        );
    }

    // Render both schedules with one color per Montage stage, like the
    // paper's Figs. 8 and 9.
    let stage_map = ColorMap::per_type(
        "montage",
        [
            "mProjectPP",
            "mDiffFit",
            "mConcatFit",
            "mBgModel",
            "mBackground",
            "mImgtbl",
            "mAdd",
            "mShrink",
            "mJPEG",
        ],
    );
    for (r, name) in [(&r_flawed, "heft_flawed"), (&r_real, "heft_realistic")] {
        let opts = RenderOptions::default()
            .with_colormap(stage_map.clone())
            .with_title(format!("HEFT Montage — {name}"));
        render_to_file(&r.schedule, &opts, format!("target/examples/{name}.svg")).unwrap();
    }
    println!("\nwrote target/examples/heft_flawed.svg, heft_realistic.svg, montage.dot");
}
