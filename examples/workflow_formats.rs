//! Interchange formats and the three multi-DAG approaches.
//!
//! Demonstrates the extension points around the case studies:
//! * workflows as DAX files (how real Montage instances are shipped),
//! * platforms as editable XML (the §V bug was a platform-description
//!   bug — here the fix is a one-attribute edit),
//! * the three §IV-A approaches to scheduling multiple DAGs on one
//!   cluster: combined graph, constrained resource allocation, and
//!   moldable-job allotment.
//!
//! ```text
//! cargo run --release --example workflow_formats
//! ```

use jedule::dag::{layered, montage, read_dax, write_dax, GenParams};
use jedule::platform::{fig7_platform_flawed, read_platform, write_platform};
use jedule::sched::{heft, schedule_combined, schedule_moldable, schedule_multi_dag, CraPolicy};

fn main() {
    std::fs::create_dir_all("target/examples").unwrap();

    // ---- DAX round trip -----------------------------------------------
    let m = montage(10);
    let dax = write_dax(&m);
    std::fs::write("target/examples/montage.dax", &dax).unwrap();
    let from_dax = read_dax(&dax).expect("DAX parses");
    println!(
        "DAX: wrote montage-{} ({} bytes), read back {} tasks / {} edges",
        m.task_count(),
        dax.len(),
        from_dax.task_count(),
        from_dax.edges.len()
    );

    // ---- Platform XML: the §V fix as a file edit -----------------------
    let flawed_xml = write_platform(&fig7_platform_flawed());
    std::fs::write("target/examples/platform_flawed.xml", &flawed_xml).unwrap();
    let fixed_xml = flawed_xml.replace(
        r#"<backbone latency="0.0001""#,
        r#"<backbone latency="0.01""#,
    );
    std::fs::write("target/examples/platform_fixed.xml", &fixed_xml).unwrap();
    let flawed = read_platform(&flawed_xml).unwrap();
    let fixed = read_platform(&fixed_xml).unwrap();
    println!(
        "platform XML: backbone latency {} -> {} (one attribute edited)",
        flawed.backbone.latency, fixed.backbone.latency
    );

    // A DAX-sourced workflow schedules like any other DAG.
    let r = heft(&from_dax, &fixed);
    println!(
        "HEFT on the DAX-sourced Montage: makespan {:.2} s on {}\n",
        r.makespan, fixed.name
    );

    // ---- The three §IV-A multi-DAG approaches --------------------------
    let dags: Vec<_> = (0..4)
        .map(|i| {
            let mut d = layered(&GenParams {
                seed: 60 + i as u64,
                depth: 5,
                width: 3,
                work_mean: 15.0 * (1.0 + i as f64),
                ..GenParams::default()
            });
            d.name = format!("app{i}");
            d
        })
        .collect();
    let procs = 20;

    println!("approach             makespan   max-stretch  mean-stretch");
    let combined = schedule_combined(&dags, procs, 1.0);
    println!(
        "1 combined graph     {:<10.2} {:<12.3} {:.3}",
        combined.overall_makespan, combined.max_stretch, combined.mean_stretch
    );
    let cra = schedule_multi_dag(&dags, procs, 1.0, CraPolicy::Work { mu: 0.5 });
    println!(
        "2 CRA_WORK (μ=0.5)   {:<10.2} {:<12.3} {:.3}",
        cra.overall_makespan, cra.max_stretch, cra.mean_stretch
    );
    let moldable = schedule_moldable(&dags, procs, 1.0);
    println!(
        "3 moldable jobs      {:<10.2} {:<12.3} {:.3}",
        moldable.overall_makespan, moldable.max_stretch, moldable.mean_stretch
    );
    println!(
        "\nshares: CRA {:?} vs moldable {:?}",
        cra.apps.iter().map(|a| a.share).collect::<Vec<_>>(),
        moldable.apps.iter().map(|a| a.share).collect::<Vec<_>>()
    );
    println!("wrote target/examples/montage.dax, platform_flawed.xml, platform_fixed.xml");
}
