//! The §III case study: compare CPA and MCPA on mixed-parallel DAGs,
//! find the load-imbalance case the paper's Fig. 4 shows, and verify that
//! the MCPA2 poly-algorithm always matches the better of the two.
//!
//! ```text
//! cargo run --release --example cpa_vs_mcpa
//! ```

use jedule::core::stats::{idle_holes, schedule_stats};
use jedule::dag::{layered, GenParams};
use jedule::prelude::*;
use jedule::sched::cpa::{fig4_dag, FIG4_PROCS};
use jedule::sched::{schedule_dag, CpaVariant};

fn main() {
    // 1. The paper's sweep in miniature: several DAG shapes × seeds.
    println!("shape      seed   CPA        MCPA       winner");
    let mut mcpa_wins = 0;
    let mut cpa_wins = 0;
    for seed in 0..5u64 {
        for (shape, params) in [
            ("wide", GenParams::wide(seed)),
            ("long", GenParams::long(seed)),
            ("serial", GenParams::serial(seed)),
            ("irregular", GenParams::irregular(seed)),
        ] {
            let dag = layered(&params);
            let cpa = schedule_dag(&dag, 32, 1.0, CpaVariant::Cpa);
            let mcpa = schedule_dag(&dag, 32, 1.0, CpaVariant::Mcpa);
            let winner = if cpa.makespan < mcpa.makespan {
                cpa_wins += 1;
                "CPA"
            } else {
                mcpa_wins += 1;
                "MCPA"
            };
            println!(
                "{shape:<10} {seed:<5} {:<10.2} {:<10.2} {winner}",
                cpa.makespan, mcpa.makespan
            );
        }
    }
    println!("CPA wins {cpa_wins}, MCPA wins {mcpa_wins} — neither dominates, hence MCPA2\n");

    // 2. The Fig. 4 case: one precedence level with very unequal costs.
    let dag = fig4_dag();
    let cpa = schedule_dag(&dag, FIG4_PROCS, 1.0, CpaVariant::Cpa);
    let mcpa = schedule_dag(&dag, FIG4_PROCS, 1.0, CpaVariant::Mcpa);
    let poly = schedule_dag(&dag, FIG4_PROCS, 1.0, CpaVariant::Mcpa2);

    println!("Fig. 4 scenario on {FIG4_PROCS} processors:");
    for (name, r) in [("CPA", &cpa), ("MCPA", &mcpa), ("MCPA2", &poly)] {
        let stats = schedule_stats(&r.schedule);
        let holes = idle_holes(&r.schedule, 1.0);
        println!(
            "  {name:<6} makespan {:8.2}  utilization {:5.1} %  holes>1s {:3}  (T_CP {:.1}, T_A {:.1})",
            r.makespan,
            stats.utilization * 100.0,
            holes.len(),
            r.allocation.t_cp,
            r.allocation.t_a,
        );
    }
    assert!(cpa.makespan < mcpa.makespan, "the Fig. 4 shape favors CPA");
    assert_eq!(poly.makespan, cpa.makespan.min(mcpa.makespan));

    // 3. Render the side-by-side pair the paper shows.
    std::fs::create_dir_all("target/examples").unwrap();
    for (r, name) in [(&cpa, "fig4_cpa"), (&mcpa, "fig4_mcpa")] {
        let opts = RenderOptions::default()
            .with_title(format!("{} — makespan {:.1}", r.algorithm, r.makespan));
        render_to_file(&r.schedule, &opts, format!("target/examples/{name}.svg")).unwrap();
    }
    println!("\nwrote target/examples/fig4_cpa.svg and fig4_mcpa.svg");
    println!("note the large idle holes around the expensive task in the MCPA chart");
}
