//! The §VII case study: a bird's-eye view of one day of a 1024-node
//! production cluster, with one user's jobs highlighted — the paper's
//! Fig. 13. Pass a Standard Workload Format file to use a real PWA
//! trace; without arguments a calibrated synthetic Thunder day is used.
//!
//! ```text
//! cargo run --release --example workload_day [trace.swf [day_index]]
//! ```

use jedule::core::stats::schedule_stats;
use jedule::prelude::*;
use jedule::workloads::convert::workload_colormap;
use jedule::workloads::swf::filter_finished_on_day;
use jedule::workloads::{
    jobs_to_schedule, parse_swf, synth_thunder_day, ConvertOptions, ThunderParams,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let (jobs, opts) = match args.first() {
        Some(path) => {
            let src = std::fs::read_to_string(path).expect("read SWF file");
            let (header, all) = parse_swf(&src).expect("parse SWF");
            let nodes = header.max_nodes.or(header.max_procs).unwrap_or(1024);
            let day: usize = args.get(1).and_then(|d| d.parse().ok()).unwrap_or(0);
            let total = all.len();
            let jobs = filter_finished_on_day(all, day as f64 * 86_400.0);
            println!(
                "trace {} ({}): {} jobs total, {} finished on day {day}",
                path,
                header.computer.as_deref().unwrap_or("unknown machine"),
                total,
                jobs.len()
            );
            (
                jobs,
                ConvertOptions {
                    total_nodes: nodes,
                    cluster_name: header.computer.unwrap_or_else(|| "cluster".into()),
                    ..Default::default()
                },
            )
        }
        None => {
            let params = ThunderParams::default();
            println!(
                "no trace given — synthesizing a Thunder-like day: {} jobs, {} nodes, first {} reserved",
                params.jobs, params.nodes, params.reserved
            );
            (synth_thunder_day(&params), ConvertOptions::default())
        }
    };

    let schedule = jobs_to_schedule(&jobs, &opts);
    let stats = schedule_stats(&schedule);
    let highlighted = schedule
        .tasks
        .iter()
        .filter(|t| t.kind == "highlight")
        .count();
    println!(
        "schedule: {} jobs on {} nodes, utilization {:.1} %, {} jobs of user {} highlighted",
        stats.task_count,
        schedule.total_hosts(),
        stats.utilization * 100.0,
        highlighted,
        opts.highlight_user.unwrap_or(-1),
    );

    // Size histogram — the bird's-eye view is dominated by a few large
    // jobs, like the figure.
    let mut buckets = [0usize; 6];
    for t in &schedule.tasks {
        let p: u32 = t
            .attrs
            .iter()
            .find(|(k, _)| k == "procs")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(1);
        let b = match p {
            0..=1 => 0,
            2..=8 => 1,
            9..=32 => 2,
            33..=128 => 3,
            129..=512 => 4,
            _ => 5,
        };
        buckets[b] += 1;
    }
    println!(
        "job sizes: 1:{} 2-8:{} 9-32:{} 33-128:{} 129-512:{} >512:{}",
        buckets[0], buckets[1], buckets[2], buckets[3], buckets[4], buckets[5]
    );

    // Heaviest users — the candidates one would highlight.
    let wstats = jedule::workloads::workload_stats(&jobs);
    println!(
        "mean runtime {:.0} s, mean size {:.1} procs; top users by demand:",
        wstats.mean_runtime, wstats.mean_procs
    );
    for u in wstats.users.iter().take(3) {
        println!(
            "  user {:>6}: {:>4} jobs, {:.2e} processor-seconds",
            u.user, u.jobs, u.proc_seconds
        );
    }

    std::fs::create_dir_all("target/examples").unwrap();
    let mut ropts = RenderOptions::default()
        .with_size(1100.0, None)
        .with_colormap(workload_colormap())
        .with_title("one day of a 1024-node cluster (yellow = highlighted user)");
    ropts.show_labels = false; // 800+ rectangles: labels would be noise
    render_to_file(&schedule, &ropts, "target/examples/workload_day.svg").unwrap();
    println!("wrote target/examples/workload_day.svg");
}
