//! The §VI case study: run the task-parallel Quicksort on a *real*
//! multi-threaded task pool (tracing every get/execute interval), then
//! replay the same workload on the deterministic 64-worker NUMA
//! simulator that regenerates Figs. 11 and 12.
//!
//! ```text
//! cargo run --release --example taskpool_quicksort
//! ```

use jedule::prelude::*;
use jedule::taskpool::pool::{run_quicksort, PoolKind};
use jedule::taskpool::quicksort::{build_qs_tree, inverse_input, random_input, PivotStrategy};
use jedule::taskpool::sim::{simulate_tree, NumaModel, SimParams};
use jedule::taskpool::trace::{taskpool_colormap, trace_to_schedule, TraceScheduleOptions};

fn main() {
    std::fs::create_dir_all("target/examples").unwrap();

    // ---- Real execution on this machine's threads --------------------
    let n = 2_000_000;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get() as u32)
        .unwrap_or(4)
        .min(16);
    println!("real run: sorting {n} random integers on {workers} workers (work stealing)");
    let data = random_input(n, 1);
    let mut expect = data.clone();
    expect.sort_unstable();
    let t0 = std::time::Instant::now();
    let (spans, sorted) = run_quicksort(PoolKind::WorkStealing, workers, data, 16_384);
    assert_eq!(sorted, expect, "the pool really sorts");
    println!(
        "  sorted in {:.3} s wall clock, {} trace spans",
        t0.elapsed().as_secs_f64(),
        spans.len()
    );
    let schedule = trace_to_schedule(
        &spans,
        workers,
        &TraceScheduleOptions {
            min_span: 1e-4,
            ..Default::default()
        },
    );
    render_to_file(
        &schedule,
        &RenderOptions::default()
            .with_colormap(taskpool_colormap())
            .with_title("real task pool — quicksort trace"),
        "target/examples/quicksort_real.svg",
    )
    .unwrap();
    println!("  wrote target/examples/quicksort_real.svg (blue=exec, red=wait)\n");

    // ---- Simulated Altix 4700, the paper's machine --------------------
    let sim_n = 1 << 20;
    let params = SimParams {
        workers: 64,
        numa: NumaModel::altix(),
        ..SimParams::default()
    };

    // Fig. 11: random input, naive pivot.
    let (tree, _) = build_qs_tree(&random_input(sim_n, 1102), PivotStrategy::First, 512);
    let r11 = simulate_tree(&tree, &params);
    println!("fig-11 setting (random input, 64 simulated workers):");
    println!(
        "  {} tasks, makespan {:.3} s, utilization {:.1} %, single-worker time {:.1} %",
        tree.nodes.len(),
        r11.makespan,
        r11.utilization * 100.0,
        r11.single_worker_fraction() * 100.0
    );

    // Fig. 12: inversely sorted input, middle pivot.
    let (tree, _) = build_qs_tree(&inverse_input(sim_n), PivotStrategy::Middle, 512);
    let r12 = simulate_tree(&tree, &params);
    println!("fig-12 setting (inversely sorted input, middle pivot):");
    println!(
        "  {} tasks, makespan {:.3} s, single-worker time {:.1} % (paper: 'almost half')",
        tree.nodes.len(),
        r12.makespan,
        r12.single_worker_fraction() * 100.0
    );
    println!(
        "  root partition swaps every pair: {} swaps for {} elements",
        tree.nodes[0].swaps, sim_n
    );

    for (r, name) in [(&r11, "quicksort_fig11"), (&r12, "quicksort_fig12")] {
        let s = trace_to_schedule(
            &r.spans,
            64,
            &TraceScheduleOptions {
                min_span: r.makespan * 1e-4,
                ..Default::default()
            },
        );
        render_to_file(
            &s,
            &RenderOptions::default()
                .with_colormap(taskpool_colormap())
                .with_title(name.to_string()),
            format!("target/examples/{name}.svg"),
        )
        .unwrap();
    }
    println!("\nwrote target/examples/quicksort_fig11.svg and quicksort_fig12.svg");
}
