//! # jedule
//!
//! A Rust reproduction of **Jedule: A Tool for Visualizing Schedules of
//! Parallel Applications** (Hunold, Hoffmann, Suter; PSTI/ICPP-W 2010),
//! including every substrate its case studies depend on.
//!
//! ```
//! use jedule::prelude::*;
//!
//! // Build a schedule like the paper's Fig. 1 task ...
//! let schedule = ScheduleBuilder::new()
//!     .cluster(0, "cluster-0", 8)
//!     .task(Task::new("1", "computation", 0.0, 0.310)
//!         .on(Allocation::contiguous(0, 0, 8)))
//!     .build()
//!     .unwrap();
//!
//! // ... and render it with the Fig. 2 standard color map.
//! let svg = jedule::render::render(
//!     &schedule,
//!     &RenderOptions::default().with_title("quickstart"),
//! );
//! assert!(String::from_utf8(svg).unwrap().contains("<svg"));
//! ```
//!
//! Crate map (one module per sub-crate):
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`core`] | schedule model, color maps, composites, views | §II |
//! | [`xmlio`] | Jedule XML, color-map XML, CSV/JSONL parsers | §II-C |
//! | [`render`] | layout engine; SVG/PNG/PPM/PDF/ANSI back-ends | §II-D |
//! | [`platform`] | cluster/backbone platform models | §V (Fig. 7) |
//! | [`simx`] | discrete-event simulator (SimGrid substitute) | §III, §V |
//! | [`dag`] | moldable-task DAGs, generators, Montage | §III–§V |
//! | [`sched`] | CPA/MCPA/MCPA2, CRA multi-DAG, HEFT, backfilling | §III–§V |
//! | [`taskpool`] | task-pool runtime + quicksort + NUMA simulator | §VI |
//! | [`workloads`] | SWF traces, synthetic Thunder day | §VII |

pub use jedule_core as core;
pub use jedule_dag as dag;
pub use jedule_platform as platform;
pub use jedule_render as render;
pub use jedule_sched as sched;
pub use jedule_simx as simx;
pub use jedule_taskpool as taskpool;
pub use jedule_workloads as workloads;
pub use jedule_xmlio as xmlio;

/// The most common imports in one place.
pub mod prelude {
    pub use jedule_core::{
        AlignMode, Allocation, Cluster, Color, ColorMap, ColorPair, HostRange, HostSet, Schedule,
        ScheduleBuilder, Task, ViewState,
    };
    pub use jedule_render::{render, render_to_file, OutputFormat, RenderOptions};
    pub use jedule_xmlio::{read_schedule, write_schedule_string};
}
