//! Property-based tests over the core invariants, spanning crates.

use jedule::core::composite::{composite_tasks, CompositeOptions};
use jedule::core::stats::schedule_stats;
use jedule::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary valid schedule on one cluster of `hosts`.
fn arb_schedule(max_tasks: usize) -> impl Strategy<Value = Schedule> {
    let hosts = 16u32;
    let task = (
        0..hosts,      // first host
        1..=4u32,      // host count (clamped)
        0.0..100.0f64, // start
        0.01..20.0f64, // duration
        0..3u8,        // type selector
    );
    proptest::collection::vec(task, 1..max_tasks).prop_map(move |specs| {
        let mut b = ScheduleBuilder::new().cluster(0, "c0", hosts);
        for (i, (h, nb, start, dur, ty)) in specs.into_iter().enumerate() {
            let nb = nb.min(hosts - h);
            let kind = ["computation", "transfer", "io"][ty as usize];
            b =
                b.task(
                    Task::new(format!("t{i}"), kind, start, start + dur)
                        .on(Allocation::contiguous(0, h, nb.max(1))),
                );
        }
        b.build().expect("generated schedules are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XML round-trip is the identity on valid schedules.
    #[test]
    fn xml_roundtrip(s in arb_schedule(24)) {
        let xml = write_schedule_string(&s);
        prop_assert_eq!(read_schedule(&xml).unwrap(), s);
    }

    /// The CSV and JSON-lines formats round-trip too.
    #[test]
    fn alt_format_roundtrip(s in arb_schedule(16)) {
        let csv = jedule::xmlio::csvfmt::write_schedule_csv(&s);
        prop_assert_eq!(jedule::xmlio::csvfmt::read_schedule_csv(&csv).unwrap(), s.clone());
        let jl = jedule::xmlio::jsonl::write_schedule_jsonl(&s);
        prop_assert_eq!(jedule::xmlio::jsonl::read_schedule_jsonl(&jl).unwrap(), s);
    }

    /// Composite tasks only exist where ≥2 tasks genuinely overlap, and
    /// every composite interval is covered by all of its constituents.
    #[test]
    fn composites_are_sound(s in arb_schedule(16)) {
        let comps = composite_tasks(&s, &CompositeOptions::default());
        for c in &comps {
            let ids: Vec<&str> = c
                .attrs
                .iter()
                .find(|(k, _)| k == jedule::core::composite::ATTR_IDS)
                .map(|(_, v)| v.split('+').collect())
                .unwrap_or_default();
            prop_assert!(ids.len() >= 2);
            for id in ids {
                let t = s.task_by_id(id).expect("constituent exists");
                // The constituent spans the composite interval...
                prop_assert!(t.start <= c.start + 1e-9 && c.end <= t.end + 1e-9);
                // ...on every composite host.
                for a in &c.allocations {
                    for h in a.hosts.iter() {
                        prop_assert!(t.occupies(a.cluster, h));
                    }
                }
            }
        }
    }

    /// Utilization is always within [0, 1] and the makespan bounds every
    /// task interval.
    #[test]
    fn stats_invariants(s in arb_schedule(24)) {
        let st = schedule_stats(&s);
        prop_assert!((0.0..=1.0).contains(&st.utilization));
        let lo = s.min_start().unwrap();
        let hi = s.max_end().unwrap();
        prop_assert!((st.makespan - (hi - lo)).abs() < 1e-9);
        for t in &s.tasks {
            prop_assert!(t.start >= lo - 1e-9 && t.end <= hi + 1e-9);
        }
    }

    /// ViewState zoom/pan never escapes the full extent.
    #[test]
    fn view_clamping(s in arb_schedule(12), ops in proptest::collection::vec((0..3u8, -50.0..50.0f64, 0.1..4.0f64), 1..20)) {
        let mut v = ViewState::fit(&s);
        let full = v.viewport;
        for (op, amount, factor) in ops {
            match op {
                0 => v.zoom_time(factor, v.viewport.t0 + amount.abs() % v.viewport.time_span().max(1e-9)),
                1 => v.pan(amount, 0.0),
                _ => v.pan(0.0, amount),
            }
            prop_assert!(v.viewport.t0 >= full.t0 - 1e-9);
            prop_assert!(v.viewport.t1 <= full.t1 + 1e-9);
            prop_assert!(v.viewport.r0 >= full.r0 - 1e-9);
            prop_assert!(v.viewport.r1 <= full.r1 + 1e-9);
            prop_assert!(v.viewport.time_span() > 0.0);
        }
    }

    /// Conservative backfilling never delays a task, never changes a
    /// duration, and never increases total idle time.
    ///
    /// Precondition of the pass (as in the paper's batch setting): the
    /// input has exclusive resources — no two tasks overlap on a host.
    /// `arb_schedule` can generate composite-style overlaps, which
    /// backfilling would have to serialize; use the exclusive generator.
    #[test]
    fn backfill_is_conservative(s in arb_exclusive_schedule(16)) {
        let report = jedule::sched::backfill(&s, |_, _| false);
        jedule::sched::backfill::verify_no_delay(&s, &report.schedule).unwrap();
        prop_assert!(report.makespan_after <= report.makespan_before + 1e-9);
        prop_assert!(report.idle_after <= report.idle_before + 1e-9);
        // And the result is still a valid schedule.
        prop_assert!(jedule::core::validate(&report.schedule).is_empty());
    }

    /// The renderer never panics and always yields parseable SVG, for any
    /// valid schedule.
    #[test]
    fn svg_always_valid(s in arb_schedule(12)) {
        let svg = String::from_utf8(render(&s, &RenderOptions::default())).unwrap();
        prop_assert!(jedule::xmlio::xml::parse(&svg).is_ok());
    }
}

/// Strategy: a valid schedule whose tasks never overlap on any host —
/// each task is appended to its host lane after an idle gap.
fn arb_exclusive_schedule(max_tasks: usize) -> impl Strategy<Value = Schedule> {
    let hosts = 8u32;
    let task = (
        0..hosts,      // lane (single-host tasks keep lanes independent)
        0.0..5.0f64,   // idle gap before the task
        0.01..10.0f64, // duration
    );
    proptest::collection::vec(task, 1..max_tasks).prop_map(move |specs| {
        let mut b = ScheduleBuilder::new().cluster(0, "c0", hosts);
        let mut lane_end = vec![0.0f64; hosts as usize];
        for (i, (h, gap, dur)) in specs.into_iter().enumerate() {
            let start = lane_end[h as usize] + gap;
            lane_end[h as usize] = start + dur;
            b = b.task(
                Task::new(format!("t{i}"), "computation", start, start + dur)
                    .on(Allocation::contiguous(0, h, 1)),
            );
        }
        b.build().expect("generated schedules are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// HostSet behaves like a set of u32 (model-based check).
    #[test]
    fn hostset_model(hosts_a in proptest::collection::btree_set(0u32..64, 0..20),
                     hosts_b in proptest::collection::btree_set(0u32..64, 0..20)) {
        let a = HostSet::from_hosts(hosts_a.iter().copied());
        let b = HostSet::from_hosts(hosts_b.iter().copied());
        prop_assert_eq!(a.count() as usize, hosts_a.len());
        for h in 0..64u32 {
            prop_assert_eq!(a.contains(h), hosts_a.contains(&h));
        }
        let union: std::collections::BTreeSet<u32> = hosts_a.union(&hosts_b).copied().collect();
        let inter: std::collections::BTreeSet<u32> = hosts_a.intersection(&hosts_b).copied().collect();
        prop_assert_eq!(a.union(&b), HostSet::from_hosts(union));
        prop_assert_eq!(a.intersect(&b), HostSet::from_hosts(inter.iter().copied()));
        prop_assert_eq!(a.intersects(&b), !inter.is_empty());
    }

    /// Scheduler outputs always satisfy resource exclusivity and
    /// precedence, for random DAGs (the paper's "sanity checks").
    #[test]
    fn schedulers_always_feasible(seed in 0u64..500) {
        use jedule::dag::{layered, GenParams};
        use jedule::sched::{schedule_dag, CpaVariant};
        use jedule::sched::mapping::verify_mapping;
        let dag = layered(&GenParams { seed, depth: 4, width: 4, ..GenParams::default() });
        for variant in [CpaVariant::Cpa, CpaVariant::Mcpa] {
            let r = schedule_dag(&dag, 16, 1.0, variant);
            verify_mapping(&dag, &r.mapping).unwrap();
            prop_assert!(jedule::core::validate(&r.schedule).is_empty());
        }
    }

    /// Quicksort trees always sort, for arbitrary inputs.
    #[test]
    fn quicksort_always_sorts(mut data in proptest::collection::vec(-1000i64..1000, 0..300)) {
        use jedule::taskpool::quicksort::{build_qs_tree, PivotStrategy};
        let (_, sorted) = build_qs_tree(&data, PivotStrategy::Middle, 8);
        data.sort_unstable();
        prop_assert_eq!(sorted, data);
    }
}
