//! Cross-crate integration of the five case studies: each runs its full
//! substrate pipeline and checks the paper's qualitative claims.

use jedule::core::stats::schedule_stats;
use jedule::core::validate;
use jedule::prelude::*;

/// §III — CPA vs MCPA vs MCPA2 end to end, including XML round-trip of
/// the produced schedules and a simulator replay.
#[test]
fn case_study_mtask_scheduling() {
    use jedule::sched::cpa::{fig4_dag, FIG4_PROCS};
    use jedule::sched::{schedule_dag, CpaVariant};

    let dag = fig4_dag();
    let cpa = schedule_dag(&dag, FIG4_PROCS, 1.0, CpaVariant::Cpa);
    let mcpa = schedule_dag(&dag, FIG4_PROCS, 1.0, CpaVariant::Mcpa);
    let poly = schedule_dag(&dag, FIG4_PROCS, 1.0, CpaVariant::Mcpa2);

    // Fig. 4 claims.
    assert!(cpa.makespan < mcpa.makespan);
    assert_eq!(poly.makespan, cpa.makespan);
    let u = |s: &Schedule| schedule_stats(s).utilization;
    assert!(
        u(&cpa.schedule) > 2.0 * u(&mcpa.schedule),
        "MCPA leaves big holes"
    );

    // The schedules survive the XML pipeline.
    for r in [&cpa, &mcpa] {
        let xml = write_schedule_string(&r.schedule);
        assert_eq!(read_schedule(&xml).unwrap(), r.schedule);
    }

    // Simulator replay preserves the ordering of the algorithms.
    let platform = jedule::platform::homogeneous(FIG4_PROCS, 1.0);
    let sim_cpa = jedule::simx::simulate(&dag, &platform, &cpa.simx_mapping(&dag, 0)).unwrap();
    let sim_mcpa = jedule::simx::simulate(&dag, &platform, &mcpa.simx_mapping(&dag, 0)).unwrap();
    assert!(sim_cpa.makespan < sim_mcpa.makespan);
}

/// §IV — multi-DAG scheduling: partition constraint, stretch, fairness,
/// and backfilling without delay.
#[test]
fn case_study_multi_dag() {
    use jedule::dag::{layered, GenParams};
    use jedule::sched::multidag::verify_partition;
    use jedule::sched::{backfill, schedule_multi_dag, CraPolicy};

    let dags: Vec<_> = (0..4)
        .map(|i| {
            let mut d = layered(&GenParams {
                seed: 77 + i,
                ..GenParams::default()
            });
            d.name = format!("app{i}");
            d
        })
        .collect();

    let r = schedule_multi_dag(&dags, 20, 1.0, CraPolicy::Work { mu: 0.5 });
    verify_partition(&r).unwrap();
    assert!(validate(&r.schedule).is_empty());
    assert!(r.apps.iter().all(|a| a.stretch >= 0.999));
    assert!(r.max_stretch >= r.mean_stretch);

    let kinds: Vec<String> = r.schedule.tasks.iter().map(|t| t.kind.clone()).collect();
    let starts: Vec<f64> = r.schedule.tasks.iter().map(|t| t.start).collect();
    let report = backfill(&r.schedule, |i, j| {
        kinds[i] == kinds[j] && starts[i] < starts[j]
    });
    jedule::sched::backfill::verify_no_delay(&r.schedule, &report.schedule).unwrap();
    assert!(report.idle_after <= report.idle_before + 1e-9);
}

/// §V — HEFT on the Fig. 7 platform: valid schedules, the
/// makespan-equality phenomenon, and the multi-cluster Jedule view.
#[test]
fn case_study_heft_montage() {
    use jedule::dag::montage;
    use jedule::platform::{fig7_platform_flawed, fig7_platform_realistic};
    use jedule::sched::heft;

    let dag = montage(12);
    let flawed = heft(&dag, &fig7_platform_flawed());
    let real = heft(&dag, &fig7_platform_realistic());

    // "the overall makespan is the same for both schedules" — within a
    // small tolerance for our cost calibration.
    let ratio = real.makespan / flawed.makespan;
    assert!((0.95..=1.25).contains(&ratio), "ratio {ratio}");

    for r in [&flawed, &real] {
        assert!(validate(&r.schedule).is_empty());
        assert_eq!(r.schedule.clusters.len(), 4, "the multi-cluster view");
        // Every Montage stage appears as its own task type.
        assert!(r.schedule.task_types().len() == 9);
    }

    // Render with per-stage coloring, like Figs. 8/9.
    let svg = String::from_utf8(render(
        &real.schedule,
        &RenderOptions::default()
            .with_colormap(ColorMap::per_type("montage", real.schedule.task_types())),
    ))
    .unwrap();
    assert!(svg.contains("mBackground"));
}

/// §VI — the task pool: a real threaded run whose trace becomes a valid
/// Jedule schedule, and the simulated Fig. 12 half-time phenomenon.
#[test]
fn case_study_taskpool() {
    use jedule::taskpool::pool::{run_quicksort, PoolKind};
    use jedule::taskpool::quicksort::{build_qs_tree, inverse_input, PivotStrategy};
    use jedule::taskpool::sim::{simulate_tree, SimParams};
    use jedule::taskpool::trace::{trace_to_schedule, TraceScheduleOptions};

    // Real pool.
    let data = jedule::taskpool::quicksort::random_input(50_000, 3);
    let mut expect = data.clone();
    expect.sort_unstable();
    let (spans, sorted) = run_quicksort(PoolKind::WorkStealing, 4, data, 2048);
    assert_eq!(sorted, expect);
    let schedule = trace_to_schedule(&spans, 4, &TraceScheduleOptions::default());
    assert!(validate(&schedule).is_empty());
    assert!(schedule.tasks.iter().any(|t| t.kind == "exec"));

    // Simulated Fig. 12.
    let (tree, check) = build_qs_tree(&inverse_input(1 << 16), PivotStrategy::Middle, 512);
    assert!(check.windows(2).all(|w| w[0] <= w[1]));
    let report = simulate_tree(
        &tree,
        &SimParams {
            workers: 32,
            ..SimParams::default()
        },
    );
    let frac = report.single_worker_fraction();
    assert!((0.25..0.75).contains(&frac), "Fig. 12 fraction {frac}");
}

/// §VII — SWF → assignment → schedule → render pipeline with reserved
/// nodes and user highlighting.
#[test]
fn case_study_workload() {
    use jedule::workloads::swf::write_swf;
    use jedule::workloads::{
        jobs_to_schedule, parse_swf, synth_thunder_day, ConvertOptions, ThunderParams,
    };

    let params = ThunderParams {
        nodes: 256,
        reserved: 8,
        jobs: 200,
        users: 10,
        ..ThunderParams::default()
    };
    let mut jobs = synth_thunder_day(&params);
    // Synthetic day-relative times may start before t=0 (long jobs from
    // "yesterday"); real SWF submit times are nonnegative, so present the
    // day as day 1 of an archive.
    for j in &mut jobs {
        j.submit += 86_400.0;
    }

    // Round-trip through the SWF format, like a real archive file.
    let swf_text = write_swf(&Default::default(), &jobs);
    let (_, parsed) = parse_swf(&swf_text).unwrap();
    assert_eq!(parsed.len(), jobs.len());

    let opts = ConvertOptions {
        total_nodes: params.nodes,
        reserved: params.reserved,
        ..Default::default()
    };
    let schedule = jobs_to_schedule(&parsed, &opts);
    assert!(validate(&schedule).is_empty());
    for host in 0..params.reserved {
        assert!(schedule.tasks_on_host(0, host).is_empty());
    }

    // The bird's-eye view renders (no labels at this density).
    let ropts = RenderOptions {
        show_labels: false,
        ..Default::default()
    };
    let png = render(&schedule, &ropts.with_format(OutputFormat::Png));
    assert_eq!(&png[1..4], b"PNG");
}
