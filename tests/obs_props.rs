//! Property tests for the observability layer (DESIGN.md §6): turning
//! instrumentation on must never change what the pipeline produces, the
//! counters must partition the work they count, and the exported trace
//! must be well-formed with properly nested spans.

use jedule::core::obs::{self, Collector};
use jedule::core::PreparedSchedule;
use jedule::prelude::*;
use jedule::render::LodMode;
use proptest::prelude::*;

/// Strategy: an arbitrary valid schedule on one cluster of `hosts`.
fn arb_schedule(max_tasks: usize) -> impl Strategy<Value = Schedule> {
    let hosts = 16u32;
    let task = (
        0..hosts,      // first host
        1..=4u32,      // host count (clamped)
        0.0..100.0f64, // start
        0.01..20.0f64, // duration
        0..3u8,        // type selector
    );
    proptest::collection::vec(task, 1..max_tasks).prop_map(move |specs| {
        let mut b = ScheduleBuilder::new().cluster(0, "c0", hosts);
        for (i, (h, nb, start, dur, ty)) in specs.into_iter().enumerate() {
            let nb = nb.min(hosts - h);
            let kind = ["computation", "transfer", "io"][ty as usize];
            b =
                b.task(
                    Task::new(format!("t{i}"), kind, start, start + dur)
                        .on(Allocation::contiguous(0, h, nb.max(1))),
                );
        }
        b.build().expect("generated schedules are valid")
    })
}

fn formats() -> [OutputFormat; 4] {
    [
        OutputFormat::Svg,
        OutputFormat::Png,
        OutputFormat::Ppm,
        OutputFormat::Ascii,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A render under a live collector is byte-identical to the same
    /// render with no instrumentation installed, for every back-end.
    /// (threads = 1: the sequential path is the byte-identity anchor.)
    #[test]
    fn instrumented_render_is_byte_identical(s in arb_schedule(16), lod in 0..3usize) {
        for format in formats() {
            let mut opts = RenderOptions::default().with_format(format);
            opts.threads = 1;
            opts.lod = [LodMode::Auto, LodMode::Off, LodMode::Force][lod];
            let plain = render(&s, &opts);
            let col = Collector::new();
            let instrumented = {
                let _g = col.install();
                render(&s, &opts)
            };
            prop_assert_eq!(&plain, &instrumented, "format {:?} differs", format);
            // And the collector really was live for that render.
            prop_assert!(col.report().stage_total_ms("render") > 0.0);
        }
    }

    /// Every task the parser counted in ends up in exactly one of the
    /// renderer's buckets: drawn directly, folded into an LOD strip,
    /// culled by the window index, or clipped by classify.
    #[test]
    fn counters_partition_the_tasks(s in arb_schedule(24), window_sel in 0.0..1.0f64) {
        // Roughly one run in four renders the full extent (no window).
        let window = (window_sel < 0.75).then_some(window_sel);
        let csv = jedule::xmlio::write_schedule_csv(&s);
        let col = Collector::new();
        {
            let _g = col.install();
            let parsed = jedule::xmlio::parse_any(&csv, None).unwrap();
            let mut opts = RenderOptions {
                threads: 1,
                ..RenderOptions::default()
            };
            if let Some(w0) = window {
                // A window inside the extent so culling actually fires.
                opts.time_window = Some((w0 * 100.0, w0 * 100.0 + 25.0));
            }
            render(&parsed, &opts);
        }
        let r = col.report();
        let parsed = r.counter("ingest.tasks_parsed");
        let buckets = r.counter("render.tasks_direct")
            + r.counter("render.tasks_lod_binned")
            + r.counter("render.tasks_culled")
            + r.counter("render.tasks_clipped");
        prop_assert_eq!(parsed, buckets,
            "direct {} + lod {} + culled {} + clipped {} != parsed {}",
            r.counter("render.tasks_direct"),
            r.counter("render.tasks_lod_binned"),
            r.counter("render.tasks_culled"),
            r.counter("render.tasks_clipped"),
            parsed);
    }

    /// The exported Chrome trace is well-formed JSON, every span's
    /// parent exists, and children lie within their parent's interval
    /// on the same thread.
    #[test]
    fn exported_trace_is_wellformed_and_nested(s in arb_schedule(16)) {
        let col = Collector::new();
        {
            let _g = col.install();
            let prep = PreparedSchedule::new(s);
            prep.warm();
            let mut opts = RenderOptions::default().with_format(OutputFormat::Png);
            opts.threads = 1;
            jedule::render::render_prepared(&prep, &opts);
        }
        let report = col.report();
        let doc = jedule::xmlio::json::parse(&report.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        prop_assert_eq!(events.len(), report.spans.len());
        for ev in events {
            prop_assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
            prop_assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
            prop_assert!(ev.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            prop_assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
        }
        // Nesting, on the span records themselves (the trace mirrors
        // them one-to-one, as asserted above).
        const SLACK_US: f64 = 1.0; // sub-µs clock granularity
        for span in &report.spans {
            let Some(pid) = span.parent else { continue };
            let parent = report.find(pid).expect("parent span exists");
            prop_assert_eq!(parent.thread, span.thread, "parents are per-thread");
            prop_assert!(span.start_us + SLACK_US >= parent.start_us,
                "child {} starts before parent {}", span.name, parent.name);
            prop_assert!(span.end_us() <= parent.end_us() + SLACK_US,
                "child {} ends after parent {}", span.name, parent.name);
        }
        // The metrics view agrees with the span records.
        let metrics = jedule::xmlio::json::parse(&report.to_metrics_json()).unwrap();
        let render_ms = metrics
            .get("stages").and_then(|st| st.get("render"))
            .and_then(|r| r.get("wall_ms")).and_then(|w| w.as_f64())
            .unwrap();
        // wall_ms is serialized with 4 decimals; allow that rounding.
        prop_assert!((render_ms - report.stage_total_ms("render")).abs() < 1e-3);
    }
}

/// The round-trip demo from the README: a trace exported by the
/// observability layer is itself a schedule Jedule can ingest.
#[test]
fn exported_trace_feeds_back_into_ingest() {
    let col = Collector::new();
    {
        let _g = col.install();
        let _outer = obs::span("render");
        let _inner = obs::span("render.layout");
        std::hint::black_box(0);
    }
    let trace = col.report().to_chrome_trace();
    let schedule = jedule::xmlio::parse_any(&trace, None).expect("trace parses as a schedule");
    assert_eq!(schedule.tasks.len(), 2);
    assert_eq!(schedule.meta.get("source"), Some("chrome-trace"));
}
