//! End-to-end pipeline: scheduler → Jedule schedule → XML round-trip →
//! every rendering back-end, across crate boundaries.

use jedule::prelude::*;
use jedule::render::{ppm, OutputFormat};

fn demo_schedule() -> Schedule {
    ScheduleBuilder::new()
        .cluster(0, "c0", 8)
        .cluster(1, "c1", 4)
        .meta("alg", "demo")
        .task(Task::new("1", "computation", 0.0, 4.0).on(Allocation::contiguous(0, 0, 8)))
        .task(Task::new("2", "transfer", 3.0, 5.0).on(Allocation::contiguous(0, 2, 2)))
        .task(
            Task::new("3", "computation", 1.0, 6.0)
                .on(Allocation::new(1, HostSet::from_hosts([0, 2, 3]))),
        )
        .build()
        .unwrap()
}

#[test]
fn xml_roundtrip_then_render_all_backends() {
    let s = demo_schedule();
    let xml = write_schedule_string(&s);
    let back = read_schedule(&xml).unwrap();
    assert_eq!(back, s);

    for format in [
        OutputFormat::Svg,
        OutputFormat::Png,
        OutputFormat::Jpeg,
        OutputFormat::Ppm,
        OutputFormat::Pdf,
        OutputFormat::Ascii,
        OutputFormat::Html,
    ] {
        let opts = RenderOptions::default().with_format(format);
        let bytes = render(&back, &opts);
        assert!(!bytes.is_empty(), "{format:?} produced no output");
        match format {
            OutputFormat::Svg => {
                let text = String::from_utf8(bytes).unwrap();
                assert!(text.starts_with("<svg"));
                // SVG must be valid XML per our own parser.
                assert!(jedule::xmlio::xml::parse(&text).is_ok());
            }
            OutputFormat::Png => {
                assert_eq!(&bytes[1..4], b"PNG");
            }
            OutputFormat::Jpeg => {
                assert_eq!(&bytes[..2], &[0xff, 0xd8]);
                // The verification decoder reads our own output back.
                let canvas = jedule::render::jpeg::decode(&bytes).expect("valid JPEG");
                assert!(canvas.width > 100);
            }
            OutputFormat::Ppm => {
                let canvas = ppm::decode(&bytes).expect("valid PPM");
                assert!(canvas.width > 100);
            }
            OutputFormat::Pdf => {
                assert!(bytes.starts_with(b"%PDF-1.4"));
                assert!(String::from_utf8_lossy(&bytes).contains("%%EOF"));
            }
            OutputFormat::Ascii => {
                assert!(String::from_utf8(bytes).unwrap().contains('\n'));
            }
            OutputFormat::Html => {
                let page = String::from_utf8(bytes).unwrap();
                assert!(page.contains("<svg"), "explorer embeds the SVG scene");
                assert!(!page.contains("__JEDULE_"), "placeholders all filled");
            }
        }
    }
}

#[test]
fn render_sizes_scale_with_options() {
    let s = demo_schedule();
    let small = render(
        &s,
        &RenderOptions::default()
            .with_format(OutputFormat::Png)
            .with_size(200.0, Some(150.0)),
    );
    let large = render(
        &s,
        &RenderOptions::default()
            .with_format(OutputFormat::Png)
            .with_size(1200.0, Some(900.0)),
    );
    assert!(large.len() > small.len());
}

#[test]
fn grayscale_render_has_no_color_pixels() {
    let s = demo_schedule();
    let opts = RenderOptions::default()
        .with_format(OutputFormat::Ppm)
        .grayscale();
    let bytes = render(&s, &opts);
    let canvas = ppm::decode(&bytes).unwrap();
    for y in 0..canvas.height {
        for x in 0..canvas.width {
            let c = canvas.get(x, y).unwrap();
            assert!(c.r == c.g && c.g == c.b, "colored pixel at {x},{y}: {c:?}");
        }
    }
}

#[test]
fn cluster_filter_and_window_compose() {
    let s = demo_schedule();
    let opts = RenderOptions {
        cluster: Some(1),
        time_window: Some((2.0, 5.0)),
        ..Default::default()
    };
    let svg = String::from_utf8(render(&s, &opts)).unwrap();
    // Only cluster c1's panel is drawn.
    assert!(svg.contains(">c1<"));
    assert!(!svg.contains(">c0<"));
}

#[test]
fn composite_overlap_appears_in_svg() {
    let s = demo_schedule();
    let with = RenderOptions {
        show_composites: true,
        ..Default::default()
    };
    let without = RenderOptions {
        show_composites: false,
        ..Default::default()
    };
    let svg_with = String::from_utf8(render(&s, &with)).unwrap();
    let svg_without = String::from_utf8(render(&s, &without)).unwrap();
    // The composite legend entry and orange fill only exist when enabled.
    assert!(svg_with.contains("composite"));
    assert!(!svg_without.contains("composite"));
    assert!(svg_with.contains("#ff6200"));
}

#[test]
fn schedule_written_and_reloaded_from_disk() {
    let dir = std::env::temp_dir().join("jedule_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.jed");
    let s = demo_schedule();
    jedule::xmlio::write_schedule(&s, &path).unwrap();
    let back = jedule::xmlio::read_schedule_file(&path).unwrap();
    assert_eq!(back, s);
}
