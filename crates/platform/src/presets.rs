//! Platform constructors for the paper's case studies.

use crate::model::{ClusterSpec, Link, Platform};

/// Default intra-cluster host link: 100 µs latency, 1 GB/s — a commodity
/// gigabit-class switch.
pub const DEFAULT_HOST_LINK: Link = Link {
    latency: 1e-4,
    bandwidth: 1.25e9,
};

/// A single homogeneous cluster of `hosts` processors at `speed_gflops`
/// (the §III and §IV platforms: "smaller cluster with 32 processors to
/// bigger ones").
pub fn homogeneous(hosts: u32, speed_gflops: f64) -> Platform {
    Platform::new(
        format!("homogeneous-{hosts}"),
        vec![ClusterSpec {
            id: 0,
            name: format!("cluster-{hosts}x{speed_gflops}"),
            hosts,
            speed_gflops,
            host_link: DEFAULT_HOST_LINK,
        }],
        // A backbone exists but is unused with a single cluster.
        Link::new(1e-3, 1.25e9),
    )
}

/// Several identical homogeneous clusters behind one backbone.
pub fn multi_homogeneous(clusters: u32, hosts_each: u32, speed_gflops: f64) -> Platform {
    let specs = (0..clusters)
        .map(|i| ClusterSpec {
            id: i,
            name: format!("cluster-{i}"),
            hosts: hosts_each,
            speed_gflops,
            host_link: DEFAULT_HOST_LINK,
        })
        .collect();
    Platform::new(
        format!("multi-{clusters}x{hosts_each}"),
        specs,
        Link::new(1e-3, 1.25e9),
    )
}

/// The heterogeneous platform of the paper's Fig. 7:
///
/// * two clusters of four processors at 1.65 Gflop/s,
/// * two clusters of two processors at 3.3 Gflop/s (twice as fast),
/// * each processor has its own link, clusters joined by a single
///   backbone.
///
/// Host numbering follows the Fig. 8 discussion: "the two fast clusters
/// (processors 0-1 and 6-7)", so the order is fast(2), slow(4), fast(2),
/// slow(4) — twelve processors total.
///
/// `backbone_latency` is the knob the case study turns: the flawed
/// description used the intra-cluster latency (1e-4 s) for the backbone
/// too; the corrected description uses a much larger value.
pub fn fig7_platform(backbone_latency: f64) -> Platform {
    let fast = |id: u32| ClusterSpec {
        id,
        name: format!("fast-{id}"),
        hosts: 2,
        speed_gflops: 3.3,
        host_link: DEFAULT_HOST_LINK,
    };
    let slow = |id: u32| ClusterSpec {
        id,
        name: format!("slow-{id}"),
        hosts: 4,
        speed_gflops: 1.65,
        host_link: DEFAULT_HOST_LINK,
    };
    Platform::new(
        "fig7-heterogeneous",
        vec![fast(0), slow(1), fast(2), slow(3)],
        Link::new(backbone_latency, 1.25e9),
    )
}

/// The flawed Fig. 7 variant: backbone latency equal to the intra-cluster
/// link latency (what the §V case study started from).
pub fn fig7_platform_flawed() -> Platform {
    fig7_platform(DEFAULT_HOST_LINK.latency)
}

/// The corrected Fig. 7 variant: a realistic two-orders-of-magnitude
/// higher backbone latency.
pub fn fig7_platform_realistic() -> Platform {
    fig7_platform(DEFAULT_HOST_LINK.latency * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_shape() {
        let p = homogeneous(32, 1.0);
        assert_eq!(p.total_hosts(), 32);
        assert_eq!(p.clusters.len(), 1);
        assert_eq!(p.speed_of(31), Some(1.0));
    }

    #[test]
    fn multi_homogeneous_shape() {
        let p = multi_homogeneous(3, 8, 2.0);
        assert_eq!(p.total_hosts(), 24);
        assert_eq!(p.clusters.len(), 3);
        assert_eq!(p.host(23).unwrap().cluster, 2);
    }

    #[test]
    fn fig7_matches_paper() {
        let p = fig7_platform_flawed();
        assert_eq!(p.total_hosts(), 12);
        assert_eq!(p.clusters.len(), 4);
        // Fast clusters: processors 0-1 and 6-7 at 3.3 Gflop/s.
        for g in [0, 1, 6, 7] {
            assert_eq!(p.speed_of(g), Some(3.3), "host {g}");
        }
        // Slow clusters: processors 2-5 and 8-11 at 1.65 Gflop/s.
        for g in [2, 3, 4, 5, 8, 9, 10, 11] {
            assert_eq!(p.speed_of(g), Some(1.65), "host {g}");
        }
        // Fast hosts are exactly twice as fast.
        assert!((p.exec_time(2, 3.3).unwrap() - 2.0).abs() < 1e-12);
        assert!((p.exec_time(0, 3.3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flawed_platform_has_cheap_backbone() {
        let flawed = fig7_platform_flawed();
        // Inter-cluster latency ≈ intra-cluster latency (the bug).
        let intra = flawed.route(2, 3).unwrap().latency;
        let inter = flawed.route(0, 2).unwrap().latency;
        assert!(inter < intra * 2.0, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn realistic_platform_penalizes_backbone() {
        let real = fig7_platform_realistic();
        let intra = real.route(2, 3).unwrap().latency;
        let inter = real.route(0, 2).unwrap().latency;
        assert!(inter > intra * 10.0, "inter {inter} vs intra {intra}");
    }
}
