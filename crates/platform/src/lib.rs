//! # jedule-platform
//!
//! Execution-platform models for the Jedule reproduction's case studies.
//!
//! The paper's experiments run on (simulated) parallel platforms:
//! homogeneous clusters for the CPA/MCPA and multi-DAG studies
//! (§III, §IV) and a heterogeneous multi-cluster for the HEFT/Montage
//! study (§V, Fig. 7). This crate models those platforms: clusters of
//! hosts with per-host compute speeds, per-host communication links, a
//! switch per cluster and a backbone interconnecting clusters. Routing
//! returns the effective latency and bottleneck bandwidth between any two
//! hosts — the quantity the §V case study's bug hinged on (the backbone
//! latency accidentally set equal to the intra-cluster latency).

pub mod model;
pub mod presets;
pub mod xmlfmt;

pub use model::{ClusterSpec, GlobalHost, Link, Platform, Route};
pub use presets::{
    fig7_platform, fig7_platform_flawed, fig7_platform_realistic, homogeneous, multi_homogeneous,
};
pub use xmlfmt::{read_platform, read_platform_file, write_platform};
