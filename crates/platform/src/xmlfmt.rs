//! Platform-description XML.
//!
//! The §V case study turned on a *platform description* bug: "the reason
//! for the strange behavior … was in fact the description of the
//! execution platform used for the simulation". This module gives the
//! reproduction the same workflow — platforms live in files the
//! experimenter edits (a SimGrid-flavored XML subset):
//!
//! ```xml
//! <platform name="fig7">
//!   <backbone latency="1e-2" bandwidth="1.25e9"/>
//!   <cluster id="0" name="fast-0" hosts="2" speed="3.3Gf"
//!            link_latency="1e-4" link_bandwidth="1.25e9"/>
//! </platform>
//! ```
//!
//! `speed` accepts a plain number (Gflop/s) or a `Gf`/`Mf` suffix.

use crate::model::{ClusterSpec, Link, Platform};
use jedule_xmlio::xml::{self, Element};
use jedule_xmlio::IoError;
use std::path::Path;

fn parse_speed(v: &str) -> Result<f64, IoError> {
    let t = v.trim();
    let (num, mult) = if let Some(n) = t.strip_suffix("Gf") {
        (n, 1.0)
    } else if let Some(n) = t.strip_suffix("Mf") {
        (n, 1e-3)
    } else {
        (t, 1.0)
    };
    num.trim()
        .parse::<f64>()
        .map(|x| x * mult)
        .map_err(|_| IoError::number("speed", v))
}

fn parse_f64(field: &str, v: &str) -> Result<f64, IoError> {
    v.trim().parse().map_err(|_| IoError::number(field, v))
}

/// Reads a platform from XML text.
pub fn read_platform(src: &str) -> Result<Platform, IoError> {
    let root = xml::parse(src)?;
    if root.name != "platform" {
        return Err(IoError::format(format!(
            "expected <platform> root element, found <{}>",
            root.name
        )));
    }
    let name = root.get_attr("name").unwrap_or("platform").to_string();

    let backbone = match root.find("backbone") {
        Some(b) => Link::new(
            parse_f64("backbone latency", b.require_attr("latency")?)?,
            parse_f64("backbone bandwidth", b.require_attr("bandwidth")?)?,
        ),
        None => Link::new(1e-3, 1.25e9),
    };

    let mut clusters = Vec::new();
    for c in root.find_all("cluster") {
        let id: u32 = c
            .require_attr("id")?
            .trim()
            .parse()
            .map_err(|_| IoError::number("cluster id", c.get_attr("id").unwrap_or("")))?;
        let hosts: u32 = c
            .require_attr("hosts")?
            .trim()
            .parse()
            .map_err(|_| IoError::number("cluster hosts", c.get_attr("hosts").unwrap_or("")))?;
        clusters.push(ClusterSpec {
            id,
            name: c
                .get_attr("name")
                .map(str::to_owned)
                .unwrap_or_else(|| format!("cluster-{id}")),
            hosts,
            speed_gflops: parse_speed(c.require_attr("speed")?)?,
            host_link: Link::new(
                parse_f64("link_latency", c.get_attr("link_latency").unwrap_or("1e-4"))?,
                parse_f64(
                    "link_bandwidth",
                    c.get_attr("link_bandwidth").unwrap_or("1.25e9"),
                )?,
            ),
        });
    }
    if clusters.is_empty() {
        return Err(IoError::format("a platform needs at least one <cluster>"));
    }
    // Duplicate ids would silently shadow each other in routing.
    let mut ids: Vec<u32> = clusters.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != clusters.len() {
        return Err(IoError::format("duplicate cluster ids in platform"));
    }
    Ok(Platform::new(name, clusters, backbone))
}

/// Serializes a platform to XML.
pub fn write_platform(platform: &Platform) -> String {
    let mut root = Element::new("platform").attr("name", &platform.name);
    root = root.child(
        Element::new("backbone")
            .attr("latency", format!("{}", platform.backbone.latency))
            .attr("bandwidth", format!("{}", platform.backbone.bandwidth)),
    );
    for c in &platform.clusters {
        root = root.child(
            Element::new("cluster")
                .attr("id", c.id.to_string())
                .attr("name", &c.name)
                .attr("hosts", c.hosts.to_string())
                .attr("speed", format!("{}Gf", c.speed_gflops))
                .attr("link_latency", format!("{}", c.host_link.latency))
                .attr("link_bandwidth", format!("{}", c.host_link.bandwidth)),
        );
    }
    xml::write_document(&root)
}

/// Reads a platform file.
pub fn read_platform_file(path: impl AsRef<Path>) -> Result<Platform, IoError> {
    read_platform(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{fig7_platform_flawed, fig7_platform_realistic};

    #[test]
    fn roundtrip_fig7() {
        for p in [fig7_platform_flawed(), fig7_platform_realistic()] {
            let xml = write_platform(&p);
            let back = read_platform(&xml).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn speed_suffixes() {
        assert_eq!(parse_speed("3.3Gf").unwrap(), 3.3);
        assert!((parse_speed("1650Mf").unwrap() - 1.65).abs() < 1e-12);
        assert_eq!(parse_speed("2.5").unwrap(), 2.5);
        assert!(parse_speed("fast").is_err());
    }

    #[test]
    fn defaults_applied() {
        let src = r#"<platform><cluster id="0" hosts="4" speed="1"/></platform>"#;
        let p = read_platform(src).unwrap();
        assert_eq!(p.clusters[0].name, "cluster-0");
        assert_eq!(p.clusters[0].host_link.latency, 1e-4);
        assert_eq!(p.backbone.latency, 1e-3);
    }

    #[test]
    fn the_fig9_fix_is_one_attribute_edit() {
        // The case study's actual workflow: edit the platform file,
        // re-run. Raising the backbone latency in the XML is all it takes.
        let flawed = write_platform(&fig7_platform_flawed());
        let fixed_xml = flawed.replace(
            r#"<backbone latency="0.0001""#,
            r#"<backbone latency="0.01""#,
        );
        let fixed = read_platform(&fixed_xml).unwrap();
        assert_eq!(fixed, fig7_platform_realistic());
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(read_platform("<machines/>").is_err());
        assert!(read_platform("<platform/>").is_err());
        let dup = r#"<platform>
          <cluster id="0" hosts="1" speed="1"/>
          <cluster id="0" hosts="1" speed="1"/>
        </platform>"#;
        assert!(read_platform(dup).is_err());
    }
}
