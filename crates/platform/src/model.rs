//! Platform data model and routing.

/// A communication link: latency in seconds, bandwidth in bytes/second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    pub latency: f64,
    pub bandwidth: f64,
}

impl Link {
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        Link { latency, bandwidth }
    }

    /// Time to push `bytes` through this single link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// A homogeneous group of hosts behind one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    pub id: u32,
    pub name: String,
    /// Number of hosts.
    pub hosts: u32,
    /// Compute speed of each host, in Gflop/s (paper, §V: 1.65 / 3.3).
    pub speed_gflops: f64,
    /// The private link connecting each host to the cluster switch.
    pub host_link: Link,
}

impl ClusterSpec {
    /// Execution time of `gflop` billion operations on one host.
    pub fn exec_time(&self, gflop: f64) -> f64 {
        gflop / self.speed_gflops
    }
}

/// A host addressed globally: `(cluster index, host index within cluster)`
/// plus its flat global index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHost {
    pub cluster: u32,
    pub host: u32,
    pub global: u32,
}

/// The route between two hosts: total latency and bottleneck bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    pub latency: f64,
    pub bandwidth: f64,
    /// Number of links traversed (0 = same host).
    pub hops: u32,
}

impl Route {
    /// End-to-end time for `bytes` (wormhole/fluid model: total latency +
    /// bytes over the bottleneck bandwidth).
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        if self.hops == 0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }
}

/// A multi-cluster platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    pub name: String,
    pub clusters: Vec<ClusterSpec>,
    /// The single backbone interconnecting all cluster switches
    /// (paper, Fig. 7).
    pub backbone: Link,
}

impl Platform {
    pub fn new(name: impl Into<String>, clusters: Vec<ClusterSpec>, backbone: Link) -> Self {
        Platform {
            name: name.into(),
            clusters,
            backbone,
        }
    }

    /// Total number of hosts.
    pub fn total_hosts(&self) -> u32 {
        self.clusters.iter().map(|c| c.hosts).sum()
    }

    /// Cluster spec by id.
    pub fn cluster(&self, id: u32) -> Option<&ClusterSpec> {
        self.clusters.iter().find(|c| c.id == id)
    }

    /// Maps a flat global host index to a [`GlobalHost`].
    pub fn host(&self, global: u32) -> Option<GlobalHost> {
        let mut off = 0u32;
        for c in &self.clusters {
            if global < off + c.hosts {
                return Some(GlobalHost {
                    cluster: c.id,
                    host: global - off,
                    global,
                });
            }
            off += c.hosts;
        }
        None
    }

    /// Flat global index of `(cluster, host)`.
    pub fn global_index(&self, cluster: u32, host: u32) -> Option<u32> {
        let mut off = 0u32;
        for c in &self.clusters {
            if c.id == cluster {
                return (host < c.hosts).then_some(off + host);
            }
            off += c.hosts;
        }
        None
    }

    /// Compute speed of a global host in Gflop/s.
    pub fn speed_of(&self, global: u32) -> Option<f64> {
        let h = self.host(global)?;
        self.cluster(h.cluster).map(|c| c.speed_gflops)
    }

    /// Execution time of `gflop` work on a global host.
    pub fn exec_time(&self, global: u32, gflop: f64) -> Option<f64> {
        self.speed_of(global).map(|s| gflop / s)
    }

    /// Average execution time of `gflop` over all hosts (HEFT's rank
    /// computations use cost averages).
    pub fn mean_exec_time(&self, gflop: f64) -> f64 {
        let total: f64 = self
            .clusters
            .iter()
            .map(|c| f64::from(c.hosts) * (gflop / c.speed_gflops))
            .sum();
        total / f64::from(self.total_hosts().max(1))
    }

    /// The route between two global hosts.
    ///
    /// * same host → zero-cost route;
    /// * same cluster → host link, switch, host link (2 link latencies,
    ///   host-link bandwidth bottleneck);
    /// * different clusters → host link, switch, backbone, switch, host
    ///   link (2 host-link latencies + backbone latency, min bandwidth).
    pub fn route(&self, a: u32, b: u32) -> Option<Route> {
        let ha = self.host(a)?;
        let hb = self.host(b)?;
        if a == b {
            return Some(Route {
                latency: 0.0,
                bandwidth: f64::INFINITY,
                hops: 0,
            });
        }
        let ca = self.cluster(ha.cluster)?;
        let cb = self.cluster(hb.cluster)?;
        if ha.cluster == hb.cluster {
            Some(Route {
                latency: ca.host_link.latency * 2.0,
                bandwidth: ca.host_link.bandwidth,
                hops: 2,
            })
        } else {
            Some(Route {
                latency: ca.host_link.latency + self.backbone.latency + cb.host_link.latency,
                bandwidth: ca
                    .host_link
                    .bandwidth
                    .min(self.backbone.bandwidth)
                    .min(cb.host_link.bandwidth),
                hops: 3,
            })
        }
    }

    /// Mean end-to-end transfer time of `bytes` over all ordered host
    /// pairs with distinct hosts (used by HEFT's average communication
    /// cost).
    pub fn mean_transfer_time(&self, bytes: f64) -> f64 {
        let n = self.total_hosts();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                total += self.route(a, b).expect("valid hosts").transfer_time(bytes);
                count += 1;
            }
        }
        total / count as f64
    }

    /// A plain-text description of the platform (the Fig. 7 "diagram" of
    /// the reproduction; the SVG version lives in the bench crate).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "platform {} ({} hosts)", self.name, self.total_hosts());
        let _ = writeln!(
            s,
            "  backbone: latency {:.2e} s, bandwidth {:.3e} B/s",
            self.backbone.latency, self.backbone.bandwidth
        );
        for c in &self.clusters {
            let first = self.global_index(c.id, 0).unwrap_or(0);
            let _ = writeln!(
                s,
                "  cluster {} ({}): {} hosts @ {} Gflop/s, global {}..{}, link latency {:.2e} s",
                c.id,
                c.name,
                c.hosts,
                c.speed_gflops,
                first,
                first + c.hosts - 1,
                c.host_link.latency
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new(
            "test",
            vec![
                ClusterSpec {
                    id: 0,
                    name: "a".into(),
                    hosts: 2,
                    speed_gflops: 1.0,
                    host_link: Link::new(1e-4, 1e9),
                },
                ClusterSpec {
                    id: 1,
                    name: "b".into(),
                    hosts: 3,
                    speed_gflops: 2.0,
                    host_link: Link::new(1e-4, 1e9),
                },
            ],
            Link::new(1e-2, 1e8),
        )
    }

    #[test]
    fn host_indexing_roundtrip() {
        let p = platform();
        assert_eq!(p.total_hosts(), 5);
        for g in 0..5 {
            let h = p.host(g).unwrap();
            assert_eq!(p.global_index(h.cluster, h.host), Some(g));
        }
        assert!(p.host(5).is_none());
        assert!(p.global_index(0, 2).is_none());
        assert!(p.global_index(9, 0).is_none());
    }

    #[test]
    fn speeds_and_exec_time() {
        let p = platform();
        assert_eq!(p.speed_of(0), Some(1.0));
        assert_eq!(p.speed_of(2), Some(2.0));
        assert_eq!(p.exec_time(2, 10.0), Some(5.0));
        // mean over 2 hosts @1 + 3 @2 for 6 Gflop: (2*6 + 3*3)/5 = 4.2
        assert!((p.mean_exec_time(6.0) - 4.2).abs() < 1e-12);
    }

    #[test]
    fn same_host_route_is_free() {
        let p = platform();
        let r = p.route(1, 1).unwrap();
        assert_eq!(r.hops, 0);
        assert_eq!(r.transfer_time(1e9), 0.0);
    }

    #[test]
    fn intra_cluster_route() {
        let p = platform();
        let r = p.route(0, 1).unwrap();
        assert_eq!(r.hops, 2);
        assert!((r.latency - 2e-4).abs() < 1e-15);
        assert_eq!(r.bandwidth, 1e9);
        // 1 GB at 1 GB/s + 0.2 ms.
        assert!((r.transfer_time(1e9) - 1.0002).abs() < 1e-9);
    }

    #[test]
    fn inter_cluster_route_pays_backbone() {
        let p = platform();
        let r = p.route(0, 2).unwrap();
        assert_eq!(r.hops, 3);
        assert!((r.latency - (1e-4 + 1e-2 + 1e-4)).abs() < 1e-15);
        assert_eq!(r.bandwidth, 1e8); // bottleneck: backbone
    }

    #[test]
    fn backbone_latency_dominates_when_raised() {
        // The §V experiment: raising only the backbone latency must change
        // inter-cluster routes and leave intra-cluster routes untouched.
        let mut p = platform();
        let intra_before = p.route(0, 1).unwrap();
        let inter_before = p.route(0, 2).unwrap();
        p.backbone.latency *= 100.0;
        let intra_after = p.route(0, 1).unwrap();
        let inter_after = p.route(0, 2).unwrap();
        assert_eq!(intra_before, intra_after);
        assert!(inter_after.latency > inter_before.latency * 50.0);
    }

    #[test]
    fn mean_transfer_time_positive() {
        let p = platform();
        let m = p.mean_transfer_time(1e6);
        assert!(m > 0.0);
        // And zero bytes still pays latency on average.
        assert!(p.mean_transfer_time(0.0) > 0.0);
    }

    #[test]
    fn describe_mentions_every_cluster() {
        let p = platform();
        let d = p.describe();
        assert!(d.contains("cluster 0"));
        assert!(d.contains("cluster 1"));
        assert!(d.contains("backbone"));
    }
}
