//! Property tests of the columnar task view: [`TaskColumns`] must be a
//! faithful struct-of-arrays replay of `Vec<Task>` — same spans, same
//! kind slots, same host-lane segments in the same walk order — and the
//! columnar composite sweep must reproduce the indexed sweep exactly for
//! every worker count.

use jedule_core::{
    composite_tasks_columnar, composite_tasks_indexed, Allocation, CompositeOptions, HostSet,
    Schedule, ScheduleBuilder, ScheduleIndex, Task, TaskColumns,
};
use proptest::prelude::*;

/// Schedules with multi-allocation tasks and possibly non-contiguous
/// host sets, so the CSR flattening sees several segments per task.
fn arb_schedule() -> BoxedStrategy<Schedule> {
    let alloc = (0u32..2, proptest::collection::btree_set(0u32..8, 1..5))
        .prop_map(|(cluster, hosts)| Allocation::new(cluster, HostSet::from_hosts(hosts)));
    proptest::collection::vec(
        (
            0.0f64..50.0,
            0.0f64..10.0,
            0usize..3,
            proptest::collection::vec(alloc, 0..3),
        ),
        0..40,
    )
    .prop_map(|tasks| {
        let mut b = ScheduleBuilder::new()
            .cluster(0, "alpha", 8)
            .cluster(1, "beta", 8);
        for (i, (start, dur, kind, allocs)) in tasks.into_iter().enumerate() {
            let mut t = Task::new(format!("t{i}"), ["a", "b", "c"][kind], start, start + dur);
            for a in allocs {
                t = t.on(a);
            }
            b = b.task(t);
        }
        b.build().expect("generated schedule is valid")
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every column is a bit-exact replay of the task walk.
    #[test]
    fn columns_replay_the_task_walk(s in arb_schedule()) {
        let cols = TaskColumns::build(&s);
        prop_assert_eq!(cols.len(), s.tasks.len());
        for (ti, t) in s.tasks.iter().enumerate() {
            prop_assert_eq!(cols.starts()[ti].to_bits(), t.start.to_bits());
            prop_assert_eq!(cols.ends()[ti].to_bits(), t.end.to_bits());
            prop_assert_eq!(&cols.kind_names()[cols.kind_ids()[ti] as usize], &t.kind);
            let want: Vec<(u32, u32, u32)> = t
                .allocations
                .iter()
                .flat_map(|a| {
                    a.hosts
                        .ranges()
                        .iter()
                        .map(|r| (a.cluster, r.start, r.nb))
                })
                .collect();
            let got: Vec<(u32, u32, u32)> = cols
                .segs(ti)
                .map(|seg| (seg.cluster, seg.row0, seg.nrows))
                .collect();
            prop_assert_eq!(got, want, "task {}", ti);
            for cid in [0u32, 1, 7] {
                prop_assert_eq!(
                    cols.on_cluster(ti, cid),
                    t.allocations.iter().any(|a| a.cluster == cid)
                );
            }
        }
        // Kind list equals the legend scan.
        let names: Vec<&str> = cols.kind_names().iter().map(String::as_str).collect();
        prop_assert_eq!(names, s.task_types());
    }

    /// The columnar composite sweep equals the indexed sweep — content
    /// and order — for every worker count.
    #[test]
    fn columnar_composites_match_indexed(
        s in arb_schedule(),
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 5][threads_idx];
        let index = ScheduleIndex::build_with_hosts(&s);
        let cols = TaskColumns::build(&s);
        let base = composite_tasks_indexed(&s, &index, &CompositeOptions::default());
        let opts = CompositeOptions::default().with_threads(threads);
        let got = composite_tasks_columnar(&s, &index, &cols, &opts);
        prop_assert_eq!(got, base);
    }
}
