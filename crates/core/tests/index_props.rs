//! Property tests of the interval index: for arbitrary schedules and
//! query windows, [`ScheduleIndex`] answers exactly like a brute-force
//! scan over every task.

use jedule_core::index::{brute_force_query, brute_force_query_host};
use jedule_core::{Allocation, Schedule, ScheduleBuilder, ScheduleIndex, Task};
use proptest::prelude::*;

const HOSTS: u32 = 16;

fn arb_schedule() -> BoxedStrategy<Schedule> {
    (
        1u32..=3,
        proptest::collection::vec(
            (0u32..3, 0.0f64..100.0, 0.0f64..20.0, 0u32..12, 1u32..=4),
            0..60,
        ),
    )
        .prop_map(|(nclusters, tasks)| {
            let mut b = ScheduleBuilder::new();
            for c in 0..nclusters {
                b = b.cluster(c, format!("c{c}"), HOSTS);
            }
            for (i, (c, start, dur, first, nb)) in tasks.into_iter().enumerate() {
                b =
                    b.task(
                        Task::new(format!("t{i}"), "k", start, start + dur)
                            .on(Allocation::contiguous(c % nclusters, first, nb)),
                    );
            }
            b.build().expect("generated schedule is valid")
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cluster_query_matches_brute_force(
        s in arb_schedule(),
        t0 in -10.0f64..120.0,
        span in -5.0f64..50.0, // negative spans → empty window, also covered
    ) {
        let t1 = t0 + span;
        let idx = ScheduleIndex::build(&s);
        for c in &s.clusters {
            let fast = idx
                .cluster(c.id)
                .map(|ci| ci.query(t0, t1))
                .unwrap_or_default();
            prop_assert_eq!(fast, brute_force_query(&s, c.id, t0, t1));
        }
    }

    #[test]
    fn host_query_matches_brute_force(
        s in arb_schedule(),
        t0 in -10.0f64..120.0,
        span in -5.0f64..50.0,
    ) {
        let t1 = t0 + span;
        let idx = ScheduleIndex::build_with_hosts(&s);
        for c in &s.clusters {
            for h in 0..HOSTS {
                let fast = idx
                    .cluster(c.id)
                    .map(|ci| ci.query_host(h, t0, t1))
                    .unwrap_or_default();
                prop_assert_eq!(fast, brute_force_query_host(&s, c.id, h, t0, t1));
            }
        }
    }

    #[test]
    fn point_queries_match(s in arb_schedule(), t in -5.0f64..125.0) {
        let idx = ScheduleIndex::build(&s);
        for c in &s.clusters {
            let fast = idx
                .cluster(c.id)
                .map(|ci| ci.query(t, t))
                .unwrap_or_default();
            prop_assert_eq!(fast, brute_force_query(&s, c.id, t, t));
        }
    }
}
