//! Hammer tests for the process-lifetime observability primitives:
//! `obs::Registry` under concurrent writers (histogram `_count` /
//! `_bucket` / `+Inf` invariants must hold for any interleaving) and
//! the `obs::AccessLog` ring (push order is the sequence order; no
//! record is lost while the ring is below capacity).

use jedule_core::obs::{AccessLog, AccessRecord, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn rec(id: u64) -> AccessRecord {
    AccessRecord {
        id,
        unix_ms: 0,
        method: "GET".into(),
        path: format!("/render/{}", id % 7),
        opt_key: String::new(),
        status: 200,
        disposition: "hit".into(),
        dur_us: 1.0,
        bytes: 1,
        stages_us: vec![],
        slow: false,
    }
}

#[test]
fn registry_histograms_stay_consistent_under_concurrent_writers() {
    let r = Registry::new();
    let threads = 8;
    let per_thread = 500;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let r = r.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    // Mix of values across, on, and beyond the bounds.
                    let v = (t * per_thread + i) as f64 * 0.001;
                    r.observe_with("hammer_seconds", &[("w", "x")], &[0.5, 1.0, 2.0], v);
                    r.counter_add("hammer_total", &[("w", "x")], 1);
                    r.gauge_add("hammer_gauge", &[], 1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let n = (threads * per_thread) as u64;
    let s = r.histogram("hammer_seconds", &[("w", "x")]).unwrap();
    // _count equals every observation made; no write was lost.
    assert_eq!(s.count, n);
    assert_eq!(r.counter_value("hammer_total", &[("w", "x")]), n);
    assert_eq!(r.gauge_value("hammer_gauge", &[]), Some(n as f64));
    // Buckets are cumulative and the implicit +Inf equals _count.
    for w in s.cumulative.windows(2) {
        assert!(w[0] <= w[1]);
    }
    assert!(*s.cumulative.last().unwrap() <= s.count);
    // Exact bucket census: values are 0.000..3.999 in 0.001 steps, so
    // le=0.5 holds 501 (0.0..=0.5), le=1.0 holds 1001, le=2.0 holds 2001.
    assert_eq!(s.cumulative, vec![501, 1001, 2001]);
    // The sum is the arithmetic series sum, within float tolerance.
    let expected: f64 = (0..n).map(|i| i as f64 * 0.001).sum();
    assert!((s.sum - expected).abs() < 1e-6 * expected.max(1.0));
    // The rendered exposition of the hammered family still satisfies
    // the grammar: +Inf row == _count row.
    let text = r.render_prometheus();
    assert!(text.contains(&format!("hammer_seconds_bucket{{w=\"x\",le=\"+Inf\"}} {n}")));
    assert!(text.contains(&format!("hammer_seconds_count{{w=\"x\"}} {n}")));
}

#[test]
fn access_log_keeps_every_record_below_capacity() {
    let threads = 8;
    let per_thread = 100;
    let total = threads * per_thread;
    let log = AccessLog::new(total); // never wraps
    let next = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let log = log.clone();
            let next = Arc::clone(&next);
            thread::spawn(move || {
                for _ in 0..per_thread {
                    let id = next.fetch_add(1, Ordering::Relaxed);
                    log.push(rec(id));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(log.pushed(), total as u64);
    let t = log.tail(total * 2, None, None);
    // No loss up to capacity: every pushed record is retained exactly
    // once.
    assert_eq!(t.len(), total);
    let mut ids: Vec<u64> = t.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), total);
    assert_eq!(ids[0], 0);
    assert_eq!(ids[total - 1], total as u64 - 1);
}

#[test]
fn access_log_tail_is_sequence_ordered_under_wrap_pressure() {
    let threads = 4;
    let per_thread = 400;
    let log = AccessLog::new(64); // wraps many times
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let log = log.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    log.push(rec((t * per_thread + i) as u64));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(log.pushed(), (threads * per_thread) as u64);
    // After the dust settles the ring holds exactly `capacity` records
    // from the final lap, and tail() orders them newest-push first.
    let t = log.tail(1000, None, None);
    assert_eq!(t.len(), 64);
    // Re-tail with a filter: subset of the unfiltered tail, order kept.
    let filtered = log.tail(1000, None, Some("/render/3"));
    assert!(filtered.iter().all(|r| r.path == "/render/3"));
    let unfiltered_ids: Vec<u64> = t.iter().map(|r| r.id).collect();
    let mut last_pos = 0;
    for r in &filtered {
        let pos = unfiltered_ids.iter().position(|&i| i == r.id).unwrap();
        assert!(pos >= last_pos, "filtered tail must preserve order");
        last_pos = pos;
    }
}
