//! Hostile-input property tests of the jpack loader: a pack written by
//! [`snap::write_pack`] must materialize the exact source schedule back,
//! and `snap::load_bytes` must answer *every* corruption — truncations,
//! bit flips, and structurally inconsistent section tables whose body
//! digest has been re-stamped to pass the integrity check — with a clean
//! `PackError`, never a panic and never an out-of-bounds access.

use jedule_core::snap::{self, load_bytes, source_digest, write_pack, PackError};
use jedule_core::{Allocation, HostSet, PreparedSchedule, Schedule, ScheduleBuilder, Task};
use proptest::prelude::*;

/// Mirrors the private layout constants in `snap.rs`; asserted against
/// the real file in `layout_constants_match` below so drift fails loudly.
const HEADER_LEN: usize = 48;
const TABLE_ENTRY_LEN: usize = 24;
const SEC_COUNT: usize = 24;

/// The digest the source text of every generated pack is stamped with.
const SRC: &[u8] = b"snap_props source text";

/// Re-implements the loader's word-at-a-time FNV-1a-64 body digest so a
/// test can corrupt the section table and then re-stamp the header,
/// forcing the *structural* validators (not the digest check) to be the
/// ones that reject the pack.
fn body_fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(0x100000001b3);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Overwrites the stored body digest with the digest of the (possibly
/// corrupted) body, so `load_bytes` gets past the integrity check.
fn restamp(pack: &mut [u8]) {
    let d = body_fnv(&pack[HEADER_LEN..]);
    pack[24..32].copy_from_slice(&d.to_le_bytes());
}

/// Rich schedules: several clusters, multi-segment allocations over
/// non-contiguous host sets, task attributes, and meta entries — every
/// section of the pack format carries real content.
fn arb_schedule() -> BoxedStrategy<Schedule> {
    let alloc = (0u32..3, proptest::collection::btree_set(0u32..8, 1..5))
        .prop_map(|(cluster, hosts)| Allocation::new(cluster, HostSet::from_hosts(hosts)));
    let attrs = proptest::collection::vec(
        (
            proptest::string::string_regex("[a-z]{1,6}").expect("valid regex"),
            proptest::string::string_regex("[ -~]{0,8}").expect("valid regex"),
        ),
        0..3,
    );
    proptest::collection::vec(
        (
            0.0f64..50.0,
            0.0f64..10.0,
            0usize..3,
            proptest::collection::vec(alloc, 0..3),
            attrs,
        ),
        0..40,
    )
    .prop_map(|tasks| {
        let mut b = ScheduleBuilder::new()
            .cluster(0, "alpha", 8)
            .cluster(1, "beta", 8)
            .cluster(2, "gamma-γ", 8)
            .meta("generator", "snap_props")
            .meta("note", "hostile pack coverage");
        for (i, (start, dur, kind, allocs, attrs)) in tasks.into_iter().enumerate() {
            let mut t = Task::new(
                format!("t{i}"),
                ["a", "b", "cèll"][kind],
                start,
                start + dur,
            );
            for a in allocs {
                t = t.on(a);
            }
            for (k, v) in attrs {
                t = t.with_attr(k, v);
            }
            b = b.task(t);
        }
        b.build().expect("generated schedule is valid")
    })
    .boxed()
}

fn pack_of(s: &Schedule) -> Vec<u8> {
    write_pack(&PreparedSchedule::new(s.clone()), source_digest(SRC)).expect("pack writes")
}

#[test]
fn layout_constants_match() {
    let s = ScheduleBuilder::new().cluster(0, "c", 2).build().unwrap();
    let p = pack_of(&s);
    // Header magic + section count live where this file assumes.
    assert_eq!(&p[0..8], b"JEDPACK1");
    let nsec = u32::from_le_bytes(p[12..16].try_into().unwrap());
    assert_eq!(nsec as usize, SEC_COUNT);
    assert_eq!(
        body_fnv(&p[HEADER_LEN..]),
        u64::from_le_bytes(p[24..32].try_into().unwrap())
    );
    // Re-stamping a pristine pack is a no-op: it still loads.
    let mut q = p.clone();
    restamp(&mut q);
    assert_eq!(q, p);
    assert!(load_bytes(&q).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Write → load → materialize is the identity on schedules, and the
    /// stored source digest survives the trip.
    #[test]
    fn roundtrip_materializes_identical_schedule(s in arb_schedule()) {
        let p = pack_of(&s);
        let packed = load_bytes(&p).expect("pristine pack loads");
        prop_assert_eq!(packed.source_digest, source_digest(SRC));
        let prep = PreparedSchedule::from_pack(packed);
        prop_assert!(prep.is_packed());
        prop_assert_eq!(prep.task_count(), s.tasks.len());
        for (ti, t) in s.tasks.iter().enumerate() {
            prop_assert_eq!(prep.task_id(ti), t.id.as_str());
        }
        prop_assert_eq!(prep.into_schedule(), s);
    }

    /// Every truncation is rejected: the header stores the file length,
    /// so no prefix of a pack is itself a valid pack.
    #[test]
    fn any_truncation_is_rejected(s in arb_schedule(), frac in 0.0f64..1.0) {
        let p = pack_of(&s);
        let cut = ((p.len() as f64 * frac) as usize).min(p.len() - 1);
        prop_assert!(matches!(load_bytes(&p[..cut]), Err(PackError::Format(_))));
    }

    /// A single flipped bit anywhere never panics, and any flip in the
    /// body (everything after the header) is caught by the mandatory
    /// digest check. Header flips may land in the stored *source*
    /// digest or the reserved words — fields the loader carries rather
    /// than validates — so only no-panic is asserted there.
    #[test]
    fn bit_flips_never_panic_and_body_flips_are_caught(
        s in arb_schedule(),
        frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let p = pack_of(&s);
        let off = ((p.len() as f64 * frac) as usize).min(p.len() - 1);
        let mut q = p.clone();
        q[off] ^= 1u8 << bit;
        let r = load_bytes(&q);
        if off >= HEADER_LEN {
            prop_assert!(matches!(r, Err(PackError::Format(_))), "body flip at {}", off);
        } else if !(16..24).contains(&off) && !(40..48).contains(&off) {
            prop_assert!(matches!(r, Err(PackError::Format(_))), "header flip at {}", off);
        }
        // else: source-digest / reserved bytes — Ok or Err both fine,
        // reaching here without a panic is the property.
    }

    /// Structural corruption behind a valid digest: misaligned offsets,
    /// out-of-bounds lengths, and clobbered section ids must each be
    /// rejected by the table validators themselves.
    #[test]
    fn restamped_table_corruption_is_rejected(
        s in arb_schedule(),
        entry in 0usize..SEC_COUNT,
        mode in 0usize..4,
    ) {
        let p = pack_of(&s);
        let mut q = p.clone();
        let e = HEADER_LEN + entry * TABLE_ENTRY_LEN;
        match mode {
            // Offset no longer 8-aligned.
            0 => q[e + 8] |= 0x4,
            // Length runs past the end of the file.
            1 => q[e + 16..e + 24].copy_from_slice(&(p.len() as u64).to_le_bytes()),
            // Unknown section id (0 is reserved, 255 is out of range).
            2 => q[e..e + 4].copy_from_slice(&255u32.to_le_bytes()),
            // Duplicate id: one section vanishes, another doubles.
            _ => {
                let other = (entry + 1) % SEC_COUNT;
                let o = HEADER_LEN + other * TABLE_ENTRY_LEN;
                let id: [u8; 4] = q[o..o + 4].try_into().unwrap();
                q[e..e + 4].copy_from_slice(&id);
            }
        }
        restamp(&mut q);
        prop_assert!(
            matches!(load_bytes(&q), Err(PackError::Format(_))),
            "entry {} mode {}", entry, mode
        );
    }

    /// Arbitrary garbage — with or without a real jpack header grafted
    /// on front — never panics the loader.
    #[test]
    fn garbage_bytes_never_panic(
        tail in proptest::collection::vec(any::<u8>(), 0..512),
        graft_header in any::<bool>(),
    ) {
        let mut bytes = Vec::new();
        if graft_header {
            let s = ScheduleBuilder::new().cluster(0, "c", 2).build().unwrap();
            bytes.extend_from_slice(&pack_of(&s)[..HEADER_LEN]);
            let total = (HEADER_LEN + tail.len()) as u64;
            bytes[32..40].copy_from_slice(&total.to_le_bytes());
        }
        bytes.extend_from_slice(&tail);
        if graft_header {
            restamp(&mut bytes);
        }
        let _ = load_bytes(&bytes);
    }

    /// `load_if_fresh` on disk: fresh digests load, stale digests are
    /// declined without error, corrupt sidecars surface the error.
    #[test]
    fn load_if_fresh_states_are_distinguished(s in arb_schedule(), corrupt in any::<bool>()) {
        let dir = std::env::temp_dir().join(format!(
            "jedule-snap-props-{}-{corrupt}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.jed.jpack");
        let mut p = pack_of(&s);
        if corrupt {
            let mid = HEADER_LEN + (p.len() - HEADER_LEN) / 2;
            p[mid] ^= 0xff;
        }
        std::fs::write(&path, &p).unwrap();
        let fresh = snap::load_if_fresh(&path, source_digest(SRC));
        let stale = snap::load_if_fresh(&path, source_digest(b"other text"));
        if corrupt {
            prop_assert!(fresh.is_err());
        } else {
            prop_assert!(fresh.unwrap().is_some());
            prop_assert!(stale.unwrap().is_none());
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
