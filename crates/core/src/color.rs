//! RGB colors: parsing the XML `rgb="RRGGBB"` spec, grayscale conversion,
//! blending and contrast helpers used by color maps and renderers.

use crate::error::CoreError;
use std::fmt;

/// A 24-bit sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Color {
    pub const BLACK: Color = Color::new(0, 0, 0);
    pub const WHITE: Color = Color::new(255, 255, 255);

    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// Parses the Jedule color-map spec: exactly six hex digits,
    /// case-insensitive (e.g. `f10000`, `0000FF`).
    pub fn parse(spec: &str) -> Result<Color, CoreError> {
        let s = spec.trim();
        let s = s.strip_prefix('#').unwrap_or(s);
        if s.len() != 6 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(CoreError::BadColor { spec: spec.into() });
        }
        let v =
            u32::from_str_radix(s, 16).map_err(|_| CoreError::BadColor { spec: spec.into() })?;
        Ok(Color::new((v >> 16) as u8, (v >> 8) as u8, v as u8))
    }

    /// Lowercase hex encoding without `#`, matching the XML format.
    pub fn to_hex(&self) -> String {
        format!("{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Relative luminance in `[0, 255]` (ITU-R BT.601 weights).
    pub fn luminance(&self) -> f64 {
        0.299 * f64::from(self.r) + 0.587 * f64::from(self.g) + 0.114 * f64::from(self.b)
    }

    /// Grayscale version of the color (journals sometimes require gray
    /// scale graphics — paper, §II-D2).
    pub fn to_grayscale(&self) -> Color {
        let l = self.luminance().round().clamp(0.0, 255.0) as u8;
        Color::new(l, l, l)
    }

    /// A foreground (label) color that contrasts with `self` as background.
    pub fn contrasting_fg(&self) -> Color {
        if self.luminance() >= 128.0 {
            Color::BLACK
        } else {
            Color::WHITE
        }
    }

    /// Averages a non-empty slice of colors (used as the fallback color of a
    /// composite task whose type combination has no explicit rule).
    pub fn blend(colors: &[Color]) -> Color {
        if colors.is_empty() {
            return Color::BLACK;
        }
        let n = colors.len() as u32;
        let (mut r, mut g, mut b) = (0u32, 0u32, 0u32);
        for c in colors {
            r += u32::from(c.r);
            g += u32::from(c.g);
            b += u32::from(c.b);
        }
        Color::new((r / n) as u8, (g / n) as u8, (b / n) as u8)
    }

    /// Linear interpolation between two colors, `t` in `[0, 1]`.
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| -> u8 {
            (f64::from(x) + (f64::from(y) - f64::from(x)) * t).round() as u8
        };
        Color::new(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        assert_eq!(Color::parse("FFFFFF").unwrap(), Color::WHITE);
        assert_eq!(Color::parse("0000FF").unwrap(), Color::new(0, 0, 255));
        assert_eq!(Color::parse("f10000").unwrap(), Color::new(0xf1, 0, 0));
        assert_eq!(Color::parse("ff6200").unwrap(), Color::new(0xff, 0x62, 0));
        assert_eq!(
            Color::parse("#abcdef").unwrap(),
            Color::new(0xab, 0xcd, 0xef)
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "fff", "ggg000", "1234567", "0x0000ff"] {
            assert!(Color::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let c = Color::new(18, 52, 86);
        assert_eq!(Color::parse(&c.to_hex()).unwrap(), c);
    }

    #[test]
    fn grayscale_extremes() {
        assert_eq!(Color::WHITE.to_grayscale(), Color::WHITE);
        assert_eq!(Color::BLACK.to_grayscale(), Color::BLACK);
        let g = Color::new(255, 0, 0).to_grayscale();
        assert_eq!(g.r, g.g);
        assert_eq!(g.g, g.b);
    }

    #[test]
    fn contrast_picks_readable_fg() {
        assert_eq!(Color::WHITE.contrasting_fg(), Color::BLACK);
        assert_eq!(Color::BLACK.contrasting_fg(), Color::WHITE);
        assert_eq!(Color::new(0, 0, 255).contrasting_fg(), Color::WHITE);
    }

    #[test]
    fn blend_and_lerp() {
        let m = Color::blend(&[Color::BLACK, Color::WHITE]);
        assert_eq!(m, Color::new(127, 127, 127));
        assert_eq!(Color::lerp(Color::BLACK, Color::WHITE, 0.0), Color::BLACK);
        assert_eq!(Color::lerp(Color::BLACK, Color::WHITE, 1.0), Color::WHITE);
        assert_eq!(Color::blend(&[]), Color::BLACK);
    }
}
