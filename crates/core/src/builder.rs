//! Fluent construction of schedules.
//!
//! All substrate crates (schedulers, simulators, workload converters) emit
//! schedules through this builder so that cluster definitions, meta info
//! and tasks stay consistent.

use crate::error::CoreError;
use crate::hostset::HostSet;
use crate::model::{Allocation, Cluster, Schedule, Task};
use crate::validate::validate_strict;

/// Builder for [`Schedule`].
#[derive(Debug, Default)]
pub struct ScheduleBuilder {
    schedule: Schedule,
    next_task_id: u64,
}

impl ScheduleBuilder {
    pub fn new() -> Self {
        ScheduleBuilder::default()
    }

    /// Declares a cluster. Cluster ids must be unique.
    pub fn cluster(mut self, id: u32, name: impl Into<String>, hosts: u32) -> Self {
        self.schedule.clusters.push(Cluster::new(id, name, hosts));
        self
    }

    /// Sets a meta key/value pair (algorithm parameters etc.).
    pub fn meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.schedule.meta.set(key, value);
        self
    }

    /// Pre-sizes the task vector when the producer knows how many tasks
    /// are coming (e.g. a parsed workload trace) — one allocation instead
    /// of log₂(n) regrowths on million-task schedules.
    pub fn reserve_tasks(mut self, additional: usize) -> Self {
        self.schedule.tasks.reserve(additional);
        self
    }

    /// Adds a fully-formed task.
    pub fn task(mut self, task: Task) -> Self {
        self.schedule.tasks.push(task);
        self
    }

    /// Adds a contiguous single-cluster task with an auto-generated
    /// numeric id.
    pub fn simple_task(
        mut self,
        kind: impl Into<String>,
        start: f64,
        end: f64,
        cluster: u32,
        first_host: u32,
        nb_hosts: u32,
    ) -> Self {
        let id = self.next_task_id.to_string();
        self.next_task_id += 1;
        self.schedule.tasks.push(
            Task::new(id, kind, start, end)
                .on(Allocation::contiguous(cluster, first_host, nb_hosts)),
        );
        self
    }

    /// Adds a task on an arbitrary host set of one cluster.
    pub fn task_on_hosts(
        mut self,
        id: impl Into<String>,
        kind: impl Into<String>,
        start: f64,
        end: f64,
        cluster: u32,
        hosts: HostSet,
    ) -> Self {
        self.schedule
            .tasks
            .push(Task::new(id, kind, start, end).on(Allocation::new(cluster, hosts)));
        self
    }

    /// Finishes without validation.
    pub fn build_unchecked(self) -> Schedule {
        self.schedule
    }

    /// Finishes and validates; fails on the first fatal issue.
    pub fn build(self) -> Result<Schedule, CoreError> {
        validate_strict(&self.schedule)?;
        Ok(self.schedule)
    }

    /// Access to the schedule under construction (e.g. to query cluster
    /// definitions while generating tasks).
    pub fn peek(&self) -> &Schedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_schedule() {
        let s = ScheduleBuilder::new()
            .cluster(0, "cluster-0", 8)
            .meta("algorithm", "cpa")
            .simple_task("computation", 0.0, 0.31, 0, 0, 8)
            .build()
            .unwrap();
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.tasks.len(), 1);
        assert_eq!(s.tasks[0].id, "0");
        assert_eq!(s.meta.get("algorithm"), Some("cpa"));
    }

    #[test]
    fn auto_ids_increment() {
        let s = ScheduleBuilder::new()
            .cluster(0, "c", 4)
            .simple_task("t", 0.0, 1.0, 0, 0, 1)
            .simple_task("t", 1.0, 2.0, 0, 1, 1)
            .build()
            .unwrap();
        assert_eq!(s.tasks[0].id, "0");
        assert_eq!(s.tasks[1].id, "1");
    }

    #[test]
    fn build_validates() {
        let r = ScheduleBuilder::new()
            .cluster(0, "c", 2)
            .simple_task("t", 0.0, 1.0, 0, 0, 4) // host out of range
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let s = ScheduleBuilder::new()
            .simple_task("t", 0.0, 1.0, 7, 0, 4)
            .build_unchecked();
        assert_eq!(s.tasks.len(), 1);
    }

    #[test]
    fn reserve_tasks_presizes() {
        let b = ScheduleBuilder::new().cluster(0, "c", 2).reserve_tasks(100);
        assert!(b.peek().tasks.capacity() >= 100);
        let s = b.simple_task("t", 0.0, 1.0, 0, 0, 1).build().unwrap();
        assert_eq!(s.tasks.len(), 1);
    }

    #[test]
    fn task_on_hosts_noncontiguous() {
        let s = ScheduleBuilder::new()
            .cluster(0, "c", 8)
            .task_on_hosts("x", "t", 0.0, 1.0, 0, HostSet::from_hosts([0, 3, 5]))
            .build()
            .unwrap();
        assert_eq!(s.tasks[0].resource_count(), 3);
    }
}
