//! The schedule data model.
//!
//! Mirrors the structure defined by the Jedule Java API (paper, §II-C1):
//! a schedule `S` consists of tasks `v_i`, each with a start time, a finish
//! time, a unique identifier, a user-chosen *type*, and a list of allocated
//! resources. Resources are grouped into disjoint clusters `C_j` with
//! `⋃_j C_j = P` and `C_i ∩ C_j = ∅`; a task may span several clusters
//! (e.g. an inter-cluster communication), hence it carries one
//! [`Allocation`] per cluster it touches.

use crate::hostset::HostSet;

/// A logical cluster: a named group of `hosts` resources.
///
/// A cluster might be a commodity cluster running MPI programs or a single
/// multicore machine whose cores are the "hosts" (paper, §IX).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Identifier referenced by task allocations.
    pub id: u32,
    /// Human-readable name shown on the resource axis.
    pub name: String,
    /// Number of hosts (resources) in this cluster.
    pub hosts: u32,
}

impl Cluster {
    pub fn new(id: u32, name: impl Into<String>, hosts: u32) -> Self {
        Cluster {
            id,
            name: name.into(),
            hosts,
        }
    }
}

/// The resources a task occupies on one cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Cluster id (must be defined in the schedule header).
    pub cluster: u32,
    /// Cluster-local host indices; may be non-contiguous.
    pub hosts: HostSet,
}

impl Allocation {
    pub fn new(cluster: u32, hosts: HostSet) -> Self {
        Allocation { cluster, hosts }
    }

    /// Convenience: a contiguous allocation `[start, start+nb)` on `cluster`.
    pub fn contiguous(cluster: u32, start: u32, nb: u32) -> Self {
        Allocation {
            cluster,
            hosts: HostSet::contiguous(start, nb),
        }
    }
}

/// A scheduled task: the atom of a Jedule visualization.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Unique identifier (drawn as the rectangle label).
    pub id: String,
    /// User-chosen type used to group tasks and pick colors,
    /// e.g. "computation", "transfer", "wait".
    pub kind: String,
    /// Start time `t_s`.
    pub start: f64,
    /// Finish time `t_f`.
    pub end: f64,
    /// Resources the task occupies, per cluster.
    pub allocations: Vec<Allocation>,
    /// Extra node properties preserved verbatim from the input
    /// (shown in the interactive task-info popup).
    pub attrs: Vec<(String, String)>,
}

impl Task {
    pub fn new(id: impl Into<String>, kind: impl Into<String>, start: f64, end: f64) -> Self {
        Task {
            id: id.into(),
            kind: kind.into(),
            start,
            end,
            allocations: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// Adds an allocation and returns `self` (builder style).
    pub fn on(mut self, alloc: Allocation) -> Self {
        self.allocations.push(alloc);
        self
    }

    /// Adds an arbitrary key/value attribute and returns `self`.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Task duration `t_f - t_s`.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Total number of resources allocated across all clusters (`p_v`).
    pub fn resource_count(&self) -> u32 {
        self.allocations.iter().map(|a| a.hosts.count()).sum()
    }

    /// True if the task occupies `host` on `cluster` (used by hit-testing
    /// and composite computation).
    pub fn occupies(&self, cluster: u32, host: u32) -> bool {
        self.allocations
            .iter()
            .any(|a| a.cluster == cluster && a.hosts.contains(host))
    }

    /// True if the two tasks overlap in time (open-interval semantics:
    /// touching endpoints do not overlap).
    pub fn overlaps_time(&self, other: &Task) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Work area of the task: duration × allocated resources.
    pub fn area(&self) -> f64 {
        self.duration() * f64::from(self.resource_count())
    }
}

/// Key/value meta information characterizing the schedule
/// (algorithm parameters, platform, …) shown in the output header
/// (paper, §II-C2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetaInfo {
    entries: Vec<(String, String)>,
}

impl MetaInfo {
    pub fn new() -> Self {
        MetaInfo::default()
    }

    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value.into();
        } else {
            self.entries.push((key, value.into()));
        }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A complete schedule: clusters, tasks and meta information.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    pub clusters: Vec<Cluster>,
    pub tasks: Vec<Task>,
    pub meta: MetaInfo,
}

impl Schedule {
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Total number of resources `|P|` over all clusters.
    pub fn total_hosts(&self) -> u32 {
        self.clusters.iter().map(|c| c.hosts).sum()
    }

    /// Looks up a cluster by id.
    pub fn cluster(&self, id: u32) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.id == id)
    }

    /// Global row index of the first host of cluster `id` when clusters are
    /// stacked in declaration order (the canonical drawing order).
    pub fn cluster_row_offset(&self, id: u32) -> Option<u32> {
        let mut off = 0u32;
        for c in &self.clusters {
            if c.id == id {
                return Some(off);
            }
            off += c.hosts;
        }
        None
    }

    /// Inverse of [`Schedule::cluster_row_offset`]: maps a global row to
    /// `(cluster id, cluster-local host index)`.
    pub fn row_to_host(&self, row: u32) -> Option<(u32, u32)> {
        let mut off = 0u32;
        for c in &self.clusters {
            if row < off + c.hosts {
                return Some((c.id, row - off));
            }
            off += c.hosts;
        }
        None
    }

    /// Looks up a task by identifier.
    pub fn task_by_id(&self, id: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// All task indices that occupy `host` on `cluster`, unsorted.
    pub fn tasks_on_host(&self, cluster: u32, host: u32) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.occupies(cluster, host))
            .map(|(i, _)| i)
            .collect()
    }

    /// Minimal start time over all tasks (global `t_s`).
    pub fn min_start(&self) -> Option<f64> {
        self.tasks
            .iter()
            .map(|t| t.start)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.min(s))))
    }

    /// Maximal finish time over all tasks (global `t_f`).
    pub fn max_end(&self) -> Option<f64> {
        self.tasks
            .iter()
            .map(|t| t.end)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Makespan: `max_end - min_start` (0 for empty schedules).
    pub fn makespan(&self) -> f64 {
        match (self.min_start(), self.max_end()) {
            (Some(s), Some(e)) => e - s,
            _ => 0.0,
        }
    }

    /// The distinct task types present, in first-appearance order.
    pub fn task_types(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.tasks {
            if !out.contains(&t.kind.as_str()) {
                out.push(&t.kind);
            }
        }
        out
    }

    /// Restricts the schedule to one cluster (the interactive mode lets the
    /// user select which cluster to display). Tasks spanning several
    /// clusters keep only the allocation on the selected cluster.
    pub fn restrict_to_cluster(&self, cluster: u32) -> Schedule {
        let clusters = self
            .clusters
            .iter()
            .filter(|c| c.id == cluster)
            .cloned()
            .collect();
        let tasks = self
            .tasks
            .iter()
            .filter(|t| t.allocations.iter().any(|a| a.cluster == cluster))
            .map(|t| {
                let mut t = t.clone();
                t.allocations.retain(|a| a.cluster == cluster);
                t
            })
            .collect();
        Schedule {
            clusters,
            tasks,
            meta: self.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostset::HostSet;

    fn sample() -> Schedule {
        let mut s = Schedule::new();
        s.clusters.push(Cluster::new(0, "c0", 8));
        s.clusters.push(Cluster::new(1, "c1", 4));
        s.tasks
            .push(Task::new("1", "computation", 0.0, 0.31).on(Allocation::contiguous(0, 0, 8)));
        s.tasks.push(
            Task::new("2", "transfer", 0.31, 0.5)
                .on(Allocation::contiguous(0, 4, 2))
                .on(Allocation::contiguous(1, 0, 2)),
        );
        s
    }

    #[test]
    fn totals_and_extents() {
        let s = sample();
        assert_eq!(s.total_hosts(), 12);
        assert_eq!(s.min_start(), Some(0.0));
        assert_eq!(s.max_end(), Some(0.5));
        assert!((s.makespan() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_mapping_roundtrip() {
        let s = sample();
        assert_eq!(s.cluster_row_offset(0), Some(0));
        assert_eq!(s.cluster_row_offset(1), Some(8));
        assert_eq!(s.row_to_host(0), Some((0, 0)));
        assert_eq!(s.row_to_host(7), Some((0, 7)));
        assert_eq!(s.row_to_host(8), Some((1, 0)));
        assert_eq!(s.row_to_host(11), Some((1, 3)));
        assert_eq!(s.row_to_host(12), None);
    }

    #[test]
    fn occupancy_and_lookup() {
        let s = sample();
        assert_eq!(s.tasks_on_host(0, 5), vec![0, 1]);
        assert_eq!(s.tasks_on_host(1, 0), vec![1]);
        assert_eq!(s.tasks_on_host(1, 3), Vec::<usize>::new());
        assert!(s.task_by_id("2").is_some());
        assert!(s.task_by_id("404").is_none());
    }

    #[test]
    fn task_helpers() {
        let t =
            Task::new("x", "comp", 1.0, 3.0).on(Allocation::new(0, HostSet::from_hosts([0, 2, 3])));
        assert_eq!(t.duration(), 2.0);
        assert_eq!(t.resource_count(), 3);
        assert_eq!(t.area(), 6.0);
        assert!(t.occupies(0, 2));
        assert!(!t.occupies(0, 1));
        assert!(!t.occupies(1, 0));
    }

    #[test]
    fn time_overlap_is_open_interval() {
        let a = Task::new("a", "t", 0.0, 1.0);
        let b = Task::new("b", "t", 1.0, 2.0);
        let c = Task::new("c", "t", 0.5, 1.5);
        assert!(!a.overlaps_time(&b));
        assert!(a.overlaps_time(&c));
        assert!(c.overlaps_time(&b));
    }

    #[test]
    fn meta_info_set_get_overwrite() {
        let mut m = MetaInfo::new();
        m.set("alg", "cpa");
        m.set("alg", "mcpa");
        m.set("procs", "32");
        assert_eq!(m.get("alg"), Some("mcpa"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn restrict_to_cluster_trims_allocations() {
        let s = sample().restrict_to_cluster(1);
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.tasks.len(), 1);
        assert_eq!(s.tasks[0].allocations.len(), 1);
        assert_eq!(s.tasks[0].allocations[0].cluster, 1);
    }

    #[test]
    fn task_types_first_appearance_order() {
        let s = sample();
        assert_eq!(s.task_types(), vec!["computation", "transfer"]);
    }
}
