//! # jedule-core
//!
//! Core data model of the Jedule reproduction.
//!
//! Jedule (Hunold, Hoffmann, Suter; PSTI 2010) visualizes *task schedules* of
//! parallel applications as Gantt charts. This crate provides the
//! platform-independent model the original Java tool builds on:
//!
//! * [`Schedule`], [`Task`], [`Cluster`] — schedules are sets of tasks, each
//!   spanning one or more (possibly non-contiguous) resources of one or more
//!   disjoint clusters (`model`).
//! * [`ColorMap`] — user-defined per-type foreground/background colors with
//!   composite rules and grayscale conversion (`colormap`).
//! * Composite-task computation for overlapping tasks (`composite`).
//! * Scaled vs. aligned multi-cluster time alignment (`align`).
//! * Utilization / idle-time statistics (`stats`).
//! * [`ScheduleIndex`] — per-cluster / per-host interval index answering
//!   "which tasks intersect `[t0, t1]` on this row?" in `O(log n + k)`
//!   (`index`), backing window culling, statistics and the composite sweep.
//! * [`ViewState`] — the interactive-mode semantics (zoom, pan, cluster
//!   selection, hit-testing, task inspection) as a pure model (`view`).
//! * Schedule validation (`validate`).
//! * Observability — hierarchical spans, counters, Chrome-trace and
//!   metrics-JSON export — shared by every crate in the workspace (`obs`).
//!
//! The XML input format of the paper lives in `jedule-xmlio`; rendering
//! back-ends live in `jedule-render`.

pub mod align;
pub mod builder;
pub mod color;
pub mod colormap;
pub mod columns;
pub mod composite;
pub mod diff;
pub mod error;
pub mod hostset;
pub mod index;
pub mod model;
pub mod obs;
pub mod parallel;
pub mod prepared;
pub mod snap;
pub mod stats;
pub mod transform;
pub mod validate;
pub mod view;

pub use align::{AlignMode, TimeExtent};
pub use builder::ScheduleBuilder;
pub use color::Color;
pub use colormap::{ColorMap, ColorPair, CompositeRule};
pub use columns::{Seg, TaskColumns};
pub use composite::{
    composite_tasks, composite_tasks_columnar, composite_tasks_indexed, CompositeOptions,
};
pub use diff::{diff_schedules, ScheduleDiff, TaskChange};
pub use error::CoreError;
pub use hostset::{HostRange, HostSet};
pub use index::{ClusterIndex, IndexEntry, IntervalSeq, ScheduleIndex};
pub use model::{Allocation, Cluster, MetaInfo, Schedule, Task};
pub use obs::{Collector, ObsReport, Registry, SpanRecord};
pub use parallel::{effective_threads, line_chunks, LineChunk};
pub use prepared::PreparedSchedule;
pub use snap::{PackError, PackInfo, PackedSchedule};
pub use stats::{ClusterStats, Hole, ScheduleStats};
pub use transform::{filter_types, filter_window, merge, normalize, scale_time, shift_time};
pub use validate::{validate, ValidationIssue};
pub use view::{HitTarget, TaskInfo, ViewState, Viewport};
