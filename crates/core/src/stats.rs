//! Utilization and idle-time statistics.
//!
//! The case studies repeatedly reason about *holes* — idle CPU time — in
//! schedules (MCPA's load imbalance, underused processors 17–19 in the
//! CRA example, the Quicksort ramp-up). These helpers quantify what the
//! pictures show: per-host busy time, per-cluster utilization, and the
//! explicit list of idle holes.

use crate::align::{cluster_extent, TimeExtent};
use crate::index::{ClusterIndex, IntervalSeq, ScheduleIndex};
use crate::model::Schedule;

/// An idle interval on one host.
#[derive(Debug, Clone, PartialEq)]
pub struct Hole {
    pub cluster: u32,
    pub host: u32,
    pub start: f64,
    pub end: f64,
}

impl Hole {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Statistics for one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    pub cluster: u32,
    /// Local time extent (None if the cluster runs nothing).
    pub extent: Option<TimeExtent>,
    /// Busy time per host (union of task intervals, overlap counted once).
    pub busy_per_host: Vec<f64>,
    /// Fraction of `extent.span() * hosts` that is busy, in `[0, 1]`.
    pub utilization: f64,
    /// Total idle time inside the extent, summed over hosts.
    pub idle_time: f64,
}

/// Statistics for a whole schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    pub per_cluster: Vec<ClusterStats>,
    pub makespan: f64,
    pub task_count: usize,
    /// Total work area: Σ duration × resources.
    pub total_area: f64,
    /// Overall utilization across all clusters against the global extent.
    pub utilization: f64,
}

/// Merges a host row's task intervals into disjoint busy intervals. The
/// per-host [`IntervalSeq`] is already sorted by start, so this is a single
/// linear pass — no per-host re-scan of the whole task list, no sort.
fn busy_intervals(seq: &IntervalSeq) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(seq.len());
    for e in seq.entries() {
        if e.end <= e.start {
            continue;
        }
        match out.last_mut() {
            Some(last) if e.start <= last.1 => last.1 = last.1.max(e.end),
            _ => out.push((e.start, e.end)),
        }
    }
    out
}

/// Busy intervals for every host row of one cluster.
fn busy_per_host_rows(ci: &ClusterIndex, hosts: u32) -> Vec<Vec<(f64, f64)>> {
    (0..hosts)
        .map(|h| ci.host(h).map(busy_intervals).unwrap_or_default())
        .collect()
}

/// Computes per-cluster statistics against the chosen extent
/// (the cluster's local extent).
pub fn cluster_stats(schedule: &Schedule, cluster: u32) -> Option<ClusterStats> {
    let index = ScheduleIndex::build_with_hosts(schedule);
    cluster_stats_indexed(schedule, &index, cluster)
}

/// [`cluster_stats`] against a pre-built index (must have host rows).
pub fn cluster_stats_indexed(
    schedule: &Schedule,
    index: &ScheduleIndex,
    cluster: u32,
) -> Option<ClusterStats> {
    let c = schedule.cluster(cluster)?;
    let ci = index.cluster(cluster)?;
    let extent = cluster_extent(schedule, cluster);
    let busy: Vec<f64> = busy_per_host_rows(ci, c.hosts)
        .iter()
        .map(|iv| iv.iter().map(|(s, e)| e - s).sum())
        .collect();
    let (utilization, idle) = match extent {
        Some(ext) if ext.span() > 0.0 => {
            let cap = ext.span() * f64::from(c.hosts);
            let total_busy: f64 = busy.iter().sum();
            (
                (total_busy / cap).clamp(0.0, 1.0),
                (cap - total_busy).max(0.0),
            )
        }
        _ => (0.0, 0.0),
    };
    Some(ClusterStats {
        cluster,
        extent,
        busy_per_host: busy,
        utilization,
        idle_time: idle,
    })
}

/// Computes statistics for the whole schedule. The per-host interval index
/// is built once and shared by every cluster's stats.
pub fn schedule_stats(schedule: &Schedule) -> ScheduleStats {
    let index = ScheduleIndex::build_with_hosts(schedule);
    let per_cluster: Vec<ClusterStats> = schedule
        .clusters
        .iter()
        .filter_map(|c| cluster_stats_indexed(schedule, &index, c.id))
        .collect();
    let makespan = schedule.makespan();
    let total_area: f64 = schedule.tasks.iter().map(|t| t.area()).sum();
    let total_busy: f64 = per_cluster
        .iter()
        .map(|cs| cs.busy_per_host.iter().sum::<f64>())
        .sum();
    let cap = makespan * f64::from(schedule.total_hosts());
    let utilization = if cap > 0.0 {
        (total_busy / cap).clamp(0.0, 1.0)
    } else {
        0.0
    };
    ScheduleStats {
        per_cluster,
        makespan,
        task_count: schedule.tasks.len(),
        total_area,
        utilization,
    }
}

/// Lists every idle hole of at least `min_duration` inside each host's
/// cluster extent. The paper's MCPA case ("large holes that correspond to
/// idle CPU time") is detected by exactly this scan.
pub fn idle_holes(schedule: &Schedule, min_duration: f64) -> Vec<Hole> {
    let index = ScheduleIndex::build_with_hosts(schedule);
    let mut holes = Vec::new();
    for c in &schedule.clusters {
        let Some(ext) = cluster_extent(schedule, c.id) else {
            continue;
        };
        let Some(ci) = index.cluster(c.id) else {
            continue;
        };
        for host in 0..c.hosts {
            let busy = ci.host(host).map(busy_intervals).unwrap_or_default();
            let mut cursor = ext.start;
            for (s, e) in &busy {
                if s - cursor > min_duration {
                    holes.push(Hole {
                        cluster: c.id,
                        host,
                        start: cursor,
                        end: *s,
                    });
                }
                cursor = cursor.max(*e);
            }
            if ext.end - cursor > min_duration {
                holes.push(Hole {
                    cluster: c.id,
                    host,
                    start: cursor,
                    end: ext.end,
                });
            }
        }
    }
    holes
}

/// The exact piecewise-constant profile of busy hosts over time: returns
/// breakpoints `(t, busy)` meaning "from `t` (inclusive) until the next
/// breakpoint, `busy` hosts are occupied". Derived from task boundaries,
/// counting each host once even under overlapping tasks. This is the
/// "how many processors are actually running" curve the Quicksort case
/// study reads off the chart (2–4 processors during the holes).
pub fn utilization_profile(schedule: &Schedule) -> Vec<(f64, u32)> {
    let index = ScheduleIndex::build_with_hosts(schedule);
    utilization_profile_indexed(&schedule.clusters, &index)
}

/// [`utilization_profile`] over a prebuilt per-host index and the cluster
/// list alone — what render paths that hold a `PreparedSchedule` (owned
/// or pack-backed) call, without touching the task structs.
pub fn utilization_profile_indexed(
    clusters: &[crate::model::Cluster],
    index: &ScheduleIndex,
) -> Vec<(f64, u32)> {
    // Per (cluster, host) busy intervals, merged; then a global sweep.
    let mut events: Vec<(f64, i32)> = Vec::new();
    for c in clusters {
        let Some(ci) = index.cluster(c.id) else {
            continue;
        };
        for host in 0..c.hosts {
            for (s, e) in ci.host(host).map(busy_intervals).unwrap_or_default() {
                events.push((s, 1));
                events.push((e, -1));
            }
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut out: Vec<(f64, u32)> = Vec::new();
    let mut busy = 0i64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            busy += i64::from(events[i].1);
            i += 1;
        }
        let b = busy.max(0) as u32;
        match out.last() {
            Some(&(_, prev)) if prev == b => {}
            _ => out.push((t, b)),
        }
    }
    out
}

/// Number of busy hosts at time `t` (half-open task intervals), across all
/// clusters — the "how many processors are actually running" profile used
/// in the Quicksort case study.
pub fn busy_hosts_at(schedule: &Schedule, t: f64) -> u32 {
    // One pass over the tasks, then a range-union per cluster — instead of
    // re-scanning every task for every host row.
    let mut per_cluster: Vec<Vec<(u32, u32)>> = vec![Vec::new(); schedule.clusters.len()];
    for task in &schedule.tasks {
        if !(task.start <= t && t < task.end) {
            continue;
        }
        for a in &task.allocations {
            if let Some(ci) = schedule.clusters.iter().position(|c| c.id == a.cluster) {
                let cap = schedule.clusters[ci].hosts;
                for r in a.hosts.ranges() {
                    let end = (r.start + r.nb).min(cap);
                    if r.start < end {
                        per_cluster[ci].push((r.start, end));
                    }
                }
            }
        }
    }
    let mut n = 0u32;
    for mut ranges in per_cluster {
        ranges.sort_unstable();
        let mut cursor = 0u32;
        for (s, e) in ranges {
            let s = s.max(cursor);
            if e > s {
                n += e - s;
                cursor = e;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Allocation, Cluster, Task};

    fn s1() -> Schedule {
        Schedule {
            clusters: vec![Cluster::new(0, "c0", 2)],
            tasks: vec![
                Task::new("a", "t", 0.0, 2.0).on(Allocation::contiguous(0, 0, 1)),
                Task::new("b", "t", 3.0, 4.0).on(Allocation::contiguous(0, 0, 1)),
                Task::new("c", "t", 0.0, 4.0).on(Allocation::contiguous(0, 1, 1)),
            ],
            meta: Default::default(),
        }
    }

    #[test]
    fn busy_and_utilization() {
        let st = cluster_stats(&s1(), 0).unwrap();
        assert_eq!(st.busy_per_host, vec![3.0, 4.0]);
        // Extent [0,4] × 2 hosts = 8 capacity, 7 busy.
        assert!((st.utilization - 7.0 / 8.0).abs() < 1e-12);
        assert!((st.idle_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_counted_once() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 1)],
            tasks: vec![
                Task::new("a", "x", 0.0, 3.0).on(Allocation::contiguous(0, 0, 1)),
                Task::new("b", "y", 1.0, 2.0).on(Allocation::contiguous(0, 0, 1)),
            ],
            meta: Default::default(),
        };
        let st = cluster_stats(&s, 0).unwrap();
        assert_eq!(st.busy_per_host, vec![3.0]);
        assert!((st.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn holes_found_between_tasks() {
        let holes = idle_holes(&s1(), 1e-9);
        assert_eq!(holes.len(), 1);
        assert_eq!(holes[0].host, 0);
        assert_eq!((holes[0].start, holes[0].end), (2.0, 3.0));
        assert!((holes[0].duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_duration_filters_small_holes() {
        assert!(idle_holes(&s1(), 1.5).is_empty());
    }

    #[test]
    fn busy_profile() {
        let s = s1();
        assert_eq!(busy_hosts_at(&s, 0.5), 2);
        assert_eq!(busy_hosts_at(&s, 2.5), 1);
        assert_eq!(busy_hosts_at(&s, 3.5), 2);
        assert_eq!(busy_hosts_at(&s, 4.0), 0); // half-open
        assert_eq!(busy_hosts_at(&s, -1.0), 0);
    }

    #[test]
    fn whole_schedule_stats() {
        let st = schedule_stats(&s1());
        assert_eq!(st.task_count, 3);
        assert_eq!(st.makespan, 4.0);
        assert!((st.total_area - 7.0).abs() < 1e-12);
        assert!((st.utilization - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(st.per_cluster.len(), 1);
    }

    #[test]
    fn empty_schedule_stats_are_zero() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 4)],
            tasks: vec![],
            meta: Default::default(),
        };
        let st = schedule_stats(&s);
        assert_eq!(st.makespan, 0.0);
        assert_eq!(st.utilization, 0.0);
        assert!(idle_holes(&s, 0.0).is_empty());
    }

    #[test]
    fn profile_matches_pointwise_probe() {
        let s = s1();
        let profile = utilization_profile(&s);
        // Breakpoints strictly increasing, values change at each.
        for w in profile.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert_ne!(w[0].1, w[1].1);
        }
        // Consistency with busy_hosts_at at probe points.
        for probe in [0.0, 0.5, 2.0, 2.5, 3.0, 3.9] {
            let from_profile = profile
                .iter()
                .rev()
                .find(|&&(t, _)| t <= probe)
                .map(|&(_, b)| b)
                .unwrap_or(0);
            assert_eq!(from_profile, busy_hosts_at(&s, probe), "at {probe}");
        }
        // Ends at zero.
        assert_eq!(profile.last().unwrap().1, 0);
    }

    #[test]
    fn profile_counts_overlap_once() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 1)],
            tasks: vec![
                Task::new("a", "x", 0.0, 3.0).on(Allocation::contiguous(0, 0, 1)),
                Task::new("b", "y", 1.0, 2.0).on(Allocation::contiguous(0, 0, 1)),
            ],
            meta: Default::default(),
        };
        let profile = utilization_profile(&s);
        assert_eq!(profile, vec![(0.0, 1), (3.0, 0)]);
    }

    #[test]
    fn trailing_hole_before_cluster_end() {
        // Host 1 idles from 2.0 to the cluster extent end 4.0.
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 2)],
            tasks: vec![
                Task::new("a", "t", 0.0, 4.0).on(Allocation::contiguous(0, 0, 1)),
                Task::new("b", "t", 0.0, 2.0).on(Allocation::contiguous(0, 1, 1)),
            ],
            meta: Default::default(),
        };
        let holes = idle_holes(&s, 1e-9);
        assert_eq!(holes.len(), 1);
        assert_eq!(holes[0].host, 1);
        assert_eq!((holes[0].start, holes[0].end), (2.0, 4.0));
    }
}
