//! Binary schedule snapshots (`.jpack`) — the durable form of
//! everything [`PreparedSchedule`] computes.
//!
//! The cold path of a million-task trace pays full text parsing plus
//! index/extents/columns builds on every first touch. A *pack* is that
//! work done once and written down: a single little-endian, 8-byte-
//! aligned file holding the [`TaskColumns`] SoA, the per-host
//! [`ScheduleIndex`] (as sorted task-id lists), extents, the composite
//! sweep, the allocation/attribute structure needed to rebuild the
//! `Schedule` lazily, and one string blob that every name is an
//! `(offset, len)` into. Loading is `mmap(2)` (hand-declared FFI in the
//! `serve::signal`/`serve::epoll` house style; a `read()`-into-`Vec`
//! fallback elsewhere) followed by bounds-checked casts of the numeric
//! sections into borrowed column views — the hot render path never
//! copies them, and names materialize lazily from the blob.
//!
//! ## On-disk layout (version 1)
//!
//! ```text
//! header   48 B   magic "JEDPACK1", version u32, section_count u32,
//!                 source_digest u64, body_digest u64, file_len u64,
//!                 reserved u64
//! table    24 B × sections   { id u32, pad u32, off u64, len u64 }
//! sections …      each starting at an 8-byte-aligned offset
//! ```
//!
//! Everything is little-endian; loading on a big-endian host is a clean
//! [`PackError`], not a byte-swapping slow path. `source_digest` is the
//! byte-wise FNV-1a-64 of the *source text* the pack was built from
//! (the same digest serve's ETag cache computes), which is what makes a
//! sidecar self-invalidating: edit the source and the stored digest no
//! longer matches, so the pack is ignored. `body_digest` is a
//! word-at-a-time FNV-1a-64 variant over everything after the header
//! (section table included), so any flipped, truncated or transplanted
//! byte fails the load before a single section is interpreted.
//!
//! Validation happens entirely inside [`load`]: section bounds and
//! alignment, CSR monotonicity, id ranges, row bounds against cluster
//! geometry, and one UTF-8 pass over the blob with char-boundary checks
//! for every `(offset, len)` pair. After a successful load, every later
//! access is plain indexing — a hostile pack can produce a [`PackError`],
//! never UB or a panic.
//!
//! [`PreparedSchedule`]: crate::PreparedSchedule
//! [`TaskColumns`]: crate::TaskColumns
//! [`ScheduleIndex`]: crate::ScheduleIndex

use crate::align::TimeExtent;
use crate::columns::TaskColumns;
use crate::hostset::{HostRange, HostSet};
use crate::index::{ClusterIndex, IndexEntry, IntervalSeq, ScheduleIndex};
use crate::model::{Allocation, Cluster, MetaInfo, Task};
use crate::obs;
use crate::prepared::PreparedSchedule;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First 8 bytes of every pack.
pub const PACK_MAGIC: [u8; 8] = *b"JEDPACK1";
/// Current (only) format version.
pub const PACK_VERSION: u32 = 1;
/// Sidecar file extension, appended to the full input name
/// (`trace.swf` → `trace.swf.jpack`).
pub const PACK_EXT: &str = "jpack";

const HEADER_LEN: usize = 48;
const TABLE_ENTRY_LEN: usize = 24;
/// Version 1 has exactly these sections, each exactly once.
const SEC_COUNT: u32 = 24;

const SEC_STARTS: u32 = 1;
const SEC_ENDS: u32 = 2;
const SEC_KIND_IDS: u32 = 3;
const SEC_SEG_OFFSETS: u32 = 4;
const SEC_SEG_CLUSTERS: u32 = 5;
const SEC_SEG_ROW0: u32 = 6;
const SEC_SEG_NROWS: u32 = 7;
const SEC_ID_OFFSETS: u32 = 8;
const SEC_BLOB: u32 = 9;
const SEC_KIND_NAME_OFFSETS: u32 = 10;
const SEC_CLUSTERS: u32 = 11;
const SEC_META: u32 = 12;
const SEC_EXTENTS: u32 = 13;
const SEC_IDX_CLUSTER_OFFSETS: u32 = 14;
const SEC_IDX_CLUSTER_IDS: u32 = 15;
const SEC_IDX_HOST_OFFSETS: u32 = 16;
const SEC_IDX_HOST_IDS: u32 = 17;
const SEC_ALLOC_OFFSETS: u32 = 18;
const SEC_ALLOC_CLUSTERS: u32 = 19;
const SEC_ALLOC_RANGE_OFFSETS: u32 = 20;
const SEC_ALLOC_RANGES: u32 = 21;
const SEC_ATTR_OFFSETS: u32 = 22;
const SEC_ATTR_QUADS: u32 = 23;
const SEC_COMPOSITES: u32 = 24;

/// Errors raised while writing or loading packs. `Io` wraps filesystem
/// failures; `Format` covers everything a hostile or stale pack can be
/// wrong about (bad magic, digest mismatch, truncation, out-of-bounds
/// sections, broken invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    Io(String),
    Format(String),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Io(m) => write!(f, "pack io: {m}"),
            PackError::Format(m) => write!(f, "pack format: {m}"),
        }
    }
}

impl std::error::Error for PackError {}

fn bad(msg: impl Into<String>) -> PackError {
    PackError::Format(msg.into())
}

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

/// Byte-wise FNV-1a-64 — the digest of the *source text* stored in the
/// header. Identical to the serve ETag digest so a pack sidecar and
/// serve's stat-validated digest cache agree byte for byte.
pub fn source_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Word-at-a-time FNV-1a-64 variant over the pack body. Folding eight
/// bytes per multiply keeps the mandatory integrity check linear at
/// memory speed — a byte-wise FNV over a ~70 MB pack would cost more
/// than the whole load is allowed to. Any flipped byte still changes a
/// folded word, so corruption detection is equivalent.
fn body_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h ^= w;
        h = h.wrapping_mul(0x100000001b3);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// The backing buffer: mmap on Linux, an aligned heap copy elsewhere
// ---------------------------------------------------------------------------

/// The bytes of one pack file, kept alive for as long as any borrowed
/// column view needs them. On Linux this is a private read-only
/// `mmap(2)` of the file (page-aligned, so 8-byte section alignment is
/// inherited); elsewhere — or when mapping fails — it is a `read()`
/// into a `Vec<u64>`, whose allocation is 8-byte aligned by type.
pub struct PackBuf {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

enum Backing {
    #[cfg(target_os = "linux")]
    Mmap,
    /// Owns the bytes; never read through the field itself (access goes
    /// through `ptr`), only dropped.
    Heap(#[allow(dead_code)] Vec<u64>),
}

// SAFETY: the buffer is immutable after construction and the raw
// pointer targets memory owned by this value (a mapping it munmaps on
// drop, or a Vec it holds), so shared access from any thread is sound.
unsafe impl Send for PackBuf {}
unsafe impl Sync for PackBuf {}

impl fmt::Debug for PackBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mmap => "mmap",
            Backing::Heap(_) => "heap",
        };
        write!(f, "PackBuf({kind}, {} bytes)", self.len)
    }
}

impl Drop for PackBuf {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if matches!(self.backing, Backing::Mmap) {
            extern "C" {
                fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
            }
            // SAFETY: (ptr, len) is exactly the mapping mmap returned.
            unsafe { munmap(self.ptr as *mut core::ffi::c_void, self.len) };
        }
    }
}

impl PackBuf {
    fn bytes(&self) -> &[u8] {
        // SAFETY: (ptr, len) always describes owned, live, immutable
        // memory (see Backing).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Opens a file, preferring `mmap` on Linux and falling back to a
    /// heap read if mapping fails (e.g. a filesystem that refuses it).
    fn open(path: &Path) -> Result<PackBuf, PackError> {
        #[cfg(target_os = "linux")]
        if let Ok(buf) = PackBuf::mmap_open(path) {
            return Ok(buf);
        }
        PackBuf::heap_open(path)
    }

    /// Maps `path` read-only and private. The fd is closed on return;
    /// per mmap(2) the mapping survives it.
    #[cfg(target_os = "linux")]
    fn mmap_open(path: &Path) -> Result<PackBuf, PackError> {
        use std::os::unix::io::AsRawFd;
        // No libc crate anywhere in the workspace; like the serve
        // crate's signal/epoll modules this declares the one call it
        // needs. Constants are from the Linux UAPI (asm-generic/mman).
        extern "C" {
            fn mmap(
                addr: *mut core::ffi::c_void,
                length: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut core::ffi::c_void;
        }
        const PROT_READ: i32 = 0x1;
        const MAP_PRIVATE: i32 = 0x2;
        let file = std::fs::File::open(path)
            .map_err(|e| PackError::Io(format!("{}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| PackError::Io(format!("{}: {e}", path.display())))?
            .len();
        if len == 0 {
            return Err(bad(format!("{}: empty file", path.display())));
        }
        let len = usize::try_from(len)
            .map_err(|_| bad(format!("{}: file too large to map", path.display())))?;
        // SAFETY: a fresh read-only private mapping of a file we hold an
        // fd to; failure is reported as MAP_FAILED (-1), checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(PackError::Io(format!("{}: mmap failed", path.display())));
        }
        Ok(PackBuf {
            ptr: ptr as *const u8,
            len,
            backing: Backing::Mmap,
        })
    }

    fn heap_open(path: &Path) -> Result<PackBuf, PackError> {
        let bytes =
            std::fs::read(path).map_err(|e| PackError::Io(format!("{}: {e}", path.display())))?;
        Ok(PackBuf::from_bytes(&bytes))
    }

    /// Copies in-memory bytes into an 8-byte-aligned buffer — the
    /// non-mmap load path, and what in-memory round-trip tests use.
    fn from_bytes(bytes: &[u8]) -> PackBuf {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: the destination Vec<u64> spans at least bytes.len()
        // bytes and the ranges cannot overlap (fresh allocation).
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_ptr() as *mut u8, bytes.len());
        }
        PackBuf {
            ptr: words.as_ptr() as *const u8,
            len: bytes.len(),
            backing: Backing::Heap(words),
        }
    }
}

// ---------------------------------------------------------------------------
// Borrowed-vs-owned columns
// ---------------------------------------------------------------------------

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for u32 {}
}

/// Element types a column may borrow straight out of a pack: plain old
/// data where every bit pattern is a valid value, so a bounds- and
/// alignment-checked cast of file bytes can never manufacture an
/// invalid value. Sealed on purpose.
pub trait ColElem: sealed::Sealed + Copy + 'static {}
impl ColElem for f64 {}
impl ColElem for u32 {}

/// A typed view into a [`PackBuf`], constructed only by the validated
/// loader. Holding the `Arc` keeps the mapping alive for as long as any
/// clone of the column does.
pub(crate) struct PackSlice<T: ColElem> {
    _buf: Arc<PackBuf>,
    ptr: *const T,
    len: usize,
}

// SAFETY: immutable view of immutable memory kept alive by the Arc.
unsafe impl<T: ColElem> Send for PackSlice<T> {}
unsafe impl<T: ColElem> Sync for PackSlice<T> {}

impl<T: ColElem> Clone for PackSlice<T> {
    fn clone(&self) -> Self {
        PackSlice {
            _buf: Arc::clone(&self._buf),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl<T: ColElem> PackSlice<T> {
    /// Builds a view after checking element-size divisibility, pointer
    /// alignment and buffer bounds. The only constructor.
    fn new(buf: &Arc<PackBuf>, off: usize, len_bytes: usize) -> Result<PackSlice<T>, PackError> {
        let size = std::mem::size_of::<T>();
        if len_bytes % size != 0 {
            return Err(bad(format!(
                "section length {len_bytes} not a multiple of element size {size}"
            )));
        }
        let end = off
            .checked_add(len_bytes)
            .ok_or_else(|| bad("section range overflows"))?;
        if end > buf.len {
            return Err(bad(format!(
                "section [{off}, {end}) out of file bounds ({})",
                buf.len
            )));
        }
        if off % std::mem::align_of::<T>() != 0 {
            return Err(bad(format!("section offset {off} is misaligned")));
        }
        // SAFETY: off <= buf.len (checked above) and the base pointer is
        // 8-byte aligned (page-aligned mmap or Vec<u64>), so ptr is a
        // valid, aligned pointer for len_bytes / size elements of T.
        let ptr = unsafe { buf.ptr.add(off) as *const T };
        Ok(PackSlice {
            _buf: Arc::clone(buf),
            ptr,
            len: len_bytes / size,
        })
    }

    fn as_slice(&self) -> &[T] {
        // SAFETY: invariants established in `new`; the memory outlives
        // self via the Arc.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// Column storage that is either owned (built from a parsed schedule)
/// or borrowed out of a mapped pack. Readers only ever see `&[T]`.
pub(crate) enum Col<T: ColElem> {
    Owned(Vec<T>),
    Packed(PackSlice<T>),
}

impl<T: ColElem> Col<T> {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Col::Owned(v) => v,
            Col::Packed(p) => p.as_slice(),
        }
    }
}

impl<T: ColElem> From<Vec<T>> for Col<T> {
    fn from(v: Vec<T>) -> Self {
        Col::Owned(v)
    }
}

impl<T: ColElem> Clone for Col<T> {
    fn clone(&self) -> Self {
        match self {
            Col::Owned(v) => Col::Owned(v.clone()),
            Col::Packed(p) => Col::Packed(p.clone()),
        }
    }
}

impl<T: ColElem> Default for Col<T> {
    fn default() -> Self {
        Col::Owned(Vec::new())
    }
}

impl<T: ColElem + fmt::Debug> fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Both variants print their logical contents, so columns read as
        // plain slices in assertion messages.
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn u32c(v: usize, what: &str) -> Result<u32, PackError> {
    u32::try_from(v).map_err(|_| bad(format!("{what} ({v}) exceeds u32")))
}

fn le_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_f64s(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Interns strings into the blob, deduplicating repeats (attribute keys
/// and values repeat heavily in real traces).
#[derive(Default)]
struct Interner {
    seen: HashMap<String, (u32, u32)>,
}

impl Interner {
    fn intern(&mut self, blob: &mut Vec<u8>, s: &str) -> Result<(u32, u32), PackError> {
        if let Some(&pair) = self.seen.get(s) {
            return Ok(pair);
        }
        let off = u32c(blob.len(), "string blob size")?;
        let len = u32c(s.len(), "string length")?;
        blob.extend_from_slice(s.as_bytes());
        self.seen.insert(s.to_string(), (off, len));
        Ok((off, len))
    }
}

fn encode_extent(e: Option<TimeExtent>, out: &mut Vec<u8>) {
    match e {
        Some(x) => {
            out.extend_from_slice(&1u64.to_le_bytes());
            out.extend_from_slice(&x.start.to_le_bytes());
            out.extend_from_slice(&x.end.to_le_bytes());
        }
        None => {
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0f64.to_le_bytes());
            out.extend_from_slice(&0f64.to_le_bytes());
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), PackError> {
    out.extend_from_slice(&u32c(s.len(), "composite string length")?.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn encode_composites(composites: &[Task]) -> Result<Vec<u8>, PackError> {
    let mut out = Vec::new();
    out.extend_from_slice(&u32c(composites.len(), "composite count")?.to_le_bytes());
    for t in composites {
        out.extend_from_slice(&t.start.to_le_bytes());
        out.extend_from_slice(&t.end.to_le_bytes());
        put_str(&mut out, &t.id)?;
        put_str(&mut out, &t.kind)?;
        out.extend_from_slice(&u32c(t.attrs.len(), "composite attrs")?.to_le_bytes());
        for (k, v) in &t.attrs {
            put_str(&mut out, k)?;
            put_str(&mut out, v)?;
        }
        out.extend_from_slice(&u32c(t.allocations.len(), "composite allocations")?.to_le_bytes());
        for a in &t.allocations {
            out.extend_from_slice(&a.cluster.to_le_bytes());
            let ranges = a.hosts.ranges();
            out.extend_from_slice(&u32c(ranges.len(), "composite ranges")?.to_le_bytes());
            for r in ranges {
                out.extend_from_slice(&r.start.to_le_bytes());
                out.extend_from_slice(&r.nb.to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// Serializes a [`PreparedSchedule`] into pack bytes (building any
/// still-cold caches in the process). `src_digest` is [`source_digest`]
/// of the source text the schedule was parsed from — the staleness
/// validator every consumer checks before trusting the pack.
pub fn write_pack(prep: &PreparedSchedule, src_digest: u64) -> Result<Vec<u8>, PackError> {
    let _sp = obs::span("pack.write");
    let schedule = prep.schedule();
    let columns = prep.columns();
    let index = prep.index();
    let composites = prep.composites();
    let n = schedule.tasks.len();

    // String blob: task ids first (contiguous, so a CSR of n+1 offsets
    // addresses them), then kind names (same trick), then everything
    // else interned as explicit (off, len) pairs.
    let mut blob: Vec<u8> = Vec::new();
    let mut id_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    for t in &schedule.tasks {
        id_offsets.push(u32c(blob.len(), "string blob size")?);
        blob.extend_from_slice(t.id.as_bytes());
    }
    id_offsets.push(u32c(blob.len(), "string blob size")?);
    let kinds = columns.kind_names();
    let mut kind_name_offsets: Vec<u32> = Vec::with_capacity(kinds.len() + 1);
    for k in kinds {
        kind_name_offsets.push(u32c(blob.len(), "string blob size")?);
        blob.extend_from_slice(k.as_bytes());
    }
    kind_name_offsets.push(u32c(blob.len(), "string blob size")?);
    let mut intern = Interner::default();

    // Cluster geometry: (id, hosts, name_off, name_len) per cluster.
    let mut cluster_quads: Vec<u32> = Vec::with_capacity(schedule.clusters.len() * 4);
    for c in &schedule.clusters {
        let (off, len) = intern.intern(&mut blob, &c.name)?;
        cluster_quads.extend_from_slice(&[c.id, c.hosts, off, len]);
    }

    // Meta entries in insertion order.
    let mut meta_quads: Vec<u32> = Vec::new();
    for (k, v) in schedule.meta.iter() {
        let (ko, kl) = intern.intern(&mut blob, k)?;
        let (vo, vl) = intern.intern(&mut blob, v)?;
        meta_quads.extend_from_slice(&[ko, kl, vo, vl]);
    }

    // Extents: global first, then per cluster in declaration order.
    let mut extents = Vec::with_capacity((1 + schedule.clusters.len()) * 24);
    encode_extent(prep.global_extent(), &mut extents);
    for c in &schedule.clusters {
        encode_extent(
            prep.extent_for(c.id, crate::align::AlignMode::Scaled),
            &mut extents,
        );
    }

    // The index, stored as sorted task-id lists (entry order). Start and
    // end values are regathered from the columns at load; the prefix-max
    // structure is recomputed in one pass — both are cheaper to rebuild
    // than to store and digest.
    let mut cl_offsets: Vec<u32> = vec![0];
    let mut cl_ids: Vec<u32> = Vec::new();
    let mut host_offsets: Vec<u32> = vec![0];
    let mut host_ids: Vec<u32> = Vec::new();
    for c in &schedule.clusters {
        let ci = index
            .cluster(c.id)
            .ok_or_else(|| bad(format!("index missing cluster {}", c.id)))?;
        cl_ids.extend(ci.tasks().entries().iter().map(|e| e.task));
        cl_offsets.push(u32c(cl_ids.len(), "index entries")?);
        for h in 0..c.hosts {
            if let Some(seq) = ci.host(h) {
                host_ids.extend(seq.entries().iter().map(|e| e.task));
            }
            host_offsets.push(u32c(host_ids.len(), "index host entries")?);
        }
    }

    // Allocation structure (for lazy Schedule materialization): a
    // task → allocation CSR, per-allocation cluster ids, and an
    // allocation → host-range CSR over (start, nb) pairs.
    let mut alloc_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut alloc_clusters: Vec<u32> = Vec::new();
    let mut range_offsets: Vec<u32> = vec![0];
    let mut ranges: Vec<u32> = Vec::new();
    let mut attr_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut attr_quads: Vec<u32> = Vec::new();
    alloc_offsets.push(0);
    attr_offsets.push(0);
    for t in &schedule.tasks {
        for a in &t.allocations {
            alloc_clusters.push(a.cluster);
            for r in a.hosts.ranges() {
                ranges.push(r.start);
                ranges.push(r.nb);
            }
            range_offsets.push(u32c(ranges.len() / 2, "host ranges")?);
        }
        alloc_offsets.push(u32c(alloc_clusters.len(), "allocations")?);
        for (k, v) in &t.attrs {
            let (ko, kl) = intern.intern(&mut blob, k)?;
            let (vo, vl) = intern.intern(&mut blob, v)?;
            attr_quads.extend_from_slice(&[ko, kl, vo, vl]);
        }
        attr_offsets.push(u32c(attr_quads.len() / 4, "attributes")?);
    }

    let sections: Vec<(u32, Vec<u8>)> = vec![
        (SEC_STARTS, le_f64s(columns.starts())),
        (SEC_ENDS, le_f64s(columns.ends())),
        (SEC_KIND_IDS, le_u32s(columns.kind_ids())),
        (SEC_SEG_OFFSETS, le_u32s(columns.seg_offsets())),
        (SEC_SEG_CLUSTERS, le_u32s(columns.seg_clusters())),
        (SEC_SEG_ROW0, le_u32s(columns.seg_row0())),
        (SEC_SEG_NROWS, le_u32s(columns.seg_nrows())),
        (SEC_ID_OFFSETS, le_u32s(&id_offsets)),
        (SEC_BLOB, blob),
        (SEC_KIND_NAME_OFFSETS, le_u32s(&kind_name_offsets)),
        (SEC_CLUSTERS, le_u32s(&cluster_quads)),
        (SEC_META, le_u32s(&meta_quads)),
        (SEC_EXTENTS, extents),
        (SEC_IDX_CLUSTER_OFFSETS, le_u32s(&cl_offsets)),
        (SEC_IDX_CLUSTER_IDS, le_u32s(&cl_ids)),
        (SEC_IDX_HOST_OFFSETS, le_u32s(&host_offsets)),
        (SEC_IDX_HOST_IDS, le_u32s(&host_ids)),
        (SEC_ALLOC_OFFSETS, le_u32s(&alloc_offsets)),
        (SEC_ALLOC_CLUSTERS, le_u32s(&alloc_clusters)),
        (SEC_ALLOC_RANGE_OFFSETS, le_u32s(&range_offsets)),
        (SEC_ALLOC_RANGES, le_u32s(&ranges)),
        (SEC_ATTR_OFFSETS, le_u32s(&attr_offsets)),
        (SEC_ATTR_QUADS, le_u32s(&attr_quads)),
        (SEC_COMPOSITES, encode_composites(composites)?),
    ];
    Ok(assemble(&sections, src_digest))
}

/// Lays out header + section table + 8-aligned sections, then patches
/// the body digest in.
fn assemble(sections: &[(u32, Vec<u8>)], src_digest: u64) -> Vec<u8> {
    let table_end = HEADER_LEN + sections.len() * TABLE_ENTRY_LEN;
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = table_end; // 48 + k·24 is already 8-aligned
    for (_, bytes) in sections {
        cursor = (cursor + 7) & !7;
        offsets.push(cursor);
        cursor += bytes.len();
    }
    let total = cursor;
    let mut out = vec![0u8; total];
    out[0..8].copy_from_slice(&PACK_MAGIC);
    out[8..12].copy_from_slice(&PACK_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    out[16..24].copy_from_slice(&src_digest.to_le_bytes());
    // Body digest at 24..32 is patched below, once the body is laid out.
    out[32..40].copy_from_slice(&(total as u64).to_le_bytes());
    for (i, ((id, bytes), off)) in sections.iter().zip(&offsets).enumerate() {
        let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
        out[e..e + 4].copy_from_slice(&id.to_le_bytes());
        out[e + 8..e + 16].copy_from_slice(&(*off as u64).to_le_bytes());
        out[e + 16..e + 24].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
        out[*off..off + bytes.len()].copy_from_slice(bytes);
    }
    let digest = body_digest(&out[HEADER_LEN..]);
    out[24..32].copy_from_slice(&digest.to_le_bytes());
    out
}

/// Writes a pack atomically: to a `.tmp` sibling first, then a rename,
/// so a concurrent reader never sees a half-written sidecar.
pub fn write_pack_file(
    prep: &PreparedSchedule,
    src_digest: u64,
    path: &Path,
) -> Result<(), PackError> {
    let bytes = write_pack(prep, src_digest)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| PackError::Io(format!("{}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        PackError::Io(format!("{}: {e}", path.display()))
    })?;
    obs::count("pack.bytes_written", bytes.len() as u64);
    Ok(())
}

/// The conventional sidecar path for an input: the full file name plus
/// `.jpack` (`trace.swf` → `trace.swf.jpack`).
pub fn sidecar_path(input: &Path) -> PathBuf {
    let mut p = input.as_os_str().to_os_string();
    p.push(".");
    p.push(PACK_EXT);
    PathBuf::from(p)
}

// ---------------------------------------------------------------------------
// Header peek
// ---------------------------------------------------------------------------

/// The cheap header-only facts about a pack (no mapping, no digest
/// walk): what `jedule info` reports and what sidecar freshness checks
/// compare before committing to a full load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackInfo {
    pub version: u32,
    /// FNV-1a-64 of the source text the pack was built from.
    pub source_digest: u64,
}

fn parse_header(head: &[u8]) -> Result<(u32, u32, u64, u64, u64), PackError> {
    if head.len() < HEADER_LEN {
        return Err(bad(format!(
            "truncated: {} bytes, header needs {HEADER_LEN}",
            head.len()
        )));
    }
    if head[0..8] != PACK_MAGIC {
        return Err(bad("bad magic (not a jpack file)"));
    }
    let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if version != PACK_VERSION {
        return Err(bad(format!(
            "unsupported version {version} (supported: {PACK_VERSION})"
        )));
    }
    let nsec = u32::from_le_bytes(head[12..16].try_into().unwrap());
    let src = u64::from_le_bytes(head[16..24].try_into().unwrap());
    let body = u64::from_le_bytes(head[24..32].try_into().unwrap());
    let file_len = u64::from_le_bytes(head[32..40].try_into().unwrap());
    Ok((version, nsec, src, body, file_len))
}

/// Reads and validates only the 48-byte header of `path`.
pub fn peek(path: &Path) -> Result<PackInfo, PackError> {
    use std::io::Read;
    let mut f =
        std::fs::File::open(path).map_err(|e| PackError::Io(format!("{}: {e}", path.display())))?;
    let mut head = [0u8; HEADER_LEN];
    f.read_exact(&mut head)
        .map_err(|_| bad(format!("{}: truncated header", path.display())))?;
    let (version, _, source_digest, _, _) = parse_header(&head)?;
    Ok(PackInfo {
        version,
        source_digest,
    })
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

/// One fully validated, loaded pack: the prepared caches ready to move
/// into a [`PreparedSchedule`] (via [`PreparedSchedule::from_pack`])
/// plus the lazily-materialized remainder.
#[derive(Debug)]
pub struct PackedSchedule {
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) meta: MetaInfo,
    pub(crate) columns: TaskColumns,
    pub(crate) index: ScheduleIndex,
    pub(crate) global: Option<TimeExtent>,
    pub(crate) per_cluster: Vec<Option<TimeExtent>>,
    pub(crate) composites: Vec<Task>,
    pub(crate) names: PackNames,
    /// The source digest stored in the header.
    pub source_digest: u64,
}

/// The lazily-read remainder of a pack: task-id strings and the
/// allocation/attribute structure, addressed by validated offsets into
/// the shared buffer. [`PackNames::task_id`] serves render labels
/// without materializing a `Schedule`; `build_tasks` materializes the
/// full task list when someone needs one.
pub struct PackNames {
    buf: Arc<PackBuf>,
    n: usize,
    id_off: usize,
    blob_off: usize,
    blob_len: usize,
    alloc_off: usize,
    n_allocs: usize,
    alloc_clusters_off: usize,
    range_off: usize,
    ranges_off: usize,
    n_ranges: usize,
    attr_off: usize,
    n_attrs: usize,
    attr_quads_off: usize,
}

impl fmt::Debug for PackNames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackNames({} tasks, {} allocs, {} attrs, blob {} B)",
            self.n, self.n_allocs, self.n_attrs, self.blob_len
        )
    }
}

impl PackNames {
    /// A validated u32 view (invariants established by `load`).
    fn u32s(&self, off: usize, count: usize) -> &[u32] {
        // SAFETY: every (off, count) pair stored in self came out of the
        // loader's bounds + alignment validation against this buffer.
        unsafe { std::slice::from_raw_parts(self.buf.ptr.add(off) as *const u32, count) }
    }

    fn blob_str(&self, off: u32, len: u32) -> &str {
        let b =
            &self.buf.bytes()[self.blob_off + off as usize..self.blob_off + (off + len) as usize];
        // The loader validated the whole blob as UTF-8 and every stored
        // (off, len) pair as char-boundary aligned.
        std::str::from_utf8(b).unwrap_or("")
    }

    /// Task `ti`'s id, straight from the blob.
    pub fn task_id(&self, ti: usize) -> &str {
        let offs = self.u32s(self.id_off, self.n + 1);
        self.blob_str(offs[ti], offs[ti + 1] - offs[ti])
    }

    /// Materializes the full task list (the lazy half of
    /// `PreparedSchedule::schedule()` for packed sources).
    pub(crate) fn build_tasks(&self, columns: &TaskColumns) -> Vec<Task> {
        let starts = columns.starts();
        let ends = columns.ends();
        let kind_ids = columns.kind_ids();
        let kinds = columns.kind_names();
        let alloc_offsets = self.u32s(self.alloc_off, self.n + 1);
        let alloc_clusters = self.u32s(self.alloc_clusters_off, self.n_allocs);
        let range_offsets = self.u32s(self.range_off, self.n_allocs + 1);
        let ranges = self.u32s(self.ranges_off, self.n_ranges * 2);
        let attr_offsets = self.u32s(self.attr_off, self.n + 1);
        let attr_quads = self.u32s(self.attr_quads_off, self.n_attrs * 4);
        let mut tasks = Vec::with_capacity(self.n);
        for ti in 0..self.n {
            let mut allocations = Vec::new();
            for ai in alloc_offsets[ti] as usize..alloc_offsets[ti + 1] as usize {
                let rs: Vec<HostRange> = (range_offsets[ai] as usize
                    ..range_offsets[ai + 1] as usize)
                    .map(|ri| HostRange {
                        start: ranges[ri * 2],
                        nb: ranges[ri * 2 + 1],
                    })
                    .collect();
                allocations.push(Allocation {
                    cluster: alloc_clusters[ai],
                    hosts: HostSet::from_ranges(rs),
                });
            }
            let attrs: Vec<(String, String)> = (attr_offsets[ti] as usize
                ..attr_offsets[ti + 1] as usize)
                .map(|qi| {
                    let q = &attr_quads[qi * 4..qi * 4 + 4];
                    (
                        self.blob_str(q[0], q[1]).to_string(),
                        self.blob_str(q[2], q[3]).to_string(),
                    )
                })
                .collect();
            tasks.push(Task {
                id: self.task_id(ti).to_string(),
                kind: kinds[kind_ids[ti] as usize].clone(),
                start: starts[ti],
                end: ends[ti],
                allocations,
                attrs,
            });
        }
        tasks
    }
}

/// Byte ranges of the 24 sections, by id.
struct SectionTable {
    sections: [(usize, usize); SEC_COUNT as usize],
}

impl SectionTable {
    fn range(&self, id: u32) -> (usize, usize) {
        self.sections[(id - 1) as usize]
    }
}

/// A validated borrow of a u32 section (alignment and bounds come from
/// the table validation).
fn u32_section(buf: &PackBuf, (off, len): (usize, usize)) -> Result<&[u32], PackError> {
    if len % 4 != 0 {
        return Err(bad(format!("u32 section length {len} not a multiple of 4")));
    }
    // SAFETY: table validation checked off % 8 == 0 and off + len in
    // bounds; the base pointer is 8-aligned.
    Ok(unsafe { std::slice::from_raw_parts(buf.ptr.add(off) as *const u32, len / 4) })
}

fn f64_section(buf: &PackBuf, (off, len): (usize, usize)) -> Result<&[f64], PackError> {
    if len % 8 != 0 {
        return Err(bad(format!("f64 section length {len} not a multiple of 8")));
    }
    // SAFETY: as above; f64 accepts any bit pattern.
    Ok(unsafe { std::slice::from_raw_parts(buf.ptr.add(off) as *const f64, len / 8) })
}

/// Checks a CSR offsets array: expected length, starts at 0,
/// non-decreasing, final value equal to `total`.
fn check_csr(offs: &[u32], expect_len: usize, total: usize, what: &str) -> Result<(), PackError> {
    if offs.len() != expect_len {
        return Err(bad(format!(
            "{what}: {} offsets, expected {expect_len}",
            offs.len()
        )));
    }
    if offs.first().is_some_and(|&o| o != 0) {
        return Err(bad(format!("{what}: first offset must be 0")));
    }
    let mut prev = 0u32;
    for &o in offs {
        if o < prev {
            return Err(bad(format!("{what}: offsets decrease")));
        }
        prev = o;
    }
    if offs.last().copied().unwrap_or(0) as usize != total {
        return Err(bad(format!(
            "{what}: final offset {} != element count {total}",
            offs.last().copied().unwrap_or(0)
        )));
    }
    Ok(())
}

/// Checks monotone blob offsets with char-boundary validation against
/// the decoded blob.
fn check_blob_csr(
    offs: &[u32],
    expect_len: usize,
    blob: &str,
    what: &str,
) -> Result<(), PackError> {
    if offs.len() != expect_len {
        return Err(bad(format!(
            "{what}: {} offsets, expected {expect_len}",
            offs.len()
        )));
    }
    let mut prev = 0u32;
    for &o in offs {
        if o < prev {
            return Err(bad(format!("{what}: offsets decrease")));
        }
        if o as usize > blob.len() || !blob.is_char_boundary(o as usize) {
            return Err(bad(format!("{what}: offset {o} not a blob char boundary")));
        }
        prev = o;
    }
    Ok(())
}

fn check_blob_pair(off: u32, len: u32, blob: &str, what: &str) -> Result<(), PackError> {
    let end = off
        .checked_add(len)
        .ok_or_else(|| bad(format!("{what}: string range overflows")))?;
    if end as usize > blob.len()
        || !blob.is_char_boundary(off as usize)
        || !blob.is_char_boundary(end as usize)
    {
        return Err(bad(format!(
            "{what}: string [{off}, {end}) not a valid blob range"
        )));
    }
    Ok(())
}

/// Gathers one sorted-id list into an [`IntervalSeq`], validating id
/// bounds and (start, task) sort order along the way.
fn gather_seq(
    ids: &[u32],
    starts: &[f64],
    ends: &[f64],
    what: &str,
) -> Result<IntervalSeq, PackError> {
    let n = starts.len();
    if ids.len() > n {
        return Err(bad(format!("{what}: {} entries for {n} tasks", ids.len())));
    }
    let mut entries = Vec::with_capacity(ids.len());
    let mut prev: Option<(f64, u32)> = None;
    for &id in ids {
        if id as usize >= n {
            return Err(bad(format!("{what}: task id {id} out of range ({n})")));
        }
        let s = starts[id as usize];
        if let Some((ps, pid)) = prev {
            if ps.total_cmp(&s).then(pid.cmp(&id)) == std::cmp::Ordering::Greater {
                return Err(bad(format!("{what}: entries not sorted by (start, task)")));
            }
        }
        prev = Some((s, id));
        entries.push(IndexEntry {
            start: s,
            end: ends[id as usize],
            task: id,
        });
    }
    Ok(IntervalSeq::from_sorted_entries(entries))
}

/// Bounds-checked cursor over the byte-packed composite section.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PackError> {
        let end = self
            .i
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| bad("composites: truncated"))?;
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PackError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PackError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PackError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| bad("composites: invalid UTF-8"))
    }
}

fn decode_composites(bytes: &[u8]) -> Result<Vec<Task>, PackError> {
    let mut cur = Cursor { b: bytes, i: 0 };
    let count = cur.u32()? as usize;
    // A composite needs at least its fixed-size fields (28 B); bound the
    // count so a hostile header can't force a huge up-front reservation.
    if count > bytes.len() / 28 + 1 {
        return Err(bad("composites: count exceeds section size"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let start = cur.f64()?;
        let end = cur.f64()?;
        let id = cur.string()?;
        let kind = cur.string()?;
        let n_attrs = cur.u32()? as usize;
        let mut attrs = Vec::new();
        for _ in 0..n_attrs {
            let k = cur.string()?;
            let v = cur.string()?;
            attrs.push((k, v));
        }
        let n_allocs = cur.u32()? as usize;
        let mut allocations = Vec::new();
        for _ in 0..n_allocs {
            let cluster = cur.u32()?;
            let n_ranges = cur.u32()? as usize;
            let mut rs = Vec::new();
            for _ in 0..n_ranges {
                let rstart = cur.u32()?;
                let nb = cur.u32()?;
                if rstart.checked_add(nb).is_none() {
                    return Err(bad("composites: host range overflows"));
                }
                rs.push(HostRange { start: rstart, nb });
            }
            allocations.push(Allocation {
                cluster,
                hosts: HostSet::from_ranges(rs),
            });
        }
        out.push(Task {
            id,
            kind,
            start,
            end,
            allocations,
            attrs,
        });
    }
    if cur.i != bytes.len() {
        return Err(bad("composites: trailing bytes"));
    }
    Ok(out)
}

fn decode_extent(b: &[u8]) -> Option<TimeExtent> {
    let present = u64::from_le_bytes(b[0..8].try_into().unwrap());
    (present != 0).then(|| TimeExtent {
        start: f64::from_le_bytes(b[8..16].try_into().unwrap()),
        end: f64::from_le_bytes(b[16..24].try_into().unwrap()),
    })
}

/// Loads and fully validates a pack file. See the module docs for the
/// validation contract; after `Ok`, every access is panic-free.
pub fn load(path: &Path) -> Result<PackedSchedule, PackError> {
    let buf = PackBuf::open(path)?;
    load_from(Arc::new(buf))
}

/// [`load`] over in-memory bytes (always the heap-copy backing) — what
/// round-trip and corruption tests drive.
pub fn load_bytes(bytes: &[u8]) -> Result<PackedSchedule, PackError> {
    load_from(Arc::new(PackBuf::from_bytes(bytes)))
}

fn load_from(buf: Arc<PackBuf>) -> Result<PackedSchedule, PackError> {
    let _sp = obs::span("pack.load");
    if cfg!(target_endian = "big") {
        return Err(bad("jpack sections are little-endian; unsupported host"));
    }
    let b = buf.bytes();
    let (_, nsec, src_digest, stored_body, file_len) = parse_header(b)?;
    if file_len != b.len() as u64 {
        return Err(bad(format!(
            "file length {} != header length {file_len} (truncated?)",
            b.len()
        )));
    }
    if nsec != SEC_COUNT {
        return Err(bad(format!(
            "section count {nsec}, version {PACK_VERSION} has {SEC_COUNT}"
        )));
    }
    let table_end = HEADER_LEN + SEC_COUNT as usize * TABLE_ENTRY_LEN;
    if b.len() < table_end {
        return Err(bad("truncated section table"));
    }
    {
        let _d = obs::span("pack.digest");
        if body_digest(&b[HEADER_LEN..]) != stored_body {
            return Err(bad("body digest mismatch (corrupt pack)"));
        }
    }

    // Section table: every id exactly once, 8-aligned, in bounds.
    let mut sections = [(usize::MAX, 0usize); SEC_COUNT as usize];
    for i in 0..SEC_COUNT as usize {
        let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let id = u32::from_le_bytes(b[e..e + 4].try_into().unwrap());
        let off = u64::from_le_bytes(b[e + 8..e + 16].try_into().unwrap());
        let len = u64::from_le_bytes(b[e + 16..e + 24].try_into().unwrap());
        if id == 0 || id > SEC_COUNT {
            return Err(bad(format!("unknown section id {id}")));
        }
        let (off, len) = (
            usize::try_from(off).map_err(|_| bad("section offset overflows"))?,
            usize::try_from(len).map_err(|_| bad("section length overflows"))?,
        );
        if off % 8 != 0 {
            return Err(bad(format!("section {id}: offset {off} not 8-aligned")));
        }
        let end = off
            .checked_add(len)
            .ok_or_else(|| bad("section range overflows"))?;
        if off < table_end || end > b.len() {
            return Err(bad(format!(
                "section {id}: [{off}, {end}) outside payload [{table_end}, {})",
                b.len()
            )));
        }
        if sections[(id - 1) as usize].0 != usize::MAX {
            return Err(bad(format!("section {id} appears twice")));
        }
        sections[(id - 1) as usize] = (off, len);
    }
    if let Some(missing) = sections.iter().position(|&(o, _)| o == usize::MAX) {
        return Err(bad(format!("section {} missing", missing + 1)));
    }
    let table = SectionTable { sections };

    // --- Task columns -----------------------------------------------------
    let starts = f64_section(&buf, table.range(SEC_STARTS))?;
    let ends = f64_section(&buf, table.range(SEC_ENDS))?;
    let n = starts.len();
    if ends.len() != n {
        return Err(bad(format!("{} ends for {n} starts", ends.len())));
    }
    let kind_ids = u32_section(&buf, table.range(SEC_KIND_IDS))?;
    if kind_ids.len() != n {
        return Err(bad(format!("{} kind ids for {n} tasks", kind_ids.len())));
    }
    let seg_offsets = u32_section(&buf, table.range(SEC_SEG_OFFSETS))?;
    let seg_clusters = u32_section(&buf, table.range(SEC_SEG_CLUSTERS))?;
    let seg_row0 = u32_section(&buf, table.range(SEC_SEG_ROW0))?;
    let seg_nrows = u32_section(&buf, table.range(SEC_SEG_NROWS))?;
    check_csr(seg_offsets, n + 1, seg_clusters.len(), "segment offsets")?;
    if seg_row0.len() != seg_clusters.len() || seg_nrows.len() != seg_clusters.len() {
        return Err(bad("segment column lengths disagree"));
    }

    // --- Strings ----------------------------------------------------------
    let (blob_off, blob_len) = table.range(SEC_BLOB);
    let blob = std::str::from_utf8(&b[blob_off..blob_off + blob_len])
        .map_err(|_| bad("string blob is not valid UTF-8"))?;
    let id_offsets = u32_section(&buf, table.range(SEC_ID_OFFSETS))?;
    check_blob_csr(id_offsets, n + 1, blob, "task id offsets")?;
    let kind_name_offsets = u32_section(&buf, table.range(SEC_KIND_NAME_OFFSETS))?;
    if kind_name_offsets.is_empty() {
        return Err(bad("kind name offsets empty"));
    }
    check_blob_csr(
        kind_name_offsets,
        kind_name_offsets.len(),
        blob,
        "kind name offsets",
    )?;
    let n_kinds = kind_name_offsets.len() - 1;
    if let Some(&k) = kind_ids.iter().find(|&&k| k as usize >= n_kinds) {
        return Err(bad(format!("kind id {k} out of range ({n_kinds} kinds)")));
    }
    let kind_names: Vec<String> = (0..n_kinds)
        .map(|i| blob[kind_name_offsets[i] as usize..kind_name_offsets[i + 1] as usize].to_string())
        .collect();

    // --- Cluster geometry -------------------------------------------------
    let cluster_quads = u32_section(&buf, table.range(SEC_CLUSTERS))?;
    if cluster_quads.len() % 4 != 0 {
        return Err(bad("cluster section length not a multiple of 4 words"));
    }
    let ncl = cluster_quads.len() / 4;
    let mut clusters = Vec::with_capacity(ncl);
    for q in cluster_quads.chunks_exact(4) {
        check_blob_pair(q[2], q[3], blob, "cluster name")?;
        clusters.push(Cluster {
            id: q[0],
            hosts: q[1],
            name: blob[q[2] as usize..(q[2] + q[3]) as usize].to_string(),
        });
    }
    // Row bounds: every segment of a known cluster must fit its host
    // count, so the layout's grid deposit can index rows unchecked.
    let hosts_of = |cid: u32| clusters.iter().find(|c| c.id == cid).map(|c| c.hosts);
    for ((&sc, &r0), &nr) in seg_clusters.iter().zip(seg_row0).zip(seg_nrows) {
        if let Some(h) = hosts_of(sc) {
            let end = r0
                .checked_add(nr)
                .ok_or_else(|| bad("segment row range overflows"))?;
            if end > h {
                return Err(bad(format!(
                    "segment row range [{r0}, {end}) exceeds cluster {sc} hosts {h}"
                )));
            }
        }
    }

    // --- Meta -------------------------------------------------------------
    let meta_quads = u32_section(&buf, table.range(SEC_META))?;
    if meta_quads.len() % 4 != 0 {
        return Err(bad("meta section length not a multiple of 4 words"));
    }
    let mut meta = MetaInfo::default();
    for q in meta_quads.chunks_exact(4) {
        check_blob_pair(q[0], q[1], blob, "meta key")?;
        check_blob_pair(q[2], q[3], blob, "meta value")?;
        meta.set(
            blob[q[0] as usize..(q[0] + q[1]) as usize].to_string(),
            blob[q[2] as usize..(q[2] + q[3]) as usize].to_string(),
        );
    }

    // --- Extents ----------------------------------------------------------
    let (ext_off, ext_len) = table.range(SEC_EXTENTS);
    if ext_len != (1 + ncl) * 24 {
        return Err(bad(format!(
            "extent section {ext_len} B, expected {} for {ncl} clusters",
            (1 + ncl) * 24
        )));
    }
    let ext = &b[ext_off..ext_off + ext_len];
    let global = decode_extent(&ext[0..24]);
    let per_cluster: Vec<Option<TimeExtent>> = (0..ncl)
        .map(|i| decode_extent(&ext[(1 + i) * 24..(2 + i) * 24]))
        .collect();

    // --- Index ------------------------------------------------------------
    let cl_offsets = u32_section(&buf, table.range(SEC_IDX_CLUSTER_OFFSETS))?;
    let cl_ids = u32_section(&buf, table.range(SEC_IDX_CLUSTER_IDS))?;
    check_csr(cl_offsets, ncl + 1, cl_ids.len(), "index cluster offsets")?;
    let host_offsets = u32_section(&buf, table.range(SEC_IDX_HOST_OFFSETS))?;
    let host_ids = u32_section(&buf, table.range(SEC_IDX_HOST_IDS))?;
    let want_rows: u64 = clusters.iter().map(|c| c.hosts as u64).sum();
    let total_rows = usize::try_from(want_rows)
        .ok()
        .filter(|&r| r + 1 == host_offsets.len())
        .ok_or_else(|| {
            bad(format!(
                "index host offsets: {} rows for {want_rows} cluster hosts",
                host_offsets.len().saturating_sub(1)
            ))
        })?;
    check_csr(
        host_offsets,
        total_rows + 1,
        host_ids.len(),
        "index host offsets",
    )?;
    let index = {
        let _g = obs::span("pack.index_gather");
        let mut cluster_indexes = Vec::with_capacity(ncl);
        let mut row = 0usize;
        for (ci, c) in clusters.iter().enumerate() {
            let ids = &cl_ids[cl_offsets[ci] as usize..cl_offsets[ci + 1] as usize];
            let tasks = gather_seq(ids, starts, ends, "index cluster entries")?;
            let mut per_host = Vec::with_capacity(c.hosts as usize);
            for _ in 0..c.hosts {
                let ids = &host_ids[host_offsets[row] as usize..host_offsets[row + 1] as usize];
                per_host.push(gather_seq(ids, starts, ends, "index host entries")?);
                row += 1;
            }
            cluster_indexes.push(ClusterIndex::from_parts(
                c.id,
                c.hosts,
                tasks,
                Some(per_host),
            ));
        }
        ScheduleIndex::from_parts(cluster_indexes, true)
    };

    // --- Allocation / attribute structure (lazy, but validated now) -------
    let alloc_offsets = u32_section(&buf, table.range(SEC_ALLOC_OFFSETS))?;
    let alloc_clusters = u32_section(&buf, table.range(SEC_ALLOC_CLUSTERS))?;
    check_csr(
        alloc_offsets,
        n + 1,
        alloc_clusters.len(),
        "allocation offsets",
    )?;
    let n_allocs = alloc_clusters.len();
    let range_offsets = u32_section(&buf, table.range(SEC_ALLOC_RANGE_OFFSETS))?;
    let ranges = u32_section(&buf, table.range(SEC_ALLOC_RANGES))?;
    if ranges.len() % 2 != 0 {
        return Err(bad("host range section length is odd"));
    }
    check_csr(
        range_offsets,
        n_allocs + 1,
        ranges.len() / 2,
        "host range offsets",
    )?;
    for pair in ranges.chunks_exact(2) {
        if pair[0].checked_add(pair[1]).is_none() {
            return Err(bad("host range overflows"));
        }
    }
    let attr_offsets = u32_section(&buf, table.range(SEC_ATTR_OFFSETS))?;
    let attr_quads = u32_section(&buf, table.range(SEC_ATTR_QUADS))?;
    if attr_quads.len() % 4 != 0 {
        return Err(bad("attribute section length not a multiple of 4 words"));
    }
    check_csr(
        attr_offsets,
        n + 1,
        attr_quads.len() / 4,
        "attribute offsets",
    )?;
    for q in attr_quads.chunks_exact(4) {
        check_blob_pair(q[0], q[1], blob, "attribute key")?;
        check_blob_pair(q[2], q[3], blob, "attribute value")?;
    }

    // --- Composites -------------------------------------------------------
    let (comp_off, comp_len) = table.range(SEC_COMPOSITES);
    let composites = decode_composites(&b[comp_off..comp_off + comp_len])?;
    for t in &composites {
        for a in &t.allocations {
            if let (Some(h), Some(mx)) = (hosts_of(a.cluster), a.hosts.max_host()) {
                if mx >= h {
                    return Err(bad(format!(
                        "composite {:?}: host {mx} exceeds cluster {} hosts {h}",
                        t.id, a.cluster
                    )));
                }
            }
        }
    }

    // --- Assemble borrowed columns + the lazy remainder -------------------
    let col_f64 = |id: u32| -> Result<Col<f64>, PackError> {
        let (off, len) = table.range(id);
        Ok(Col::Packed(PackSlice::new(&buf, off, len)?))
    };
    let col_u32 = |id: u32| -> Result<Col<u32>, PackError> {
        let (off, len) = table.range(id);
        Ok(Col::Packed(PackSlice::new(&buf, off, len)?))
    };
    let columns = TaskColumns::from_parts(
        col_f64(SEC_STARTS)?,
        col_f64(SEC_ENDS)?,
        col_u32(SEC_KIND_IDS)?,
        kind_names,
        col_u32(SEC_SEG_OFFSETS)?,
        col_u32(SEC_SEG_CLUSTERS)?,
        col_u32(SEC_SEG_ROW0)?,
        col_u32(SEC_SEG_NROWS)?,
    );
    let names = PackNames {
        buf: Arc::clone(&buf),
        n,
        id_off: table.range(SEC_ID_OFFSETS).0,
        blob_off,
        blob_len,
        alloc_off: table.range(SEC_ALLOC_OFFSETS).0,
        n_allocs,
        alloc_clusters_off: table.range(SEC_ALLOC_CLUSTERS).0,
        range_off: table.range(SEC_ALLOC_RANGE_OFFSETS).0,
        ranges_off: table.range(SEC_ALLOC_RANGES).0,
        n_ranges: ranges.len() / 2,
        attr_off: table.range(SEC_ATTR_OFFSETS).0,
        n_attrs: attr_quads.len() / 4,
        attr_quads_off: table.range(SEC_ATTR_QUADS).0,
    };
    obs::count("pack.bytes_loaded", b.len() as u64);
    Ok(PackedSchedule {
        clusters,
        meta,
        columns,
        index,
        global,
        per_cluster,
        composites,
        names,
        source_digest: src_digest,
    })
}

/// Loads `pack_path` only if its stored source digest equals
/// `src_digest` (the digest of the *current* source text). `Ok(None)`
/// means a well-formed but stale pack — callers fall back to the text
/// path silently; `Err` means unreadable or corrupt.
pub fn load_if_fresh(
    pack_path: &Path,
    src_digest: u64,
) -> Result<Option<PackedSchedule>, PackError> {
    let info = peek(pack_path)?;
    if info.source_digest != src_digest {
        return Ok(None);
    }
    let packed = load(pack_path)?;
    if packed.source_digest != src_digest {
        return Ok(None);
    }
    Ok(Some(packed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::model::Schedule;

    fn sched() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 8)
            .cluster(3, "c1", 4)
            .meta("app", "demo")
            .task(
                Task::new("a", "computation", 1.0, 4.0)
                    .on(Allocation::contiguous(0, 0, 4))
                    .with_attr("user", "u1"),
            )
            .task(
                Task::new("b", "transfer", 3.0, 6.0)
                    .on(Allocation::new(0, HostSet::from_hosts([0, 1, 4, 5, 7])))
                    .on(Allocation::contiguous(3, 0, 2)),
            )
            .task(Task::new("c", "computation", 0.5, 5.0).on(Allocation::contiguous(3, 0, 4)))
            .build()
            .unwrap()
    }

    fn pack_of(s: &Schedule) -> Vec<u8> {
        let prep = PreparedSchedule::new(s.clone());
        write_pack(&prep, source_digest(b"src")).unwrap()
    }

    #[test]
    fn roundtrip_materializes_identical_schedule() {
        let s = sched();
        let packed = load_bytes(&pack_of(&s)).unwrap();
        assert_eq!(packed.source_digest, source_digest(b"src"));
        let prep = PreparedSchedule::from_pack(packed);
        assert_eq!(prep.schedule(), &s);
    }

    #[test]
    fn packed_caches_match_owned() {
        let s = sched();
        let owned = PreparedSchedule::new(s.clone());
        let packed = PreparedSchedule::from_pack(load_bytes(&pack_of(&s)).unwrap());
        assert_eq!(packed.columns().starts(), owned.columns().starts());
        assert_eq!(packed.columns().ends(), owned.columns().ends());
        assert_eq!(packed.columns().kind_ids(), owned.columns().kind_ids());
        assert_eq!(packed.columns().kind_names(), owned.columns().kind_names());
        assert_eq!(
            packed.columns().seg_offsets(),
            owned.columns().seg_offsets()
        );
        assert_eq!(packed.global_extent(), owned.global_extent());
        assert_eq!(packed.composites(), owned.composites());
        for c in &s.clusters {
            let a = packed.index().cluster(c.id).unwrap();
            let b = owned.index().cluster(c.id).unwrap();
            assert_eq!(a.tasks().entries(), b.tasks().entries());
            for h in 0..c.hosts {
                assert_eq!(
                    a.host(h).unwrap().entries(),
                    b.host(h).unwrap().entries(),
                    "cluster {} host {h}",
                    c.id
                );
            }
            assert_eq!(a.query(0.0, 10.0), b.query(0.0, 10.0));
        }
    }

    #[test]
    fn task_ids_served_without_materialization() {
        let s = sched();
        let packed = load_bytes(&pack_of(&s)).unwrap();
        for (ti, t) in s.tasks.iter().enumerate() {
            assert_eq!(packed.names.task_id(ti), t.id);
        }
    }

    #[test]
    fn empty_schedule_roundtrips() {
        let s = ScheduleBuilder::new().cluster(0, "c", 2).build().unwrap();
        let packed = load_bytes(&pack_of(&s)).unwrap();
        let prep = PreparedSchedule::from_pack(packed);
        assert_eq!(prep.global_extent(), None);
        assert_eq!(prep.schedule(), &s);
    }

    #[test]
    fn sidecar_path_appends_extension() {
        assert_eq!(
            sidecar_path(Path::new("/x/trace.swf")),
            PathBuf::from("/x/trace.swf.jpack")
        );
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut p = pack_of(&sched());
        let mut q = p.clone();
        q[0] = b'X';
        assert!(matches!(load_bytes(&q), Err(PackError::Format(_))));
        p[8] = 99; // version
        assert!(matches!(load_bytes(&p), Err(PackError::Format(_))));
    }

    #[test]
    fn truncation_and_corruption_rejected() {
        let p = pack_of(&sched());
        for cut in [0, 10, HEADER_LEN, p.len() / 2, p.len() - 1] {
            assert!(
                matches!(load_bytes(&p[..cut]), Err(PackError::Format(_))),
                "cut at {cut}"
            );
        }
        for &flip in &[HEADER_LEN + 3, p.len() / 2, p.len() - 1] {
            let mut q = p.clone();
            q[flip] ^= 0xff;
            assert!(
                matches!(load_bytes(&q), Err(PackError::Format(_))),
                "flip at {flip}"
            );
        }
    }

    #[test]
    fn load_if_fresh_detects_stale_digest() {
        let p = pack_of(&sched());
        let packed = load_bytes(&p).unwrap();
        assert_eq!(packed.source_digest, source_digest(b"src"));
        // A mismatching source digest would be reported as stale by the
        // sidecar helpers; load_bytes itself doesn't compare sources.
        assert_ne!(source_digest(b"edited"), packed.source_digest);
    }
}
