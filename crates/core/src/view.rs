//! Interactive-mode semantics as a pure model (paper, §II-D1).
//!
//! The original Jedule opens a Swing window; everything the window *does* —
//! zooming with the mouse wheel, panning by dragging, zooming into a
//! selected rectangle, selecting a cluster, clicking a task to retrieve its
//! start/finish time and resource list — is viewport and hit-testing math.
//! [`ViewState`] implements that math so any front-end (the bundled
//! terminal UI, or a GUI toolkit) can drive it; this also makes the
//! interactive behaviour unit-testable.

use crate::align::{extent_for, AlignMode, TimeExtent};
use crate::index::ScheduleIndex;
use crate::model::{Schedule, Task};

/// The visible window over a schedule: a time range × a global row range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    pub t0: f64,
    pub t1: f64,
    /// First visible global row (fractional to allow smooth panning).
    pub r0: f64,
    /// One past the last visible global row.
    pub r1: f64,
}

impl Viewport {
    pub fn time_span(&self) -> f64 {
        self.t1 - self.t0
    }

    pub fn row_span(&self) -> f64 {
        self.r1 - self.r0
    }
}

/// What a hit test found.
#[derive(Debug, Clone, PartialEq)]
pub enum HitTarget {
    /// A task (index into `schedule.tasks`).
    Task(usize),
    /// An idle spot on `(cluster, host)`.
    Idle { cluster: u32, host: u32 },
    /// Outside the schedule entirely.
    Nothing,
}

/// The detail popup contents for a clicked task (paper: "Jedule displays
/// the start and finish time of the task and the list of resources").
#[derive(Debug, Clone, PartialEq)]
pub struct TaskInfo {
    pub id: String,
    pub kind: String,
    pub start: f64,
    pub end: f64,
    pub duration: f64,
    /// `(cluster id, cluster name, formatted host list)` per allocation.
    pub resources: Vec<(u32, String, String)>,
    pub attrs: Vec<(String, String)>,
}

/// Interactive view state over a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewState {
    pub viewport: Viewport,
    /// `None` = all clusters stacked; `Some(id)` = single-cluster view.
    pub cluster_filter: Option<u32>,
    pub align: AlignMode,
    pub selected_task: Option<usize>,
    /// Full extent used by `fit` (kept to clamp panning).
    full: Viewport,
}

impl ViewState {
    /// A view fitted to the whole schedule.
    pub fn fit(schedule: &Schedule) -> ViewState {
        let ext = crate::align::global_extent(schedule).unwrap_or(TimeExtent::new(0.0, 1.0));
        let rows = f64::from(schedule.total_hosts().max(1));
        let vp = Viewport {
            t0: ext.start,
            t1: if ext.span() > 0.0 {
                ext.end
            } else {
                ext.start + 1.0
            },
            r0: 0.0,
            r1: rows,
        };
        ViewState {
            viewport: vp,
            cluster_filter: None,
            align: AlignMode::Aligned,
            selected_task: None,
            full: vp,
        }
    }

    /// Mouse-wheel zoom: scales the time axis around `center` by `factor`
    /// (< 1 zooms in, > 1 zooms out). The zoom never exceeds the full
    /// extent.
    pub fn zoom_time(&mut self, factor: f64, center: f64) {
        let factor = factor.clamp(1e-6, 1e6);
        let span = (self.viewport.time_span() * factor)
            .min(self.full.time_span())
            .max(self.full.time_span() * 1e-9);
        let frac = if self.viewport.time_span() > 0.0 {
            (center - self.viewport.t0) / self.viewport.time_span()
        } else {
            0.5
        };
        self.viewport.t0 = center - span * frac;
        self.viewport.t1 = self.viewport.t0 + span;
        self.clamp();
    }

    /// Drag pan: shifts the view by `dt` seconds and `dr` rows.
    pub fn pan(&mut self, dt: f64, dr: f64) {
        self.viewport.t0 += dt;
        self.viewport.t1 += dt;
        self.viewport.r0 += dr;
        self.viewport.r1 += dr;
        self.clamp();
    }

    /// Zoom into an explicitly selected rectangle
    /// (paper: "zoom in by selecting a rectangular part").
    pub fn zoom_rect(&mut self, t0: f64, t1: f64, r0: f64, r1: f64) {
        if t1 > t0 {
            self.viewport.t0 = t0;
            self.viewport.t1 = t1;
        }
        if r1 > r0 {
            self.viewport.r0 = r0;
            self.viewport.r1 = r1;
        }
        self.clamp();
    }

    /// Resets the viewport to the full schedule.
    pub fn reset(&mut self) {
        self.viewport = self.full;
    }

    fn clamp(&mut self) {
        let vp = &mut self.viewport;
        let tspan = vp.time_span().min(self.full.time_span());
        if vp.t0 < self.full.t0 {
            vp.t0 = self.full.t0;
            vp.t1 = vp.t0 + tspan;
        }
        if vp.t1 > self.full.t1 {
            vp.t1 = self.full.t1;
            vp.t0 = vp.t1 - tspan;
        }
        let rspan = vp.row_span().min(self.full.row_span());
        if vp.r0 < self.full.r0 {
            vp.r0 = self.full.r0;
            vp.r1 = vp.r0 + rspan;
        }
        if vp.r1 > self.full.r1 {
            vp.r1 = self.full.r1;
            vp.r0 = vp.r1 - rspan;
        }
    }

    /// Selects which cluster is displayed (None = all).
    pub fn select_cluster(&mut self, cluster: Option<u32>) {
        self.cluster_filter = cluster;
    }

    /// Hit test at `(t, row)` in schedule coordinates.
    ///
    /// When several tasks overlap at the point (a composite situation), the
    /// one that started last wins — that is the rectangle drawn on top.
    pub fn hit_test(&self, schedule: &Schedule, t: f64, row: f64) -> HitTarget {
        self.hit_test_impl(schedule, None, t, row)
    }

    /// [`ViewState::hit_test`] against a pre-built per-host interval index
    /// — O(log n + k) per probe instead of a full task scan, which is what
    /// an interactive front-end wants on every mouse move over a
    /// million-task trace. The index must have been built with host rows
    /// ([`ScheduleIndex::build_with_hosts`]).
    pub fn hit_test_indexed(
        &self,
        schedule: &Schedule,
        index: &ScheduleIndex,
        t: f64,
        row: f64,
    ) -> HitTarget {
        self.hit_test_impl(schedule, Some(index), t, row)
    }

    fn hit_test_impl(
        &self,
        schedule: &Schedule,
        index: Option<&ScheduleIndex>,
        t: f64,
        row: f64,
    ) -> HitTarget {
        if row < 0.0 {
            return HitTarget::Nothing;
        }
        let Some((cluster, host)) = schedule.row_to_host(row.floor() as u32) else {
            return HitTarget::Nothing;
        };
        if let Some(f) = self.cluster_filter {
            if f != cluster {
                return HitTarget::Nothing;
            }
        }
        // Latest start wins (the rectangle drawn on top); candidates are
        // visited in ascending task index either way, so ties resolve
        // identically with and without the index.
        let mut best: Option<usize> = None;
        let mut consider = |i: usize, task: &Task| {
            if task.start <= t && t < task.end {
                match best {
                    Some(b) if schedule.tasks[b].start >= task.start => {}
                    _ => best = Some(i),
                }
            }
        };
        match index.and_then(|ix| ix.cluster(cluster)) {
            Some(ci) if ci.host(host).is_some() => {
                for i in ci.query_host(host, t, t) {
                    consider(i, &schedule.tasks[i]);
                }
            }
            _ => {
                for (i, task) in schedule.tasks.iter().enumerate() {
                    if task.occupies(cluster, host) {
                        consider(i, task);
                    }
                }
            }
        }
        match best {
            Some(i) => HitTarget::Task(i),
            None => {
                let ext = extent_for(schedule, cluster, self.align);
                match ext {
                    Some(e) if e.contains(t) => HitTarget::Idle { cluster, host },
                    _ => HitTarget::Nothing,
                }
            }
        }
    }

    /// Clicks a task: selects it and returns its info popup.
    pub fn click(&mut self, schedule: &Schedule, t: f64, row: f64) -> Option<TaskInfo> {
        match self.hit_test(schedule, t, row) {
            HitTarget::Task(i) => {
                self.selected_task = Some(i);
                Some(task_info(schedule, i))
            }
            _ => {
                self.selected_task = None;
                None
            }
        }
    }
}

/// Builds the detail view for task `index`.
pub fn task_info(schedule: &Schedule, index: usize) -> TaskInfo {
    let t = &schedule.tasks[index];
    TaskInfo {
        id: t.id.clone(),
        kind: t.kind.clone(),
        start: t.start,
        end: t.end,
        duration: t.duration(),
        resources: t
            .allocations
            .iter()
            .map(|a| {
                let name = schedule
                    .cluster(a.cluster)
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| format!("cluster {}", a.cluster));
                (a.cluster, name, a.hosts.to_string())
            })
            .collect(),
        attrs: t.attrs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Allocation, Cluster, Task};

    fn sched() -> Schedule {
        Schedule {
            clusters: vec![Cluster::new(0, "c0", 4), Cluster::new(1, "c1", 2)],
            tasks: vec![
                Task::new("a", "computation", 0.0, 10.0).on(Allocation::contiguous(0, 0, 4)),
                Task::new("b", "transfer", 5.0, 8.0).on(Allocation::contiguous(0, 1, 2)),
                Task::new("c", "computation", 2.0, 6.0).on(Allocation::contiguous(1, 0, 2)),
            ],
            meta: Default::default(),
        }
    }

    #[test]
    fn fit_covers_everything() {
        let v = ViewState::fit(&sched());
        assert_eq!(v.viewport.t0, 0.0);
        assert_eq!(v.viewport.t1, 10.0);
        assert_eq!(v.viewport.r0, 0.0);
        assert_eq!(v.viewport.r1, 6.0);
    }

    #[test]
    fn zoom_in_keeps_center() {
        let s = sched();
        let mut v = ViewState::fit(&s);
        v.zoom_time(0.5, 5.0);
        assert!((v.viewport.time_span() - 5.0).abs() < 1e-9);
        assert!((v.viewport.t0 - 2.5).abs() < 1e-9);
        assert!((v.viewport.t1 - 7.5).abs() < 1e-9);
    }

    #[test]
    fn zoom_out_clamps_to_full() {
        let s = sched();
        let mut v = ViewState::fit(&s);
        v.zoom_time(0.5, 5.0);
        v.zoom_time(100.0, 5.0);
        assert_eq!(v.viewport.t0, 0.0);
        assert_eq!(v.viewport.t1, 10.0);
    }

    #[test]
    fn pan_clamps_at_edges() {
        let s = sched();
        let mut v = ViewState::fit(&s);
        v.zoom_time(0.5, 5.0); // [2.5, 7.5]
        v.pan(100.0, 0.0);
        assert_eq!(v.viewport.t1, 10.0);
        v.pan(-100.0, 0.0);
        assert_eq!(v.viewport.t0, 0.0);
    }

    #[test]
    fn zoom_rect_sets_viewport() {
        let s = sched();
        let mut v = ViewState::fit(&s);
        v.zoom_rect(1.0, 3.0, 0.0, 2.0);
        assert_eq!(v.viewport.t0, 1.0);
        assert_eq!(v.viewport.t1, 3.0);
        assert_eq!(v.viewport.r1, 2.0);
        v.reset();
        assert_eq!(v.viewport.t1, 10.0);
    }

    #[test]
    fn hit_test_finds_topmost_task() {
        let s = sched();
        let v = ViewState::fit(&s);
        // Row 1 = cluster 0 host 1; at t=6 both a and b are active; b
        // started later so it is on top.
        assert_eq!(v.hit_test(&s, 6.0, 1.0), HitTarget::Task(1));
        // At t=1 only a.
        assert_eq!(v.hit_test(&s, 1.0, 1.0), HitTarget::Task(0));
        // Row 4 = cluster 1 host 0.
        assert_eq!(v.hit_test(&s, 3.0, 4.0), HitTarget::Task(2));
    }

    #[test]
    fn hit_test_idle_and_nothing() {
        let s = sched();
        let v = ViewState::fit(&s);
        // Cluster 1's local extent is [2,6]; t=1 inside aligned view is
        // idle only in aligned mode (extent covers it).
        assert_eq!(
            v.hit_test(&s, 1.0, 4.0),
            HitTarget::Idle {
                cluster: 1,
                host: 0
            }
        );
        assert_eq!(v.hit_test(&s, 3.0, 99.0), HitTarget::Nothing);
        assert_eq!(v.hit_test(&s, 3.0, -1.0), HitTarget::Nothing);
    }

    #[test]
    fn cluster_filter_masks_other_clusters() {
        let s = sched();
        let mut v = ViewState::fit(&s);
        v.select_cluster(Some(1));
        assert_eq!(v.hit_test(&s, 1.0, 1.0), HitTarget::Nothing);
        assert_eq!(v.hit_test(&s, 3.0, 4.0), HitTarget::Task(2));
    }

    #[test]
    fn click_returns_info() {
        let s = sched();
        let mut v = ViewState::fit(&s);
        let info = v.click(&s, 6.0, 1.0).unwrap();
        assert_eq!(info.id, "b");
        assert_eq!(info.kind, "transfer");
        assert_eq!(info.duration, 3.0);
        assert_eq!(
            info.resources,
            vec![(0, "c0".to_string(), "1-2".to_string())]
        );
        assert_eq!(v.selected_task, Some(1));
        // Clicking empty space clears the selection.
        assert!(v.click(&s, 1.0, 4.0).is_none());
        assert_eq!(v.selected_task, None);
    }

    #[test]
    fn indexed_hit_test_agrees_with_scan() {
        let s = sched();
        let index = ScheduleIndex::build_with_hosts(&s);
        let mut v = ViewState::fit(&s);
        let probes: Vec<(f64, f64)> = vec![
            (6.0, 1.0),
            (1.0, 1.0),
            (3.0, 4.0),
            (1.0, 4.0),
            (3.0, 99.0),
            (3.0, -1.0),
            (10.0, 0.0), // half-open: end time misses
            (0.0, 0.0),
        ];
        for &(t, row) in &probes {
            assert_eq!(
                v.hit_test_indexed(&s, &index, t, row),
                v.hit_test(&s, t, row),
                "probe t={t} row={row}"
            );
        }
        v.select_cluster(Some(1));
        for &(t, row) in &probes {
            assert_eq!(
                v.hit_test_indexed(&s, &index, t, row),
                v.hit_test(&s, t, row),
                "filtered probe t={t} row={row}"
            );
        }
    }

    #[test]
    fn fit_empty_schedule_is_sane() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 2)],
            tasks: vec![],
            meta: Default::default(),
        };
        let v = ViewState::fit(&s);
        assert!(v.viewport.time_span() > 0.0);
        assert_eq!(v.viewport.r1, 2.0);
    }
}
