//! Continuous process-lifetime metrics for resident services.
//!
//! The span/counter machinery in [`super`] records **one run**: a CLI
//! invocation arms a [`super::Collector`], renders, and exports the
//! tree. A long-lived `jedule serve` process instead needs telemetry
//! that outlives any single request: cumulative counters, gauges, and
//! fixed-bucket latency histograms that keep aggregating for the whole
//! process lifetime.
//!
//! [`Registry`] is that aggregation point. Request handlers still
//! record into per-request [`super::Collector`]s (so every request has
//! a complete span tree for `/debug/trace/<id>`); when the request
//! finishes its [`super::ObsReport`] is [`Registry::absorb`]ed — every
//! span becomes one observation in a per-stage duration histogram and
//! every one-shot counter folds into a cumulative `_total` counter.
//! The registry then encodes as Prometheus text exposition format
//! ([`Registry::render_prometheus`]) for `GET /metrics`, or as the
//! same `jedule-metrics-v1` JSON the CLI writes
//! ([`Registry::to_metrics_json`]) for shutdown flushes.
//!
//! Everything is behind one mutex; scrape and update rates in a render
//! service are far below contention territory, and a single lock keeps
//! cross-metric snapshots consistent.

use super::ObsReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default latency buckets in seconds: half a millisecond up to ten
/// seconds, roughly ×2–×2.5 steps — wide enough for both a cached SVG
/// body (microseconds) and a cold million-task PNG render (seconds).
pub const DEFAULT_LATENCY_BUCKETS_S: [f64; 14] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A label set: `(name, value)` pairs. Stored sorted by name so the
/// same logical series always maps to the same table key.
type Labels = Vec<(String, String)>;

/// One histogram series: fixed finite bucket upper bounds (sorted,
/// strictly increasing), one non-cumulative count per bucket plus an
/// overflow slot, and the sum/count of every observation.
#[derive(Debug, Clone, PartialEq)]
struct Hist {
    bounds: Vec<f64>,
    /// `counts[i]` = observations `v <= bounds[i]` (and above the
    /// previous bound); `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Hist {
    fn new(bounds: &[f64]) -> Hist {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|v| v.is_finite()).collect();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let n = b.len();
        Hist {
            bounds: b,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }
}

/// A read-only copy of one histogram series, for tests and encoders.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Cumulative counts per bound (`cumulative[i]` = observations
    /// `<= bounds[i]`); the implicit `+Inf` bucket equals [`Self::count`].
    pub cumulative: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

#[derive(Default)]
struct Tables {
    help: BTreeMap<String, String>,
    counters: BTreeMap<String, BTreeMap<Labels, u64>>,
    gauges: BTreeMap<String, BTreeMap<Labels, f64>>,
    histograms: BTreeMap<String, BTreeMap<Labels, Hist>>,
}

/// A process-lifetime metrics registry: named counter, gauge and
/// histogram families, each fanned out by label set. Cloning is cheap
/// and shares the underlying tables (like [`super::Collector`]).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Tables>>,
}

fn key_labels(labels: &[(&str, &str)]) -> Labels {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    l
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Sets the `# HELP` text of a metric family. Metrics without a
    /// registered help line get a generic one.
    pub fn describe(&self, name: &str, help: &str) {
        let mut t = self.inner.lock().unwrap();
        t.help.insert(name.to_string(), help.to_string());
    }

    /// Adds `n` to a cumulative counter series (created at 0 on first
    /// touch).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        let mut t = self.inner.lock().unwrap();
        *t.counters
            .entry(name.to_string())
            .or_default()
            .entry(key_labels(labels))
            .or_insert(0) += n;
    }

    /// Sets a gauge series to `v`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut t = self.inner.lock().unwrap();
        t.gauges
            .entry(name.to_string())
            .or_default()
            .insert(key_labels(labels), v);
    }

    /// Adds `delta` to a gauge series (created at 0 on first touch) —
    /// for in-flight style gauges.
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let mut t = self.inner.lock().unwrap();
        *t.gauges
            .entry(name.to_string())
            .or_default()
            .entry(key_labels(labels))
            .or_insert(0.0) += delta;
    }

    /// Records `v` into a histogram series with the
    /// [`DEFAULT_LATENCY_BUCKETS_S`].
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.observe_with(name, labels, &DEFAULT_LATENCY_BUCKETS_S, v);
    }

    /// Records `v` into a histogram series with explicit bucket upper
    /// bounds. The bounds are fixed when the series is first touched;
    /// later calls reuse the existing buckets (bounds passed then are
    /// ignored), so a family's series stay mutually comparable.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        let mut t = self.inner.lock().unwrap();
        t.histograms
            .entry(name.to_string())
            .or_default()
            .entry(key_labels(labels))
            .or_insert_with(|| Hist::new(bounds))
            .observe(v);
    }

    /// Folds one finished run into the process-lifetime aggregates:
    /// every span becomes an observation in
    /// `jedule_stage_duration_seconds{stage="<span name>"}` and every
    /// report counter adds to `jedule_<name>_total`.
    pub fn absorb(&self, report: &ObsReport) {
        for s in &report.spans {
            self.observe(
                "jedule_stage_duration_seconds",
                &[("stage", s.name)],
                s.dur_us / 1e6,
            );
        }
        for (k, v) in &report.counters {
            self.counter_add(&format!("jedule_{}_total", sanitize_name(k)), &[], *v);
        }
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let t = self.inner.lock().unwrap();
        t.counters
            .get(name)
            .and_then(|s| s.get(&key_labels(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a counter family across *all* its label sets — the value
    /// partition invariants are checked against (e.g. tile hits +
    /// misses == lookups must hold over every `fmt` label combined).
    pub fn counter_total(&self, name: &str) -> u64 {
        let t = self.inner.lock().unwrap();
        t.counters.get(name).map(|s| s.values().sum()).unwrap_or(0)
    }

    /// Current value of a gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let t = self.inner.lock().unwrap();
        t.gauges
            .get(name)
            .and_then(|s| s.get(&key_labels(labels)))
            .copied()
    }

    /// Snapshot of a histogram series, if it exists, with buckets
    /// already accumulated the way the exposition format wants them.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let t = self.inner.lock().unwrap();
        let h = t.histograms.get(name)?.get(&key_labels(labels))?;
        let mut cumulative = Vec::with_capacity(h.bounds.len());
        let mut acc = 0u64;
        for &c in &h.counts[..h.bounds.len()] {
            acc += c;
            cumulative.push(acc);
        }
        Some(HistogramSnapshot {
            bounds: h.bounds.clone(),
            cumulative,
            sum: h.sum,
            count: h.count,
        })
    }

    /// Prometheus text exposition format (version 0.0.4): one
    /// `# HELP` / `# TYPE` pair per family, series sorted by name and
    /// label set, histograms expanded into cumulative `_bucket` lines
    /// (ending in `le="+Inf"` which always equals `_count`), `_sum` and
    /// `_count`. Metric and label names are sanitized to the allowed
    /// character set and label values are escaped.
    pub fn render_prometheus(&self) -> String {
        let t = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, series) in &t.counters {
            let name = sanitize_name(name);
            head(&mut out, &name, "counter", &t.help);
            for (labels, v) in series {
                let _ = writeln!(out, "{name}{} {v}", fmt_labels(labels, None));
            }
        }
        for (name, series) in &t.gauges {
            let name = sanitize_name(name);
            head(&mut out, &name, "gauge", &t.help);
            for (labels, v) in series {
                let _ = writeln!(out, "{name}{} {}", fmt_labels(labels, None), fmt_f64(*v));
            }
        }
        for (name, series) in &t.histograms {
            let name = sanitize_name(name);
            head(&mut out, &name, "histogram", &t.help);
            for (labels, h) in series {
                let mut acc = 0u64;
                for (i, &b) in h.bounds.iter().enumerate() {
                    acc += h.counts[i];
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {acc}",
                        fmt_labels(labels, Some(&fmt_f64(b)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {}",
                    fmt_labels(labels, Some("+Inf")),
                    h.count
                );
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    fmt_labels(labels, None),
                    fmt_f64(h.sum)
                );
                let _ = writeln!(out, "{name}_count{} {}", fmt_labels(labels, None), h.count);
            }
        }
        out
    }

    /// The same snapshot `render_prometheus` encodes, as key-sorted
    /// JSON — the `/metrics.json` payload a browser dashboard can poll
    /// without a Prometheus text parser. Keys are exactly the
    /// Prometheus series identifiers (sanitized name plus the same
    /// `{label="value"}` rendering), so the two expositions agree
    /// key-for-key: every counter/gauge sample line in the text format
    /// appears as one key here, and every histogram family+label-set
    /// appears once with its bounds, cumulative bucket counts, sum and
    /// count (the `+Inf` bucket is implied by `count`).
    pub fn render_json(&self) -> String {
        let t = self.inner.lock().unwrap();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, series) in &t.counters {
            for (labels, v) in series {
                counters.insert(
                    format!("{}{}", sanitize_name(name), fmt_labels(labels, None)),
                    *v,
                );
            }
        }
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        for (name, series) in &t.gauges {
            for (labels, v) in series {
                gauges.insert(
                    format!("{}{}", sanitize_name(name), fmt_labels(labels, None)),
                    *v,
                );
            }
        }
        let mut hists: BTreeMap<String, &Hist> = BTreeMap::new();
        for (name, series) in &t.histograms {
            for (labels, h) in series {
                hists.insert(
                    format!("{}{}", sanitize_name(name), fmt_labels(labels, None)),
                    h,
                );
            }
        }
        let mut out = String::from("{\"schema\":\"jedule-registry-v1\",\"counters\":{");
        for (i, (key, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::json_string(key, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (key, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::json_string(key, &mut out);
            out.push(':');
            out.push_str(&json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::json_string(key, &mut out);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(*b));
            }
            out.push_str("],\"cumulative\":[");
            let mut acc = 0u64;
            for (j, c) in h.counts[..h.bounds.len()].iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                acc += c;
                let _ = write!(out, "{acc}");
            }
            let _ = write!(out, "],\"sum\":{},\"count\":{}}}", json_f64(h.sum), h.count);
        }
        out.push_str("}}\n");
        out
    }

    /// The registry as flat `jedule-metrics-v1` JSON — the same schema
    /// `--metrics-json` and the CI perf gate use, so a serve shutdown
    /// flush diffs with the same tooling. Histogram series become
    /// stages (`wall_ms` = summed observations, `count`), counters map
    /// directly; both sections are emitted in sorted key order.
    pub fn to_metrics_json(&self) -> String {
        let t = self.inner.lock().unwrap();
        let mut stages: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        for (name, series) in &t.histograms {
            for (labels, h) in series {
                stages.insert(series_key(name, labels), (h.sum * 1e3, h.count));
            }
        }
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, series) in &t.counters {
            for (labels, v) in series {
                counters.insert(series_key(name, labels), *v);
            }
        }
        let mut out = String::from("{\"schema\":\"jedule-metrics-v1\",\"stages\":{");
        for (i, (name, (ms, n))) in stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::json_string(name, &mut out);
            let _ = write!(out, ":{{\"wall_ms\":{ms:.4},\"count\":{n}}}");
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::json_string(name, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}\n");
        out
    }
}

/// `name` or `name{l1="v1",...}` for a flat JSON key.
fn series_key(name: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

fn head(out: &mut String, name: &str, kind: &str, help: &BTreeMap<String, String>) {
    let text = help
        .get(name)
        .map(String::as_str)
        .unwrap_or("jedule metric");
    let _ = write!(out, "# HELP {name} ");
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\n');
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Clamps a metric name to `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Clamps a label name to `[a-zA-Z_][a-zA-Z0-9_]*` (no colons).
fn sanitize_label(name: &str) -> String {
    let mut out = sanitize_name(name).replace(':', "_");
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value: backslash, double quote and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `{k1="v1",...}` (optionally with a trailing `le`), or `""` when
/// there are no labels at all.
fn fmt_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label(k), escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// JSON-safe float formatting: shortest round-trip decimal for finite
/// values, `null` for anything JSON cannot represent.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Prometheus sample-value formatting: shortest round-trip decimal,
/// with the spec spellings for the non-finite values.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::super::Collector;
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.counter_add("reqs", &[("route", "/a")], 2);
        r.counter_add("reqs", &[("route", "/a")], 3);
        r.counter_add("reqs", &[("route", "/b")], 1);
        assert_eq!(r.counter_value("reqs", &[("route", "/a")]), 5);
        assert_eq!(r.counter_value("reqs", &[("route", "/b")]), 1);
        assert_eq!(r.counter_value("reqs", &[]), 0);
    }

    #[test]
    fn counter_total_sums_every_label_set() {
        let r = Registry::new();
        r.counter_add("tiles", &[("fmt", "svg")], 3);
        r.counter_add("tiles", &[("fmt", "png")], 4);
        r.counter_add("tiles", &[], 1);
        assert_eq!(r.counter_total("tiles"), 8);
        assert_eq!(r.counter_total("absent"), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        r.counter_add("m", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("m", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter_value("m", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = Registry::new();
        r.gauge_set("g", &[], 4.5);
        assert_eq!(r.gauge_value("g", &[]), Some(4.5));
        r.gauge_add("g", &[], -1.5);
        assert_eq!(r.gauge_value("g", &[]), Some(3.0));
        r.gauge_add("fresh", &[], 2.0);
        assert_eq!(r.gauge_value("fresh", &[]), Some(2.0));
    }

    #[test]
    fn histogram_buckets_fill_cumulatively() {
        let r = Registry::new();
        for v in [0.5, 1.0, 1.5, 20.0] {
            r.observe_with("h", &[], &[1.0, 2.0, 5.0], v);
        }
        let s = r.histogram("h", &[]).unwrap();
        assert_eq!(s.bounds, vec![1.0, 2.0, 5.0]);
        // 0.5 and 1.0 land in le=1 (boundary inclusive), 1.5 in le=2,
        // 20 overflows to +Inf only.
        assert_eq!(s.cumulative, vec![2, 3, 3]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 23.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bounds_fixed_on_first_touch() {
        let r = Registry::new();
        r.observe_with("h", &[], &[1.0, 2.0], 0.1);
        r.observe_with("h", &[], &[100.0], 0.2); // ignored bounds
        let s = r.histogram("h", &[]).unwrap();
        assert_eq!(s.bounds, vec![1.0, 2.0]);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn unsorted_or_infinite_bounds_are_normalized() {
        let r = Registry::new();
        r.observe_with("h", &[], &[5.0, 1.0, f64::INFINITY, 1.0], 3.0);
        let s = r.histogram("h", &[]).unwrap();
        assert_eq!(s.bounds, vec![1.0, 5.0]);
        assert_eq!(s.cumulative, vec![0, 1]);
    }

    #[test]
    fn absorb_turns_spans_into_stage_histograms() {
        let col = Collector::new();
        {
            let _g = col.install();
            let _a = super::super::span("serve.render");
            let _b = super::super::span("serve.encode");
            super::super::count("render.tasks", 7);
        }
        let r = Registry::new();
        r.absorb(&col.report());
        let h = r
            .histogram(
                "jedule_stage_duration_seconds",
                &[("stage", "serve.render")],
            )
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(r.counter_value("jedule_render_tasks_total", &[]), 7);
    }

    #[test]
    fn prometheus_shape_and_escaping() {
        let r = Registry::new();
        r.describe("jedule_http_requests_total", "Requests\nby route \\ status");
        r.counter_add(
            "jedule_http_requests_total",
            &[("route", "/render"), ("status", "200")],
            3,
        );
        r.gauge_set("temp.gauge", &[("k", "va\"l\\ue\n")], 1.5);
        r.observe_with("lat", &[], &[0.5], 0.1);
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP jedule_http_requests_total Requests\\nby route \\\\ status\n")
        );
        assert!(text.contains("# TYPE jedule_http_requests_total counter\n"));
        assert!(text.contains("jedule_http_requests_total{route=\"/render\",status=\"200\"} 3\n"));
        // Metric name sanitized, label value escaped.
        assert!(text.contains("temp_gauge{k=\"va\\\"l\\\\ue\\n\"} 1.5\n"));
        assert!(text.contains("lat_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_sum 0.1\n"));
        assert!(text.contains("lat_count 1\n"));
    }

    #[test]
    fn sanitizers() {
        assert_eq!(sanitize_name("serve.cache-hit"), "serve_cache_hit");
        assert_eq!(sanitize_name("0bad"), "_bad");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("a:b"), "a:b");
        assert_eq!(sanitize_label("a:b"), "a_b");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.005), "0.005");
    }

    #[test]
    fn metrics_json_is_sorted_and_flat() {
        let r = Registry::new();
        r.observe("zeta", &[], 0.001);
        r.observe("alpha", &[("stage", "s")], 0.002);
        r.counter_add("z_total", &[], 1);
        r.counter_add("a_total", &[], 2);
        let json = r.to_metrics_json();
        assert!(json.contains("\"schema\":\"jedule-metrics-v1\""));
        let alpha = json.find("alpha{stage=s}").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta);
        let a = json.find("\"a_total\":2").unwrap();
        let z = json.find("\"z_total\":1").unwrap();
        assert!(a < z);
    }

    /// Walks the whole exposition generically: every `_bucket` run must
    /// be cumulative (non-decreasing in `le` order) and end with a
    /// `le="+Inf"` row equal to the series' `_count`.
    #[test]
    fn exposition_buckets_are_monotone_and_close_at_count() {
        let r = Registry::new();
        for (i, v) in [1e-4, 0.003, 0.02, 0.4, 7.0, 99.0].into_iter().enumerate() {
            let route = if i % 2 == 0 { "/a" } else { "/b" };
            r.observe("jedule_lat_seconds", &[("route", route)], v);
            r.observe_with("coarse", &[], &[0.01, 1.0], v);
        }
        r.counter_add("jedule_http_requests_total", &[], 6);
        r.gauge_set("jedule_inflight", &[], 0.0);
        let text = r.render_prometheus();
        let mut prev: Option<(String, u64)> = None;
        let mut pending_inf: Option<u64> = None;
        let mut series_seen = 0;
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').unwrap();
            if let Some(le) = series.find("le=\"") {
                let prefix = series[..le].to_string();
                let v: u64 = value.parse().unwrap();
                if let Some((p, last)) = &prev {
                    if *p == prefix {
                        assert!(v >= *last, "bucket rows must be cumulative: {line}");
                    }
                }
                if series.contains("le=\"+Inf\"") {
                    pending_inf = Some(v);
                    series_seen += 1;
                }
                prev = Some((prefix, v));
            } else if series.split('{').next().unwrap().ends_with("_count") {
                let inf = pending_inf.take().expect("count follows its +Inf bucket");
                assert_eq!(
                    value.parse::<u64>().unwrap(),
                    inf,
                    "+Inf bucket must equal _count: {line}"
                );
            } else {
                prev = None;
            }
        }
        assert_eq!(series_seen, 3, "three histogram series exported");
        assert!(pending_inf.is_none(), "every +Inf row found its _count");
    }

    /// `/metrics.json` must agree key-for-key with the text
    /// exposition: every counter/gauge sample line maps to one JSON
    /// key, every histogram family+labels appears once, and nothing
    /// extra exists on either side.
    #[test]
    fn render_json_agrees_with_prometheus_text() {
        let r = Registry::new();
        r.counter_add(
            "jedule_http_requests_total",
            &[("route", "/render"), ("status", "200")],
            3,
        );
        r.counter_add(
            "jedule_http_requests_total",
            &[("route", "/metrics"), ("status", "200")],
            1,
        );
        r.gauge_set("jedule_inflight", &[], 2.0);
        r.gauge_set("jedule_connections", &[("state", "reading")], 4.0);
        r.observe(
            "jedule_request_duration_seconds",
            &[("route", "/render")],
            0.012,
        );
        r.observe_with("jedule_queue_depth", &[], &[1.0, 4.0, 16.0], 2.0);
        let json = r.render_json();
        let text = r.render_prometheus();

        // Collect series identifiers from the text exposition.
        let mut text_counters = std::collections::BTreeSet::new();
        let mut text_gauges = std::collections::BTreeSet::new();
        let mut text_hists = std::collections::BTreeSet::new();
        let mut kind = "";
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                kind = rest.split(' ').nth(1).unwrap();
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let series = line.rsplit_once(' ').unwrap().0;
            match kind {
                "counter" => {
                    text_counters.insert(series.to_string());
                }
                "gauge" => {
                    text_gauges.insert(series.to_string());
                }
                "histogram" => {
                    // Reduce `name_sum{labels}` to the family identity;
                    // skip _bucket/_count, _sum alone covers each series.
                    if let Some((name, labels)) = series.split_once('{') {
                        if let Some(fam) = name.strip_suffix("_sum") {
                            text_hists.insert(format!("{fam}{{{labels}"));
                        }
                    } else if let Some(fam) = series.strip_suffix("_sum") {
                        text_hists.insert(fam.to_string());
                    }
                }
                _ => panic!("unknown TYPE {kind}"),
            }
        }

        // Collect keys from the JSON (keys are JSON-escaped Prometheus
        // series identifiers: unescape \" and \\).
        let keys_in = |section: &str| -> std::collections::BTreeSet<String> {
            let start = json.find(&format!("\"{section}\":{{")).unwrap() + section.len() + 4;
            let mut depth = 1;
            let mut end = start;
            let bytes = json.as_bytes();
            let mut in_str = false;
            let mut esc = false;
            while depth > 0 {
                let c = bytes[end] as char;
                if esc {
                    esc = false;
                } else if in_str {
                    match c {
                        '\\' => esc = true,
                        '"' => in_str = false,
                        _ => {}
                    }
                } else {
                    match c {
                        '"' => in_str = true,
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                end += 1;
            }
            let body = &json[start..end - 1];
            // Top-level keys: a quoted string followed by ':' at depth 0.
            let mut keys = std::collections::BTreeSet::new();
            let b = body.as_bytes();
            let mut i = 0;
            let mut d = 0;
            while i < b.len() {
                match b[i] as char {
                    '{' | '[' => {
                        d += 1;
                        i += 1;
                    }
                    '}' | ']' => {
                        d -= 1;
                        i += 1;
                    }
                    '"' if d == 0 => {
                        let mut j = i + 1;
                        let mut s = String::new();
                        loop {
                            match b[j] as char {
                                '\\' => {
                                    s.push(b[j + 1] as char);
                                    j += 2;
                                }
                                '"' => break,
                                c => {
                                    s.push(c);
                                    j += 1;
                                }
                            }
                        }
                        keys.insert(s);
                        // Skip past the value: advance to next ',' at d==0
                        // handled by the outer loop.
                        i = j + 1;
                    }
                    '"' => {
                        // A string inside a nested value; skip it whole.
                        let mut j = i + 1;
                        while (b[j] as char) != '"' {
                            j += if (b[j] as char) == '\\' { 2 } else { 1 };
                        }
                        i = j + 1;
                    }
                    _ => i += 1,
                }
            }
            keys
        };
        assert_eq!(keys_in("counters"), text_counters);
        assert_eq!(keys_in("gauges"), text_gauges);
        assert_eq!(keys_in("histograms"), text_hists);
        // Keys inside each section are emitted sorted.
        let c = keys_in("counters");
        let mut sorted: Vec<_> = c.iter().cloned().collect();
        sorted.sort();
        let order: Vec<_> = c.into_iter().collect();
        assert_eq!(order, sorted);
    }

    #[test]
    fn render_json_histogram_detail() {
        let r = Registry::new();
        for v in [0.5, 1.5, 9.0] {
            r.observe_with("h", &[], &[1.0, 2.0], v);
        }
        let json = r.render_json();
        assert!(json.contains("\"schema\":\"jedule-registry-v1\""));
        assert!(
            json.contains("\"h\":{\"bounds\":[1,2],\"cumulative\":[1,2],\"sum\":11,\"count\":3}"),
            "{json}"
        );
    }

    #[test]
    fn registry_is_send_sync_and_shared_via_clone() {
        fn check<T: Send + Sync + Clone>() {}
        check::<Registry>();
        let r = Registry::new();
        let r2 = r.clone();
        r2.counter_add("n", &[], 1);
        assert_eq!(r.counter_value("n", &[]), 1);
    }
}
