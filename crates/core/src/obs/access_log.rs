//! A bounded in-memory access log for resident services.
//!
//! The trace ring in `jedule-serve` keeps whole span trees, which is
//! the right shape for "why was request 4711 slow?" but too heavy to
//! retain for every request a busy server answers. [`AccessLog`] keeps
//! the complement: one small structured [`AccessRecord`] per request —
//! method, path, canonical option key, status, cache disposition, and
//! the per-stage micros distilled from the span tree — in a bounded
//! ring that the `/debug/log` endpoint can tail and `--access-log` can
//! stream as JSONL.
//!
//! # Ring design
//!
//! Writers never contend on a global lock. A single atomic cursor
//! hands out monotonically increasing sequence numbers; each sequence
//! maps to `seq % capacity`, and the writer touches only that slot's
//! own lock to store `(seq, Arc<AccessRecord>)`. Two writers can only
//! collide on a slot when the log has wrapped a full capacity between
//! them, in which case the older record was due for eviction anyway —
//! the slot's sequence number decides, newest wins. Readers snapshot
//! slot-by-slot without stopping writers, so a `tail()` taken during a
//! burst is a consistent *set* of recent records (each record is
//! immutable behind its `Arc`) even though it is not a point-in-time
//! freeze of the whole ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One finished request, distilled for the access log. Everything is
/// plain data — the record is built once when the request completes
/// and shared read-only (`Arc`) between the ring, `/debug/log`, and
/// the `--access-log` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessRecord {
    /// Request id — the same id `X-Jedule-Request-Id` echoes and
    /// `/debug/trace/<id>` resolves.
    pub id: u64,
    /// Milliseconds since the Unix epoch at completion time.
    pub unix_ms: u64,
    /// HTTP method.
    pub method: String,
    /// Decoded request path (no query string).
    pub path: String,
    /// Canonical render option key (`fmt=..;w=..;…`), or empty for
    /// endpoints that do not render.
    pub opt_key: String,
    /// Response status code.
    pub status: u16,
    /// Cache disposition: `hit`, `miss`, `tile`, `revalidated`,
    /// `error`, or `none` for non-figure endpoints.
    pub disposition: String,
    /// Total request duration in microseconds.
    pub dur_us: f64,
    /// Response body length in bytes.
    pub bytes: u64,
    /// Per-stage wall micros summed by span name, sorted by name.
    pub stages_us: Vec<(String, f64)>,
    /// Whether the request crossed the `--slow-ms` threshold (its full
    /// span tree is then pinned in the trace ring).
    pub slow: bool,
}

impl AccessRecord {
    /// One JSONL line (no trailing newline): stable key order, stage
    /// names escaped, micros rounded to 0.1 µs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(160 + self.stages_us.len() * 32);
        out.push_str("{\"id\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.id));
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"ts_ms\":{}", self.unix_ms));
        out.push_str(",\"method\":");
        super::json_string(&self.method, &mut out);
        out.push_str(",\"path\":");
        super::json_string(&self.path, &mut out);
        if !self.opt_key.is_empty() {
            out.push_str(",\"opt\":");
            super::json_string(&self.opt_key, &mut out);
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"status\":{}", self.status));
        out.push_str(",\"cache\":");
        super::json_string(&self.disposition, &mut out);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(",\"dur_us\":{:.1},\"bytes\":{}", self.dur_us, self.bytes),
        );
        if self.slow {
            out.push_str(",\"slow\":true");
        }
        out.push_str(",\"stages_us\":{");
        for (i, (name, us)) in self.stages_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            super::json_string(name, &mut out);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(":{us:.1}"));
        }
        out.push_str("}}");
        out
    }
}

/// One ring slot: the sequence number that last claimed it plus the
/// record stored there. Slots lock individually so writers to
/// different slots never serialize on each other.
type Slot = Mutex<Option<(u64, Arc<AccessRecord>)>>;

/// A bounded multi-writer access-record ring. Cloning shares the ring.
#[derive(Clone)]
pub struct AccessLog {
    inner: Arc<AccessLogInner>,
}

struct AccessLogInner {
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl AccessLog {
    /// A ring retaining the most recent `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> AccessLog {
        let capacity = capacity.max(1);
        AccessLog {
            inner: Arc::new(AccessLogInner {
                head: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total records ever pushed (not the retained count).
    pub fn pushed(&self) -> u64 {
        self.inner.head.load(Ordering::Acquire)
    }

    /// Appends a record, evicting the oldest once the ring is full.
    /// Returns the record's sequence number (0-based push order).
    pub fn push(&self, record: AccessRecord) -> u64 {
        let seq = self.inner.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.inner.slots[(seq % self.inner.slots.len() as u64) as usize];
        let mut s = slot.lock().unwrap();
        // A slower writer must not clobber a faster one that already
        // lapped it: the slot belongs to the highest sequence number.
        if s.as_ref().is_none_or(|(old, _)| *old < seq) {
            *s = Some((seq, Arc::new(record)));
        }
        seq
    }

    /// The most recent records, newest first, optionally filtered by
    /// exact status and/or path substring, capped at `n`.
    pub fn tail(
        &self,
        n: usize,
        status: Option<u16>,
        path_contains: Option<&str>,
    ) -> Vec<Arc<AccessRecord>> {
        let mut all: Vec<(u64, Arc<AccessRecord>)> = Vec::with_capacity(self.inner.slots.len());
        for slot in &self.inner.slots {
            if let Some((seq, rec)) = slot.lock().unwrap().as_ref() {
                all.push((*seq, Arc::clone(rec)));
            }
        }
        all.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        all.into_iter()
            .map(|(_, r)| r)
            .filter(|r| status.is_none_or(|s| r.status == s))
            .filter(|r| path_contains.is_none_or(|p| r.path.contains(p)))
            .take(n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, status: u16, path: &str) -> AccessRecord {
        AccessRecord {
            id,
            unix_ms: 1_700_000_000_000 + id,
            method: "GET".into(),
            path: path.into(),
            opt_key: String::new(),
            status,
            disposition: "none".into(),
            dur_us: 12.5,
            bytes: 100,
            stages_us: vec![],
            slow: false,
        }
    }

    #[test]
    fn push_and_tail_newest_first() {
        let log = AccessLog::new(8);
        for i in 0..5 {
            log.push(rec(i, 200, "/render"));
        }
        let t = log.tail(3, None, None);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].id, 4);
        assert_eq!(t[1].id, 3);
        assert_eq!(t[2].id, 2);
        assert_eq!(log.pushed(), 5);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let log = AccessLog::new(4);
        for i in 0..10 {
            log.push(rec(i, 200, "/"));
        }
        let t = log.tail(100, None, None);
        let ids: Vec<u64> = t.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6]);
    }

    #[test]
    fn tail_filters_by_status_and_path() {
        let log = AccessLog::new(16);
        log.push(rec(1, 200, "/render"));
        log.push(rec(2, 404, "/render"));
        log.push(rec(3, 200, "/metrics"));
        let by_status = log.tail(10, Some(404), None);
        assert_eq!(by_status.len(), 1);
        assert_eq!(by_status[0].id, 2);
        let by_path = log.tail(10, None, Some("render"));
        assert_eq!(by_path.len(), 2);
        let both = log.tail(10, Some(200), Some("metrics"));
        assert_eq!(both.len(), 1);
        assert_eq!(both[0].id, 3);
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let mut r = rec(7, 404, "/render\"x");
        r.opt_key = "fmt=svg;w=800".into();
        r.disposition = "error".into();
        r.slow = true;
        r.stages_us = vec![("serve.route".into(), 41.25)];
        let line = r.to_jsonl();
        assert!(line.starts_with("{\"id\":7,"));
        assert!(line.contains("\"path\":\"/render\\\"x\""));
        assert!(line.contains("\"opt\":\"fmt=svg;w=800\""));
        assert!(line.contains("\"status\":404"));
        assert!(line.contains("\"cache\":\"error\""));
        assert!(line.contains("\"slow\":true"));
        assert!(line.contains("\"stages_us\":{\"serve.route\":41.2"));
        assert!(line.ends_with("}}"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn jsonl_omits_empty_opt_and_false_slow() {
        let line = rec(1, 200, "/healthz").to_jsonl();
        assert!(!line.contains("\"opt\""));
        assert!(!line.contains("\"slow\""));
    }

    #[test]
    fn capacity_clamped_to_one() {
        let log = AccessLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.push(rec(1, 200, "/"));
        log.push(rec(2, 200, "/"));
        let t = log.tail(10, None, None);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].id, 2);
    }
}
