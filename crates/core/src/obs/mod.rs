//! Workspace-wide observability: hierarchical spans, monotonic counters,
//! and two exporters (Chrome trace-event JSON, flat metrics JSON).
//!
//! Every hot stage of the pipeline — ingest, prepare, layout, raster,
//! encode, and the scheduler/simulator crates — records where time goes
//! through this one module, so `--timings`, `--profile`, `--metrics-json`
//! and the CI perf-regression gate are all views over the same data
//! instead of parallel ad-hoc clocks.
//!
//! # Model
//!
//! A [`Collector`] owns a wall-clock epoch, a span list and a counter
//! table. Installing it (RAII, [`Collector::install`]) makes it the
//! *current* collector of the calling thread; the free functions
//! [`span`], [`count`] and [`handle`] then record into it. When no
//! collector is installed they are no-ops — a single thread-local read —
//! so instrumentation is effectively free in production renders and
//! cannot change output bytes (property-tested).
//!
//! Spans are hierarchical per thread: a span opened while another is
//! open on the same thread becomes its child. Worker threads do not
//! inherit the parent thread's collector; parallel stages capture a
//! [`Handle`] before spawning and [`Handle::attach`] it inside the
//! worker, which keeps attribution explicit and data races impossible.
//!
//! # Exporters
//!
//! [`ObsReport::to_chrome_trace`] emits Chrome trace-event JSON (`ph:"X"`
//! complete events, microsecond timestamps) loadable in Perfetto or
//! `about://tracing`; [`ObsReport::to_metrics_json`] emits the flat
//! `jedule-metrics-v1` schema the CI gate diffs against checked-in
//! baselines; [`ObsReport::tree_report`] is the human `--timings` view.

pub mod access_log;
pub mod registry;

pub use access_log::{AccessLog, AccessRecord};
pub use registry::{HistogramSnapshot, Registry, DEFAULT_LATENCY_BUCKETS_S};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span: `[start_us, start_us + dur_us]` relative to the
/// collector's epoch, on thread `thread`, nested under `parent`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Collector-unique id (allocation order, not completion order).
    pub id: u32,
    /// Enclosing span on the same thread at open time, if any.
    pub parent: Option<u32>,
    /// Static stage name, e.g. `"render.layout"`.
    pub name: &'static str,
    /// Optional dynamic annotation (format name, chunk index, …).
    pub detail: Option<String>,
    /// Process-unique thread number (1-based, assignment order).
    pub thread: u64,
    /// Microseconds from the collector epoch to the span start.
    pub start_us: f64,
    /// Span duration in microseconds.
    pub dur_us: f64,
}

impl SpanRecord {
    /// Microseconds from the epoch to the span end.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    next_id: u32,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// An observability sink: spans and counters accumulate here while it is
/// installed (or reached through a [`Handle`]). Cloning is cheap and
/// shares the sink.
#[derive(Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

thread_local! {
    /// Stack of installed collectors (innermost last).
    static CURRENT: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
    /// Stack of open spans on this thread: (collector ptr, span id).
    static OPEN: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
}

static THREAD_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_NUM: u64 = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
}

fn thread_num() -> u64 {
    THREAD_NUM.with(|t| *t)
}

impl Collector {
    pub fn new() -> Collector {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    fn ptr(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Makes this the calling thread's current collector until the guard
    /// drops. Installs nest: the innermost wins.
    #[must_use = "dropping the guard immediately uninstalls the collector"]
    pub fn install(&self) -> InstallGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        InstallGuard {
            ptr: self.ptr(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Opens a span attributed to this collector on the calling thread.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_inner(name, None)
    }

    /// [`Collector::span`] with a dynamic annotation.
    pub fn span_with(&self, name: &'static str, detail: impl Into<String>) -> SpanGuard {
        self.span_inner(name, Some(detail.into()))
    }

    fn span_inner(&self, name: &'static str, detail: Option<String>) -> SpanGuard {
        let ptr = self.ptr();
        let parent = OPEN.with(|o| {
            o.borrow()
                .last()
                .and_then(|&(p, id)| (p == ptr).then_some(id))
        });
        let id = {
            let mut st = self.inner.state.lock().unwrap();
            let id = st.next_id;
            st.next_id += 1;
            id
        };
        OPEN.with(|o| o.borrow_mut().push((ptr, id)));
        SpanGuard(Some(ActiveSpan {
            collector: self.clone(),
            id,
            parent,
            name,
            detail,
            start: Instant::now(),
        }))
    }

    /// Adds `n` to the named monotonic counter.
    pub fn count(&self, name: &'static str, n: u64) {
        let mut st = self.inner.state.lock().unwrap();
        *st.counters.entry(name).or_insert(0) += n;
    }

    /// Snapshots everything recorded so far. Spans are sorted by start
    /// time (ties by id, i.e. open order).
    pub fn report(&self) -> ObsReport {
        let st = self.inner.state.lock().unwrap();
        let mut spans = st.spans.clone();
        spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
        ObsReport {
            spans,
            counters: st
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// RAII guard returned by [`Collector::install`]; uninstalls on drop.
pub struct InstallGuard {
    ptr: usize,
    /// Install/uninstall manipulate thread-local stacks; the guard must
    /// drop on the installing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|col| col.ptr() == self.ptr) {
                stack.remove(pos);
            }
        });
    }
}

struct ActiveSpan {
    collector: Collector,
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    detail: Option<String>,
    start: Instant,
}

/// An open span; records itself on drop. No-op (`None`) when created
/// through the free functions with no collector installed.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// A guard that records nothing.
    pub fn disabled() -> SpanGuard {
        SpanGuard(None)
    }

    /// The span's collector-unique id, if recording.
    pub fn id(&self) -> Option<u32> {
        self.0.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let end = Instant::now();
        let ptr = active.collector.ptr();
        OPEN.with(|o| {
            let mut stack = o.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(p, id)| p == ptr && id == active.id)
            {
                stack.remove(pos);
            }
        });
        let epoch = active.collector.inner.epoch;
        let start_us = active.start.duration_since(epoch).as_secs_f64() * 1e6;
        let dur_us = end.duration_since(active.start).as_secs_f64() * 1e6;
        let mut st = active.collector.inner.state.lock().unwrap();
        st.spans.push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            detail: active.detail,
            thread: thread_num(),
            start_us,
            dur_us,
        });
    }
}

/// The calling thread's current collector, if one is installed.
pub fn current() -> Option<Collector> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Whether instrumentation is live on the calling thread.
pub fn enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Opens a span on the current collector; no-op when none is installed.
pub fn span(name: &'static str) -> SpanGuard {
    match current() {
        Some(c) => c.span(name),
        None => SpanGuard(None),
    }
}

/// [`span`] with a lazily built annotation (the closure only runs when a
/// collector is installed).
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    match current() {
        Some(c) => c.span_inner(name, Some(detail())),
        None => SpanGuard(None),
    }
}

/// Adds to a counter on the current collector; no-op when none is
/// installed.
pub fn count(name: &'static str, n: u64) {
    if let Some(c) = current() {
        c.count(name, n);
    }
}

/// A sendable reference to the current collector (or to nothing), for
/// handing instrumentation across thread spawns: capture before
/// spawning, [`Handle::attach`] inside the worker.
#[derive(Clone)]
pub struct Handle(Option<Collector>);

impl Handle {
    /// Installs the referenced collector on the calling thread for the
    /// guard's lifetime; `None` when the handle is empty (observability
    /// was disabled where the handle was taken).
    pub fn attach(&self) -> Option<InstallGuard> {
        self.0.as_ref().map(Collector::install)
    }
}

/// Captures the calling thread's current collector as a [`Handle`].
pub fn handle() -> Handle {
    Handle(current())
}

/// An immutable snapshot of a collector: spans sorted by start time,
/// counters sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    pub spans: Vec<SpanRecord>,
    pub counters: Vec<(String, u64)>,
}

impl ObsReport {
    /// The value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Summed duration (ms) of every span with this exact name.
    pub fn stage_total_ms(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .sum::<f64>()
            / 1e3
    }

    /// The spans whose parent is `parent` (`None` selects the roots),
    /// in start order.
    pub fn children_of(&self, parent: Option<u32>) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// The span with this id, if present.
    pub fn find(&self, id: u32) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Chrome trace-event JSON (`{"traceEvents":[…]}` with `ph:"X"`
    /// complete events), loadable in Perfetto / `about://tracing`.
    /// Counters travel in `otherData.counters`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(s.name, &mut out);
            let _ = write!(
                out,
                ",\"cat\":\"jedule\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
                s.start_us, s.dur_us, s.thread
            );
            out.push_str(",\"args\":{");
            let _ = write!(out, "\"id\":{}", s.id);
            if let Some(p) = s.parent {
                let _ = write!(out, ",\"parent\":{p}");
            }
            if let Some(d) = &s.detail {
                out.push_str(",\"detail\":");
                json_string(d, &mut out);
            }
            out.push_str("}}");
        }
        out.push_str("],\"otherData\":{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(k, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}}");
        out
    }

    /// Flat machine-readable metrics (`jedule-metrics-v1`): per stage
    /// name the summed wall time and span count, plus every counter.
    /// This is the schema the CI perf gate diffs against baselines.
    pub fn to_metrics_json(&self) -> String {
        let mut stages: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = stages.entry(s.name).or_insert((0.0, 0));
            e.0 += s.dur_us;
            e.1 += 1;
        }
        let mut out = String::from("{\"schema\":\"jedule-metrics-v1\",\"stages\":{");
        for (i, (name, (us, n))) in stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(name, &mut out);
            let _ = write!(out, ":{{\"wall_ms\":{:.4},\"count\":{n}}}", us / 1e3);
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(k, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}\n");
        out
    }

    /// Human-readable span tree (the `--timings` view). Sibling spans
    /// with the same name aggregate into one `×N` line; each parent gets
    /// an `(untracked)` remainder line when its children leave more than
    /// 1 µs unaccounted, so the printed stages always sum to the printed
    /// wall times.
    pub fn tree_report(&self) -> String {
        let mut out = String::new();
        let roots = self.children_of(None);
        let total_us: f64 = roots.iter().map(|s| s.dur_us).sum();
        self.tree_level(&roots, 0, &mut out);
        if roots.len() > 1 {
            let _ = writeln!(out, "total   {:10.3} ms", total_us / 1e3);
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<38} {v}");
            }
        }
        out
    }

    fn tree_level(&self, spans: &[&SpanRecord], depth: usize, out: &mut String) {
        // Aggregate same-named siblings, preserving first-start order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut agg: BTreeMap<&'static str, (f64, usize, Vec<u32>)> = BTreeMap::new();
        for s in spans {
            let e = agg.entry(s.name).or_insert_with(|| {
                order.push(s.name);
                (0.0, 0, Vec::new())
            });
            e.0 += s.dur_us;
            e.1 += 1;
            e.2.push(s.id);
        }
        for name in order {
            let (us, n, ids) = &agg[name];
            let label = if *n > 1 {
                format!("{name} ×{n}")
            } else if let Some(d) = spans
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.detail.as_deref())
            {
                format!("{name} [{d}]")
            } else {
                name.to_string()
            };
            let indent = "  ".repeat(depth);
            let _ = writeln!(
                out,
                "{indent}{label:<width$} {:10.3} ms",
                us / 1e3,
                width = 40usize.saturating_sub(depth * 2)
            );
            let mut children: Vec<&SpanRecord> = Vec::new();
            for id in ids {
                children.extend(self.children_of(Some(*id)));
            }
            if !children.is_empty() {
                children.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
                self.tree_level(&children, depth + 1, out);
                let child_us: f64 = children.iter().map(|s| s.dur_us).sum();
                let rest = us - child_us;
                if rest > 1.0 {
                    let indent = "  ".repeat(depth + 1);
                    let _ = writeln!(
                        out,
                        "{indent}{:<width$} {:10.3} ms",
                        "(untracked)",
                        rest / 1e3,
                        width = 40usize.saturating_sub((depth + 1) * 2)
                    );
                }
            }
        }
    }
}

/// Minimal JSON string escaping (the exporters cannot depend on
/// `jedule-xmlio`'s JSON writer — that crate depends on this one).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_a_noop() {
        assert!(!enabled());
        assert!(current().is_none());
        let g = span("anything");
        assert!(g.id().is_none());
        drop(g);
        count("nothing", 5); // must not panic
        assert!(handle().attach().is_none());
    }

    #[test]
    fn spans_nest_per_thread() {
        let col = Collector::new();
        {
            let _g = col.install();
            assert!(enabled());
            let outer = span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span("inner");
                assert_ne!(inner.id(), outer.id());
            }
            drop(outer);
            let free = span("free");
            assert!(free.id().is_some());
            drop(free);
            let rep = col.report();
            let inner = rep.spans.iter().find(|s| s.name == "inner").unwrap();
            assert_eq!(inner.parent, Some(outer_id));
            let free = rep.spans.iter().find(|s| s.name == "free").unwrap();
            assert_eq!(free.parent, None);
        }
        assert!(!enabled());
    }

    #[test]
    fn children_stay_inside_parents() {
        let col = Collector::new();
        let _g = col.install();
        {
            let _a = span("a");
            let _b = span("b");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let rep = col.report();
        let a = rep.spans.iter().find(|s| s.name == "a").unwrap();
        let b = rep.spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.parent, Some(a.id));
        assert!(b.start_us >= a.start_us);
        assert!(b.end_us() <= a.end_us());
        assert!(a.dur_us >= 1000.0);
    }

    #[test]
    fn counters_accumulate() {
        let col = Collector::new();
        let _g = col.install();
        count("tasks", 3);
        count("tasks", 4);
        count("other", 1);
        let rep = col.report();
        assert_eq!(rep.counter("tasks"), 7);
        assert_eq!(rep.counter("other"), 1);
        assert_eq!(rep.counter("absent"), 0);
    }

    #[test]
    fn handle_carries_collector_across_threads() {
        let col = Collector::new();
        let _g = col.install();
        let h = handle();
        let joins: Vec<_> = (0..3)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let _att = h.attach();
                    let _s = span_with("worker", || format!("chunk {i}"));
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let rep = col.report();
        let workers: Vec<_> = rep.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        // Worker spans are roots (no cross-thread parenting) on three
        // distinct threads.
        let mut threads: Vec<u64> = workers.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 3);
        assert!(workers.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn nested_install_wins_and_unwinds() {
        let a = Collector::new();
        let b = Collector::new();
        let _ga = a.install();
        {
            let _gb = b.install();
            let _s = span("into_b");
        }
        let _s = span("into_a");
        drop(_s);
        assert_eq!(a.report().spans.len(), 1);
        assert_eq!(a.report().spans[0].name, "into_a");
        assert_eq!(b.report().spans.len(), 1);
        assert_eq!(b.report().spans[0].name, "into_b");
    }

    #[test]
    fn chrome_trace_shape() {
        let col = Collector::new();
        {
            let _g = col.install();
            let _a = span("stage");
            let _b = col.span_with("sub", "de\"tail");
            count("bytes", 42);
        }
        let json = col.report().to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"stage\""));
        assert!(json.contains("\"detail\":\"de\\\"tail\""));
        assert!(json.contains("\"counters\":{\"bytes\":42}"));
    }

    #[test]
    fn metrics_json_aggregates_stages() {
        let col = Collector::new();
        {
            let _g = col.install();
            for _ in 0..3 {
                let _s = span("stage");
            }
            count("n", 9);
        }
        let json = col.report().to_metrics_json();
        assert!(json.contains("\"schema\":\"jedule-metrics-v1\""));
        assert!(json.contains("\"stage\":{\"wall_ms\":"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"n\":9"));
    }

    #[test]
    fn tree_report_sums_and_indents() {
        let col = Collector::new();
        {
            let _g = col.install();
            let _root = span("root");
            let _c1 = span("child");
            drop(_c1);
            let _c2 = span("child");
        }
        let rep = col.report();
        let text = rep.tree_report();
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("child ×2"), "{text}");
        // The root's duration bounds the children's sum.
        let root = rep.spans.iter().find(|s| s.name == "root").unwrap();
        let kids: f64 = rep
            .children_of(Some(root.id))
            .iter()
            .map(|s| s.dur_us)
            .sum();
        assert!(kids <= root.dur_us);
    }

    #[test]
    fn report_spans_sorted_by_start() {
        let col = Collector::new();
        let _g = col.install();
        for _ in 0..5 {
            let _s = span("s");
        }
        let rep = col.report();
        for w in rep.spans.windows(2) {
            assert!(w[0].start_us <= w[1].start_us);
        }
    }
}
