//! Sets of hosts within a cluster.
//!
//! A Jedule task may occupy a *non-contiguous* set of resources, in which
//! case it is drawn as multiple rectangles (paper, §II-A). The XML format
//! expresses host sets as a list of `<hosts start=... nb=.../>` ranges;
//! [`HostSet`] is the normalized in-memory form: sorted, coalesced,
//! non-overlapping ranges of cluster-local host indices.

use std::fmt;

/// A contiguous range of `nb` hosts starting at cluster-local index `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostRange {
    pub start: u32,
    pub nb: u32,
}

impl HostRange {
    pub fn new(start: u32, nb: u32) -> Self {
        HostRange { start, nb }
    }

    /// One-past-the-end host index.
    pub fn end(&self) -> u32 {
        self.start + self.nb
    }

    pub fn contains(&self, host: u32) -> bool {
        host >= self.start && host < self.end()
    }
}

/// A normalized set of cluster-local host indices.
///
/// Representation: the overwhelmingly common case — a single contiguous
/// range per allocation — is stored **inline**, so reading it costs no
/// heap dereference. Layout walks every task's host set once per render
/// (10⁶ times for a bird's-eye chart), and the dependent pointer chase
/// `Task → allocations → HostSet → ranges` was a measurable share of the
/// scan; the inline fast path removes its last hop. Multi-range sets
/// spill to a `Vec` (invariant: `spill.len() >= 2` and `inline` unset),
/// which keeps the derived `PartialEq`/`Hash` canonical — every set has
/// exactly one representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct HostSet {
    inline: Option<HostRange>,
    spill: Vec<HostRange>,
}

impl HostSet {
    /// The empty host set.
    pub fn new() -> Self {
        HostSet::default()
    }

    /// A single contiguous range `[start, start + nb)`.
    pub fn contiguous(start: u32, nb: u32) -> Self {
        if nb == 0 {
            return HostSet::new();
        }
        HostSet {
            inline: Some(HostRange::new(start, nb)),
            spill: Vec::new(),
        }
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted) ranges.
    pub fn from_ranges<I: IntoIterator<Item = HostRange>>(ranges: I) -> Self {
        Self::normalized(ranges.into_iter().collect())
    }

    /// Builds a set from individual host indices.
    pub fn from_hosts<I: IntoIterator<Item = u32>>(hosts: I) -> Self {
        let mut v: Vec<u32> = hosts.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        let mut ranges: Vec<HostRange> = Vec::new();
        let mut it = v.into_iter();
        if let Some(first) = it.next() {
            let mut start = first;
            let mut prev = first;
            for h in it {
                if h == prev + 1 {
                    prev = h;
                } else {
                    ranges.push(HostRange::new(start, prev - start + 1));
                    start = h;
                    prev = h;
                }
            }
            ranges.push(HostRange::new(start, prev - start + 1));
        }
        Self::normalized(ranges)
    }

    /// Sorts, coalesces and packs ranges into the canonical representation.
    fn normalized(mut v: Vec<HostRange>) -> HostSet {
        v.sort_unstable();
        let mut out: Vec<HostRange> = Vec::with_capacity(v.len());
        for r in v {
            if r.nb == 0 {
                continue;
            }
            match out.last_mut() {
                Some(last) if r.start <= last.end() => {
                    let new_end = last.end().max(r.end());
                    last.nb = new_end - last.start;
                }
                _ => out.push(r),
            }
        }
        match out.len() {
            0 => HostSet::default(),
            1 => HostSet {
                inline: Some(out[0]),
                spill: Vec::new(),
            },
            _ => HostSet {
                inline: None,
                spill: out,
            },
        }
    }

    /// Inserts a range, keeping the set normalized (sorted + coalesced).
    pub fn insert_range(&mut self, r: HostRange) {
        if r.nb == 0 {
            return;
        }
        let mut v = self.ranges().to_vec();
        v.push(r);
        *self = Self::normalized(v);
    }

    /// The normalized ranges (sorted, disjoint, maximal).
    pub fn ranges(&self) -> &[HostRange] {
        match &self.inline {
            Some(r) => std::slice::from_ref(r),
            None => &self.spill,
        }
    }

    /// Total number of hosts in the set.
    pub fn count(&self) -> u32 {
        self.ranges().iter().map(|r| r.nb).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.inline.is_none() && self.spill.is_empty()
    }

    /// True if the set is a single contiguous run (one rectangle suffices).
    pub fn is_contiguous(&self) -> bool {
        self.ranges().len() <= 1
    }

    pub fn contains(&self, host: u32) -> bool {
        // Ranges are sorted; binary search by start.
        self.ranges()
            .binary_search_by(|r| {
                if r.contains(host) {
                    std::cmp::Ordering::Equal
                } else if r.end() <= host {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .is_ok()
    }

    /// Smallest host index, if non-empty.
    pub fn min_host(&self) -> Option<u32> {
        self.ranges().first().map(|r| r.start)
    }

    /// Largest host index, if non-empty.
    pub fn max_host(&self) -> Option<u32> {
        self.ranges().last().map(|r| r.end() - 1)
    }

    /// Iterates all host indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranges().iter().flat_map(|r| r.start..r.end())
    }

    /// Set union.
    pub fn union(&self, other: &HostSet) -> HostSet {
        HostSet::from_ranges(self.ranges().iter().chain(other.ranges().iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &HostSet) -> HostSet {
        let (xs, ys) = (self.ranges(), other.ranges());
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < xs.len() && j < ys.len() {
            let a = xs[i];
            let b = ys[j];
            let lo = a.start.max(b.start);
            let hi = a.end().min(b.end());
            if lo < hi {
                out.push(HostRange::new(lo, hi - lo));
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Intersecting normalized sets yields sorted disjoint ranges, but
        // adjacent ones may now touch; normalize to the canonical form.
        Self::normalized(out)
    }

    /// True if the two sets share at least one host.
    pub fn intersects(&self, other: &HostSet) -> bool {
        let (xs, ys) = (self.ranges(), other.ranges());
        let (mut i, mut j) = (0usize, 0usize);
        while i < xs.len() && j < ys.len() {
            let a = xs[i];
            let b = ys[j];
            if a.start.max(b.start) < a.end().min(b.end()) {
                return true;
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }
}

impl fmt::Display for HostSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for r in self.ranges() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if r.nb == 1 {
                write!(f, "{}", r.start)?;
            } else {
                write!(f, "{}-{}", r.start, r.end() - 1)?;
            }
        }
        Ok(())
    }
}

impl FromIterator<u32> for HostSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        HostSet::from_hosts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_roundtrip() {
        let s = HostSet::contiguous(0, 8);
        assert_eq!(s.count(), 8);
        assert!(s.is_contiguous());
        assert_eq!(s.min_host(), Some(0));
        assert_eq!(s.max_host(), Some(7));
        assert_eq!(s.to_string(), "0-7");
    }

    #[test]
    fn from_hosts_coalesces() {
        let s = HostSet::from_hosts([3, 1, 2, 7, 8, 5]);
        assert_eq!(s.ranges().len(), 3);
        assert_eq!(s.to_string(), "1-3,5,7-8");
        assert_eq!(s.count(), 6);
        assert!(!s.is_contiguous());
    }

    #[test]
    fn overlapping_ranges_merge() {
        let s = HostSet::from_ranges([HostRange::new(0, 4), HostRange::new(2, 4)]);
        assert_eq!(s.ranges(), &[HostRange::new(0, 6)]);
    }

    #[test]
    fn adjacent_ranges_merge() {
        let s = HostSet::from_ranges([HostRange::new(0, 4), HostRange::new(4, 4)]);
        assert_eq!(s.ranges(), &[HostRange::new(0, 8)]);
        assert!(s.is_contiguous());
    }

    #[test]
    fn contains_binary_search() {
        let s = HostSet::from_hosts([0, 1, 5, 6, 10]);
        for h in [0, 1, 5, 6, 10] {
            assert!(s.contains(h), "missing {h}");
        }
        for h in [2, 3, 4, 7, 9, 11, 100] {
            assert!(!s.contains(h), "spurious {h}");
        }
    }

    #[test]
    fn intersection_and_union() {
        let a = HostSet::from_hosts([0, 1, 2, 5, 6]);
        let b = HostSet::from_hosts([2, 3, 5]);
        assert_eq!(a.intersect(&b), HostSet::from_hosts([2, 5]));
        assert!(a.intersects(&b));
        assert_eq!(a.union(&b), HostSet::from_hosts([0, 1, 2, 3, 5, 6]));
        let c = HostSet::from_hosts([8, 9]);
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn empty_set() {
        let s = HostSet::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min_host(), None);
        assert!(!s.contains(0));
        assert_eq!(s.to_string(), "");
    }

    #[test]
    fn zero_width_ranges_ignored() {
        let s = HostSet::from_ranges([HostRange::new(3, 0), HostRange::new(1, 2)]);
        assert_eq!(s.ranges(), &[HostRange::new(1, 2)]);
    }

    #[test]
    fn iter_matches_contains() {
        let s = HostSet::from_hosts([4, 9, 10, 11, 2]);
        let collected: Vec<u32> = s.iter().collect();
        assert_eq!(collected, vec![2, 4, 9, 10, 11]);
    }
}
