//! Schedule transformations: shifting, scaling, filtering and merging.
//!
//! The interactive mode lets the user "focus on specific parts of the
//! schedule by filtering" (paper, §IX) — [`filter_types`] and
//! [`filter_window`] implement that; [`normalize`]/[`scale_time`] support
//! comparing runs with different time origins; [`merge`] stacks two
//! schedules (e.g. the CPA/MCPA side-by-side comparison of §III-B as one
//! document).

use crate::model::{Cluster, Schedule};

/// Shifts all task times by `dt`.
pub fn shift_time(schedule: &Schedule, dt: f64) -> Schedule {
    let mut s = schedule.clone();
    for t in &mut s.tasks {
        t.start += dt;
        t.end += dt;
    }
    s
}

/// Shifts the schedule so the earliest task starts at 0.
pub fn normalize(schedule: &Schedule) -> Schedule {
    match schedule.min_start() {
        Some(m) if m != 0.0 => shift_time(schedule, -m),
        _ => schedule.clone(),
    }
}

/// Scales all task times by `factor` (e.g. seconds → milliseconds).
pub fn scale_time(schedule: &Schedule, factor: f64) -> Schedule {
    let mut s = schedule.clone();
    for t in &mut s.tasks {
        t.start *= factor;
        t.end *= factor;
    }
    s
}

/// Keeps only tasks whose type satisfies `keep`.
pub fn filter_types<F: Fn(&str) -> bool>(schedule: &Schedule, keep: F) -> Schedule {
    let mut s = schedule.clone();
    s.tasks.retain(|t| keep(&t.kind));
    s
}

/// Keeps only tasks intersecting `[t0, t1]`, clipping them to the window.
pub fn filter_window(schedule: &Schedule, t0: f64, t1: f64) -> Schedule {
    let mut s = schedule.clone();
    s.tasks.retain_mut(|t| {
        if t.end <= t0 || t.start >= t1 {
            return false;
        }
        t.start = t.start.max(t0);
        t.end = t.end.min(t1);
        true
    });
    s
}

/// Stacks two schedules into one document: `b`'s clusters are appended
/// after `a`'s with re-numbered ids (offset by `a`'s max id + 1), task
/// ids prefixed to stay unique. Useful for side-by-side algorithm
/// comparisons in a single Jedule file.
pub fn merge(a: &Schedule, b: &Schedule, a_name: &str, b_name: &str) -> Schedule {
    let mut out = Schedule::new();
    let offset = a.clusters.iter().map(|c| c.id).max().map_or(0, |m| m + 1);

    for c in &a.clusters {
        out.clusters
            .push(Cluster::new(c.id, format!("{a_name}:{}", c.name), c.hosts));
    }
    for c in &b.clusters {
        out.clusters.push(Cluster::new(
            c.id + offset,
            format!("{b_name}:{}", c.name),
            c.hosts,
        ));
    }
    for t in &a.tasks {
        let mut t = t.clone();
        t.id = format!("{a_name}.{}", t.id);
        out.tasks.push(t);
    }
    for t in &b.tasks {
        let mut t = t.clone();
        t.id = format!("{b_name}.{}", t.id);
        for alloc in &mut t.allocations {
            alloc.cluster += offset;
        }
        out.tasks.push(t);
    }
    for (k, v) in a.meta.iter() {
        out.meta.set(format!("{a_name}.{k}"), v);
    }
    for (k, v) in b.meta.iter() {
        out.meta.set(format!("{b_name}.{k}"), v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::model::{Allocation, Task};
    use crate::validate::validate;

    fn sample() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 4)
            .meta("alg", "x")
            .task(Task::new("a", "computation", 1.0, 3.0).on(Allocation::contiguous(0, 0, 2)))
            .task(Task::new("b", "transfer", 2.0, 5.0).on(Allocation::contiguous(0, 2, 2)))
            .build()
            .unwrap()
    }

    #[test]
    fn shift_and_normalize() {
        let s = sample();
        let shifted = shift_time(&s, 10.0);
        assert_eq!(shifted.min_start(), Some(11.0));
        assert_eq!(shifted.makespan(), s.makespan());
        let norm = normalize(&shifted);
        assert_eq!(norm.min_start(), Some(0.0));
        assert_eq!(norm.makespan(), s.makespan());
        // Normalizing an already-normalized schedule is the identity.
        assert_eq!(normalize(&norm), norm);
    }

    #[test]
    fn scaling() {
        let s = scale_time(&sample(), 1000.0);
        assert_eq!(s.tasks[0].start, 1000.0);
        assert_eq!(s.tasks[0].end, 3000.0);
        assert_eq!(s.makespan(), sample().makespan() * 1000.0);
    }

    #[test]
    fn type_filter() {
        let s = filter_types(&sample(), |k| k == "transfer");
        assert_eq!(s.tasks.len(), 1);
        assert_eq!(s.tasks[0].id, "b");
        // Clusters and meta survive.
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.meta.get("alg"), Some("x"));
    }

    #[test]
    fn window_filter_clips() {
        let s = filter_window(&sample(), 2.5, 4.0);
        assert_eq!(s.tasks.len(), 2);
        let a = s.task_by_id("a").unwrap();
        assert_eq!((a.start, a.end), (2.5, 3.0));
        let b = s.task_by_id("b").unwrap();
        assert_eq!((b.start, b.end), (2.5, 4.0));
        // Fully-outside tasks vanish.
        let empty = filter_window(&sample(), 10.0, 20.0);
        assert!(empty.tasks.is_empty());
    }

    #[test]
    fn merge_stacks_schedules() {
        let a = sample();
        let b = sample();
        let m = merge(&a, &b, "cpa", "mcpa");
        assert!(validate(&m).is_empty());
        assert_eq!(m.clusters.len(), 2);
        assert_eq!(m.clusters[0].name, "cpa:c0");
        assert_eq!(m.clusters[1].name, "mcpa:c0");
        assert_eq!(m.clusters[1].id, 1);
        assert_eq!(m.tasks.len(), 4);
        assert!(m.task_by_id("cpa.a").is_some());
        assert!(m.task_by_id("mcpa.b").is_some());
        // The second schedule's allocations moved to the new cluster id.
        let mb = m.task_by_id("mcpa.a").unwrap();
        assert_eq!(mb.allocations[0].cluster, 1);
        assert_eq!(m.meta.get("cpa.alg"), Some("x"));
        assert_eq!(m.meta.get("mcpa.alg"), Some("x"));
    }

    #[test]
    fn merge_with_empty() {
        let a = sample();
        let empty = ScheduleBuilder::new().cluster(0, "e", 2).build().unwrap();
        let m = merge(&a, &empty, "a", "b");
        assert_eq!(m.clusters.len(), 2);
        assert_eq!(m.tasks.len(), 2);
    }
}
