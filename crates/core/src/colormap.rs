//! User-defined color maps (paper, §II-C4 and Fig. 2).
//!
//! A color map assigns a background and a foreground color to each task
//! *type*, plus optional *composite rules*: a set of types that, when
//! overlapping, get a dedicated color (the paper's orange
//! computation+transfer example). Color maps also carry a few drawing
//! configuration values (font sizes) that the original XML format stores in
//! `<conf .../>` entries.

use crate::color::Color;
use std::collections::BTreeSet;

/// A foreground/background color pair for one task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorPair {
    pub fg: Color,
    pub bg: Color,
}

impl ColorPair {
    pub fn new(fg: Color, bg: Color) -> Self {
        ColorPair { fg, bg }
    }

    /// Picks a readable foreground automatically for `bg`.
    pub fn on(bg: Color) -> Self {
        ColorPair {
            fg: bg.contrasting_fg(),
            bg,
        }
    }
}

/// A composite rule: when exactly this set of task types overlaps, use the
/// given colors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeRule {
    pub types: BTreeSet<String>,
    pub colors: ColorPair,
}

/// Drawing configuration carried by a color map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapConfig {
    pub min_font_size_label: f64,
    pub font_size_label: f64,
    pub font_size_axes: f64,
}

impl Default for MapConfig {
    fn default() -> Self {
        // Values of the paper's "standard_map" (Fig. 2).
        MapConfig {
            min_font_size_label: 11.0,
            font_size_label: 13.0,
            font_size_axes: 12.0,
        }
    }
}

/// A named color map.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorMap {
    pub name: String,
    pub config: MapConfig,
    entries: Vec<(String, ColorPair)>,
    composites: Vec<CompositeRule>,
}

/// A deterministic fallback palette cycled through for task types that have
/// no explicit entry (per-application coloring in the multi-DAG case study
/// relies on distinct colors for arbitrarily many types).
const FALLBACK_PALETTE: [Color; 12] = [
    Color::new(0x00, 0x00, 0xff), // blue
    Color::new(0xf1, 0x00, 0x00), // red
    Color::new(0x00, 0x9e, 0x20), // green
    Color::new(0xff, 0xd7, 0x00), // yellow
    Color::new(0xff, 0x62, 0x00), // orange
    Color::new(0x8a, 0x2b, 0xe2), // violet
    Color::new(0x00, 0xb7, 0xc3), // cyan
    Color::new(0xa0, 0x52, 0x2d), // sienna
    Color::new(0xff, 0x69, 0xb4), // pink
    Color::new(0x6b, 0x8e, 0x23), // olive
    Color::new(0x46, 0x82, 0xb4), // steel blue
    Color::new(0x80, 0x80, 0x80), // gray
];

impl ColorMap {
    /// An empty map with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ColorMap {
            name: name.into(),
            config: MapConfig::default(),
            entries: Vec::new(),
            composites: Vec::new(),
        }
    }

    /// The paper's `standard_map` (Fig. 2): blue computation on white text,
    /// red transfer on black text, orange composite of the two.
    pub fn standard() -> Self {
        let mut m = ColorMap::new("standard_map");
        m.set(
            "computation",
            ColorPair::new(Color::WHITE, Color::parse("0000FF").unwrap()),
        );
        m.set(
            "transfer",
            ColorPair::new(Color::BLACK, Color::parse("f10000").unwrap()),
        );
        m.add_composite(
            ["computation", "transfer"],
            ColorPair::new(Color::WHITE, Color::parse("ff6200").unwrap()),
        );
        m
    }

    /// Sets (or replaces) the colors for a task type.
    pub fn set(&mut self, kind: impl Into<String>, colors: ColorPair) {
        let kind = kind.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == kind) {
            e.1 = colors;
        } else {
            self.entries.push((kind, colors));
        }
    }

    /// Adds a composite rule for a set of types.
    pub fn add_composite<I, S>(&mut self, types: I, colors: ColorPair)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let types: BTreeSet<String> = types.into_iter().map(Into::into).collect();
        if let Some(r) = self.composites.iter_mut().find(|r| r.types == types) {
            r.colors = colors;
        } else {
            self.composites.push(CompositeRule { types, colors });
        }
    }

    /// Explicit entry for a task type, if any.
    pub fn get(&self, kind: &str) -> Option<ColorPair> {
        self.entries
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, c)| *c)
    }

    /// Colors for a task type, falling back to the deterministic palette.
    /// The fallback is stable: it depends only on the set of explicit
    /// entries and the type name.
    pub fn resolve(&self, kind: &str) -> ColorPair {
        if let Some(c) = self.get(kind) {
            return c;
        }
        // Hash-free deterministic pick: sum of bytes mod palette length.
        let idx = kind.bytes().fold(0usize, |acc, b| {
            (acc * 31 + usize::from(b)) % FALLBACK_PALETTE.len()
        });
        ColorPair::on(FALLBACK_PALETTE[idx])
    }

    /// Colors for a composite of the given constituent types: the explicit
    /// rule if one matches the exact set, otherwise a blend of the
    /// constituents' background colors.
    pub fn resolve_composite<'a, I>(&self, types: I) -> ColorPair
    where
        I: IntoIterator<Item = &'a str>,
    {
        let set: BTreeSet<String> = types.into_iter().map(str::to_owned).collect();
        if let Some(r) = self.composites.iter().find(|r| r.types == set) {
            return r.colors;
        }
        let bgs: Vec<Color> = set.iter().map(|t| self.resolve(t).bg).collect();
        ColorPair::on(Color::blend(&bgs))
    }

    /// All explicit entries, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, ColorPair)> {
        self.entries.iter().map(|(k, c)| (k.as_str(), *c))
    }

    /// All composite rules.
    pub fn composites(&self) -> &[CompositeRule] {
        &self.composites
    }

    /// A grayscale version of this map (journal style guides sometimes
    /// require gray scale graphics — paper, §II-D2).
    pub fn to_grayscale(&self) -> ColorMap {
        let gray = |p: ColorPair| ColorPair {
            fg: p.fg.to_grayscale(),
            bg: p.bg.to_grayscale(),
        };
        ColorMap {
            name: format!("{}_gray", self.name),
            config: self.config,
            entries: self
                .entries
                .iter()
                .map(|(k, c)| (k.clone(), gray(*c)))
                .collect(),
            composites: self
                .composites
                .iter()
                .map(|r| CompositeRule {
                    types: r.types.clone(),
                    colors: gray(r.colors),
                })
                .collect(),
        }
    }

    /// Builds a map that assigns one palette color per given type — the
    /// per-application coloring used in the multi-DAG case study (Fig. 5).
    pub fn per_type<I, S>(name: impl Into<String>, types: I) -> ColorMap
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut m = ColorMap::new(name);
        for (i, t) in types.into_iter().enumerate() {
            m.set(
                t,
                ColorPair::on(FALLBACK_PALETTE[i % FALLBACK_PALETTE.len()]),
            );
        }
        m
    }
}

impl Default for ColorMap {
    fn default() -> Self {
        ColorMap::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_map_matches_fig2() {
        let m = ColorMap::standard();
        assert_eq!(m.name, "standard_map");
        let comp = m.get("computation").unwrap();
        assert_eq!(comp.bg, Color::new(0, 0, 255));
        assert_eq!(comp.fg, Color::WHITE);
        let tr = m.get("transfer").unwrap();
        assert_eq!(tr.bg, Color::new(0xf1, 0, 0));
        let c = m.resolve_composite(["computation", "transfer"]);
        assert_eq!(c.bg, Color::new(0xff, 0x62, 0x00));
        assert_eq!(m.config.font_size_label, 13.0);
        assert_eq!(m.config.min_font_size_label, 11.0);
        assert_eq!(m.config.font_size_axes, 12.0);
    }

    #[test]
    fn composite_rule_order_independent() {
        let m = ColorMap::standard();
        let a = m.resolve_composite(["computation", "transfer"]);
        let b = m.resolve_composite(["transfer", "computation"]);
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_composite_blends() {
        let mut m = ColorMap::new("t");
        m.set("a", ColorPair::on(Color::BLACK));
        m.set("b", ColorPair::on(Color::WHITE));
        let c = m.resolve_composite(["a", "b"]);
        assert_eq!(c.bg, Color::new(127, 127, 127));
    }

    #[test]
    fn fallback_is_deterministic() {
        let m = ColorMap::new("t");
        assert_eq!(m.resolve("whatever"), m.resolve("whatever"));
    }

    #[test]
    fn set_replaces_existing() {
        let mut m = ColorMap::new("t");
        m.set("x", ColorPair::on(Color::BLACK));
        m.set("x", ColorPair::on(Color::WHITE));
        assert_eq!(m.get("x").unwrap().bg, Color::WHITE);
        assert_eq!(m.entries().count(), 1);
    }

    #[test]
    fn grayscale_converts_everything() {
        let g = ColorMap::standard().to_grayscale();
        for (_, p) in g.entries() {
            assert_eq!(p.bg.r, p.bg.g);
            assert_eq!(p.bg.g, p.bg.b);
        }
        assert!(g.name.ends_with("_gray"));
        for r in g.composites() {
            assert_eq!(r.colors.bg.r, r.colors.bg.g);
        }
    }

    #[test]
    fn per_type_assigns_distinct_colors() {
        let m = ColorMap::per_type("apps", ["app0", "app1", "app2", "app3"]);
        let mut seen = std::collections::HashSet::new();
        for (_, p) in m.entries() {
            assert!(seen.insert(p.bg), "palette colors must differ");
        }
    }
}
