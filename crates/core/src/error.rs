//! Error type shared by the core model.

use std::fmt;

/// Errors raised while constructing or manipulating schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A task references a cluster id that is not defined in the schedule.
    UnknownCluster { task: String, cluster: u32 },
    /// An allocation addresses a host outside its cluster's host range.
    HostOutOfRange {
        task: String,
        cluster: u32,
        host: u32,
        cluster_hosts: u32,
    },
    /// Task finish time precedes its start time.
    NegativeDuration { task: String, start: f64, end: f64 },
    /// Task start or finish time is NaN or infinite.
    NonFiniteTime { task: String },
    /// A task has no allocation at all.
    EmptyAllocation { task: String },
    /// Two clusters share the same identifier.
    DuplicateCluster { cluster: u32 },
    /// A schedule must define at least one cluster (paper, §II-C1).
    NoClusters,
    /// Malformed color specification (expects 6 hex digits).
    BadColor { spec: String },
    /// Generic invariant violation with a description.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownCluster { task, cluster } => {
                write!(f, "task {task:?} references unknown cluster {cluster}")
            }
            CoreError::HostOutOfRange {
                task,
                cluster,
                host,
                cluster_hosts,
            } => write!(
                f,
                "task {task:?} allocates host {host} on cluster {cluster} which only has {cluster_hosts} hosts"
            ),
            CoreError::NegativeDuration { task, start, end } => {
                write!(f, "task {task:?} ends ({end}) before it starts ({start})")
            }
            CoreError::NonFiniteTime { task } => {
                write!(f, "task {task:?} has a NaN or infinite start/end time")
            }
            CoreError::EmptyAllocation { task } => {
                write!(f, "task {task:?} has no resource allocation")
            }
            CoreError::DuplicateCluster { cluster } => {
                write!(f, "cluster id {cluster} defined more than once")
            }
            CoreError::NoClusters => write!(f, "a schedule requires at least one cluster"),
            CoreError::BadColor { spec } => write!(f, "malformed RGB color spec {spec:?}"),
            CoreError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CoreError {}
