//! Task-level schedule comparison.
//!
//! The §IV case study compares "the Jedule outputs with and without
//! backfilling … that no task is delayed by this step". [`diff_schedules`]
//! performs that comparison programmatically: tasks are matched by id and
//! classified as unchanged, moved (same duration, different start),
//! resized, relocated (different resources), added or removed.

use crate::model::{Schedule, Task};

/// One changed task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskChange {
    pub id: String,
    /// Start-time delta `after - before` (0 when only resources changed).
    pub dt: f64,
    /// Duration delta.
    pub ddur: f64,
    /// True when the resource allocation changed.
    pub relocated: bool,
}

/// Result of a schedule comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScheduleDiff {
    pub unchanged: usize,
    /// Tasks whose start moved (same duration, same resources).
    pub moved: Vec<TaskChange>,
    /// Tasks whose duration changed.
    pub resized: Vec<TaskChange>,
    /// Tasks whose resources changed.
    pub relocated: Vec<TaskChange>,
    /// Ids only in the second schedule.
    pub added: Vec<String>,
    /// Ids only in the first schedule.
    pub removed: Vec<String>,
}

impl ScheduleDiff {
    /// True when the two schedules are task-identical.
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty()
            && self.resized.is_empty()
            && self.relocated.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
    }

    /// Largest positive start delta — >0 means some task was *delayed*
    /// (what the conservative-backfilling check forbids).
    pub fn max_delay(&self) -> f64 {
        self.moved
            .iter()
            .chain(&self.resized)
            .chain(&self.relocated)
            .map(|c| c.dt)
            .fold(0.0, f64::max)
    }

    /// Sum of negative deltas — total time tasks moved earlier.
    pub fn total_advance(&self) -> f64 {
        self.moved
            .iter()
            .chain(&self.resized)
            .chain(&self.relocated)
            .map(|c| (-c.dt).max(0.0))
            .sum()
    }
}

fn same_allocations(a: &Task, b: &Task) -> bool {
    a.allocations == b.allocations
}

/// Compares two schedules task by task (matched by id).
pub fn diff_schedules(before: &Schedule, after: &Schedule) -> ScheduleDiff {
    let mut diff = ScheduleDiff::default();
    const EPS: f64 = 1e-12;

    for t in &before.tasks {
        match after.task_by_id(&t.id) {
            None => diff.removed.push(t.id.clone()),
            Some(u) => {
                let dt = u.start - t.start;
                let ddur = u.duration() - t.duration();
                let relocated = !same_allocations(t, u);
                let change = TaskChange {
                    id: t.id.clone(),
                    dt,
                    ddur,
                    relocated,
                };
                if ddur.abs() > EPS {
                    diff.resized.push(change);
                } else if relocated {
                    diff.relocated.push(change);
                } else if dt.abs() > EPS {
                    diff.moved.push(change);
                } else {
                    diff.unchanged += 1;
                }
            }
        }
    }
    for u in &after.tasks {
        if before.task_by_id(&u.id).is_none() {
            diff.added.push(u.id.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::model::Allocation;

    fn base() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c", 4)
            .task(Task::new("a", "t", 0.0, 2.0).on(Allocation::contiguous(0, 0, 1)))
            .task(Task::new("b", "t", 5.0, 6.0).on(Allocation::contiguous(0, 1, 1)))
            .build()
            .unwrap()
    }

    #[test]
    fn identical_schedules_diff_empty() {
        let s = base();
        let d = diff_schedules(&s, &s);
        assert!(d.is_empty());
        assert_eq!(d.unchanged, 2);
        assert_eq!(d.max_delay(), 0.0);
    }

    #[test]
    fn moved_task_detected() {
        let s = base();
        let mut t = s.clone();
        t.tasks[1].start = 2.0;
        t.tasks[1].end = 3.0;
        let d = diff_schedules(&s, &t);
        assert_eq!(d.moved.len(), 1);
        assert_eq!(d.moved[0].id, "b");
        assert!((d.moved[0].dt + 3.0).abs() < 1e-12);
        assert_eq!(d.max_delay(), 0.0); // moved earlier, not delayed
        assert!((d.total_advance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn delay_detected() {
        let s = base();
        let mut t = s.clone();
        t.tasks[0].start += 1.5;
        t.tasks[0].end += 1.5;
        let d = diff_schedules(&s, &t);
        assert!((d.max_delay() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn resize_and_relocation_classified() {
        let s = base();
        let mut t = s.clone();
        t.tasks[0].end = 3.0; // longer
        t.tasks[1].allocations = vec![Allocation::contiguous(0, 3, 1)];
        let d = diff_schedules(&s, &t);
        assert_eq!(d.resized.len(), 1);
        assert_eq!(d.resized[0].id, "a");
        assert_eq!(d.relocated.len(), 1);
        assert_eq!(d.relocated[0].id, "b");
        assert!(d.relocated[0].relocated);
    }

    #[test]
    fn added_and_removed() {
        let s = base();
        let mut t = s.clone();
        t.tasks.remove(0);
        t.tasks
            .push(Task::new("c", "t", 0.0, 1.0).on(Allocation::contiguous(0, 2, 1)));
        let d = diff_schedules(&s, &t);
        assert_eq!(d.removed, vec!["a"]);
        assert_eq!(d.added, vec!["c"]);
        assert!(!d.is_empty());
    }

    #[test]
    fn backfilling_verifies_via_diff() {
        // The §IV check expressed with the diff: after backfilling no
        // task may have positive dt.
        use crate::model::Cluster;
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c", 2)],
            tasks: vec![
                Task::new("x", "t", 0.0, 2.0).on(Allocation::contiguous(0, 0, 1)),
                Task::new("y", "t", 5.0, 6.0).on(Allocation::contiguous(0, 1, 1)),
            ],
            meta: Default::default(),
        };
        // Simulate a compaction: y slides to 0.
        let mut after = s.clone();
        after.tasks[1].start = 0.0;
        after.tasks[1].end = 1.0;
        let d = diff_schedules(&s, &after);
        assert_eq!(d.max_delay(), 0.0, "no task delayed");
        assert!(d.total_advance() > 0.0, "idle time reduced");
    }
}
