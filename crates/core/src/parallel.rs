//! Shared thread-count policy for the parallel hot paths (composite
//! sweep, rasterization, PNG encoding).
//!
//! Every parallel stage in the workspace takes a `threads` knob with the
//! same convention: `0` means "use all available parallelism", `1` forces
//! the sequential code path (byte-identical to the pre-parallel
//! implementation), and any other value is an explicit worker count.

/// Resolves a `threads` knob to an actual worker count (≥ 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Splits `n` work items into at most `workers` contiguous chunk bounds
/// `(start, end)`, each non-empty, preserving order. Used so parallel
/// stages can merge worker results deterministically (chunks are always
/// formed and concatenated in index order, whatever the worker count).
pub fn chunk_bounds(n: usize, workers: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        for n in [0usize, 1, 2, 5, 16, 100, 1024] {
            for w in [1usize, 2, 3, 4, 7, 8, 200] {
                let bounds = chunk_bounds(n, w);
                if n == 0 {
                    assert!(bounds.is_empty());
                    continue;
                }
                assert!(bounds.len() <= w.min(n));
                assert_eq!(bounds.first().unwrap().0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                for pair in bounds.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "contiguous");
                }
                for &(s, e) in &bounds {
                    assert!(e > s, "non-empty chunk");
                }
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let bounds = chunk_bounds(10, 3);
        let sizes: Vec<usize> = bounds.iter().map(|&(s, e)| e - s).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}
