//! Shared thread-count policy for the parallel hot paths (composite
//! sweep, rasterization, PNG encoding, chunked ingest).
//!
//! Every parallel stage in the workspace takes a `threads` knob with the
//! same convention: `0` means "use all available parallelism", `1` forces
//! the sequential code path (byte-identical to the pre-parallel
//! implementation), and any other value is an explicit worker count.
//!
//! The "all available" case can be pinned from outside with the
//! `JEDULE_THREADS` environment variable (read once per process). CI
//! uses it to run the whole test suite through both the sequential and
//! the parallel code paths without touching any call site.

use std::sync::OnceLock;

fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(v) = std::env::var("JEDULE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves a `threads` knob to an actual worker count (≥ 1). A knob of
/// `0` resolves to `JEDULE_THREADS` when set, else the machine's
/// available parallelism.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        auto_threads()
    }
}

/// Splits `n` work items into at most `workers` contiguous chunk bounds
/// `(start, end)`, each non-empty, preserving order. Used so parallel
/// stages can merge worker results deterministically (chunks are always
/// formed and concatenated in index order, whatever the worker count).
pub fn chunk_bounds(n: usize, workers: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// One chunk of a line-oriented document: the text slice plus the
/// 1-based global line number of its first line, so chunk-local parsers
/// can report errors with the same positions a sequential scan would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineChunk<'a> {
    /// Global line number (1-based) of the chunk's first line.
    pub first_line: usize,
    /// The chunk text. Non-final chunks always end just after a `'\n'`.
    pub text: &'a str,
}

/// Splits `src` at line boundaries into at most `workers` contiguous,
/// non-empty chunks, in order, covering the whole string. Boundaries
/// fall only just after a `'\n'` byte, so every line — including its
/// `\r\n` ending — lives in exactly one chunk, and the concatenation of
/// `chunk.text.lines()` over all chunks equals `src.lines()` exactly
/// (a document without a trailing newline keeps its final partial line
/// in the last chunk). Each chunk carries the global line number of its
/// first line so chunk-local parsing can report exact positions.
pub fn line_chunks(src: &str, workers: usize) -> Vec<LineChunk<'_>> {
    let n = src.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1);
    let target = n.div_ceil(workers);
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut first_line = 1usize;
    while start < n {
        let mut end = (start + target).min(n);
        if end < n {
            // Extend to the next line boundary (just past the '\n').
            match bytes[end..].iter().position(|&b| b == b'\n') {
                Some(off) => end += off + 1,
                None => end = n,
            }
        }
        // '\n' is ASCII, so start/end are always char boundaries.
        out.push(LineChunk {
            first_line,
            text: &src[start..end],
        });
        first_line += bytes[start..end].iter().filter(|&&b| b == b'\n').count();
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        for n in [0usize, 1, 2, 5, 16, 100, 1024] {
            for w in [1usize, 2, 3, 4, 7, 8, 200] {
                let bounds = chunk_bounds(n, w);
                if n == 0 {
                    assert!(bounds.is_empty());
                    continue;
                }
                assert!(bounds.len() <= w.min(n));
                assert_eq!(bounds.first().unwrap().0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                for pair in bounds.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "contiguous");
                }
                for &(s, e) in &bounds {
                    assert!(e > s, "non-empty chunk");
                }
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let bounds = chunk_bounds(10, 3);
        let sizes: Vec<usize> = bounds.iter().map(|&(s, e)| e - s).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn line_chunks_partition_lines_exactly() {
        let docs = [
            "",
            "one line, no newline",
            "a\nb\nc\n",
            "a\r\nb\r\nno trailing",
            "\n\n\n",
            "x\ny",
            "héllo ☃\nwörld\n𝄞 music",
        ];
        for src in docs {
            for workers in [1usize, 2, 3, 4, 7, 100] {
                let chunks = line_chunks(src, workers);
                if src.is_empty() {
                    assert!(chunks.is_empty());
                    continue;
                }
                assert!(chunks.len() <= workers);
                // Chunks concatenate back to the source.
                let joined: String = chunks.iter().map(|c| c.text).collect();
                assert_eq!(joined, src, "workers {workers}");
                // Lines partition exactly, and first_line is the running
                // global line number.
                let mut all_lines = Vec::new();
                let mut expect_first = 1usize;
                for c in &chunks {
                    assert!(!c.text.is_empty());
                    assert_eq!(c.first_line, expect_first, "src {src:?} workers {workers}");
                    let lines: Vec<&str> = c.text.lines().collect();
                    expect_first += lines.len();
                    all_lines.extend(lines);
                }
                assert_eq!(all_lines, src.lines().collect::<Vec<_>>());
                // Non-final chunks end on a line boundary.
                for c in &chunks[..chunks.len() - 1] {
                    assert!(c.text.ends_with('\n'));
                }
            }
        }
    }
}
