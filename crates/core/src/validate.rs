//! Schedule validation.
//!
//! The paper motivates visualization with "sanity checks, e.g., checking
//! the number of requested and assigned processors for a multiprocessor
//! job". This module performs those checks programmatically; the CLI's
//! `jedule info` prints the result.

use crate::error::CoreError;
use crate::model::Schedule;
use std::collections::HashSet;

/// One validation finding; wraps [`CoreError`] plus a severity.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationIssue {
    pub error: CoreError,
    /// `true` if the schedule cannot be drawn meaningfully.
    pub fatal: bool,
}

/// Validates a schedule. Returns all findings (empty = valid).
pub fn validate(schedule: &Schedule) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    if schedule.clusters.is_empty() {
        issues.push(ValidationIssue {
            error: CoreError::NoClusters,
            fatal: true,
        });
    }

    let mut seen = HashSet::new();
    for c in &schedule.clusters {
        if !seen.insert(c.id) {
            issues.push(ValidationIssue {
                error: CoreError::DuplicateCluster { cluster: c.id },
                fatal: true,
            });
        }
    }

    for t in &schedule.tasks {
        if !t.start.is_finite() || !t.end.is_finite() {
            issues.push(ValidationIssue {
                error: CoreError::NonFiniteTime { task: t.id.clone() },
                fatal: true,
            });
            continue;
        }
        if t.end < t.start {
            issues.push(ValidationIssue {
                error: CoreError::NegativeDuration {
                    task: t.id.clone(),
                    start: t.start,
                    end: t.end,
                },
                fatal: true,
            });
        }
        if t.allocations.is_empty() || t.allocations.iter().all(|a| a.hosts.is_empty()) {
            issues.push(ValidationIssue {
                error: CoreError::EmptyAllocation { task: t.id.clone() },
                fatal: false,
            });
        }
        for a in &t.allocations {
            match schedule.cluster(a.cluster) {
                None => issues.push(ValidationIssue {
                    error: CoreError::UnknownCluster {
                        task: t.id.clone(),
                        cluster: a.cluster,
                    },
                    fatal: true,
                }),
                Some(c) => {
                    if let Some(max) = a.hosts.max_host() {
                        if max >= c.hosts {
                            issues.push(ValidationIssue {
                                error: CoreError::HostOutOfRange {
                                    task: t.id.clone(),
                                    cluster: a.cluster,
                                    host: max,
                                    cluster_hosts: c.hosts,
                                },
                                fatal: true,
                            });
                        }
                    }
                }
            }
        }
    }

    issues
}

/// Validates and returns an error for the first fatal issue, if any.
pub fn validate_strict(schedule: &Schedule) -> Result<(), CoreError> {
    match validate(schedule).into_iter().find(|i| i.fatal) {
        Some(i) => Err(i.error),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Allocation, Cluster, Task};

    fn ok_schedule() -> Schedule {
        Schedule {
            clusters: vec![Cluster::new(0, "c0", 8)],
            tasks: vec![
                Task::new("1", "computation", 0.0, 0.31).on(Allocation::contiguous(0, 0, 8))
            ],
            meta: Default::default(),
        }
    }

    #[test]
    fn valid_schedule_passes() {
        assert!(validate(&ok_schedule()).is_empty());
        assert!(validate_strict(&ok_schedule()).is_ok());
    }

    #[test]
    fn no_clusters_is_fatal() {
        let s = Schedule::new();
        let issues = validate(&s);
        assert!(issues
            .iter()
            .any(|i| i.error == CoreError::NoClusters && i.fatal));
    }

    #[test]
    fn unknown_cluster_detected() {
        let mut s = ok_schedule();
        s.tasks
            .push(Task::new("2", "t", 0.0, 1.0).on(Allocation::contiguous(9, 0, 1)));
        assert!(matches!(
            validate_strict(&s),
            Err(CoreError::UnknownCluster { cluster: 9, .. })
        ));
    }

    #[test]
    fn host_out_of_range_detected() {
        let mut s = ok_schedule();
        s.tasks
            .push(Task::new("2", "t", 0.0, 1.0).on(Allocation::contiguous(0, 6, 4)));
        assert!(matches!(
            validate_strict(&s),
            Err(CoreError::HostOutOfRange {
                host: 9,
                cluster_hosts: 8,
                ..
            })
        ));
    }

    #[test]
    fn negative_duration_detected() {
        let mut s = ok_schedule();
        s.tasks
            .push(Task::new("2", "t", 2.0, 1.0).on(Allocation::contiguous(0, 0, 1)));
        assert!(matches!(
            validate_strict(&s),
            Err(CoreError::NegativeDuration { .. })
        ));
    }

    #[test]
    fn nan_time_detected() {
        let mut s = ok_schedule();
        s.tasks
            .push(Task::new("2", "t", f64::NAN, 1.0).on(Allocation::contiguous(0, 0, 1)));
        assert!(matches!(
            validate_strict(&s),
            Err(CoreError::NonFiniteTime { .. })
        ));
    }

    #[test]
    fn empty_allocation_is_warning_not_fatal() {
        let mut s = ok_schedule();
        s.tasks.push(Task::new("2", "t", 0.0, 1.0));
        let issues = validate(&s);
        assert_eq!(issues.len(), 1);
        assert!(!issues[0].fatal);
        assert!(validate_strict(&s).is_ok());
    }

    #[test]
    fn duplicate_cluster_detected() {
        let mut s = ok_schedule();
        s.clusters.push(Cluster::new(0, "dup", 4));
        assert!(matches!(
            validate_strict(&s),
            Err(CoreError::DuplicateCluster { cluster: 0 })
        ));
    }

    #[test]
    fn zero_duration_task_is_fine() {
        let mut s = ok_schedule();
        s.tasks
            .push(Task::new("2", "t", 1.0, 1.0).on(Allocation::contiguous(0, 0, 1)));
        assert!(validate_strict(&s).is_ok());
    }
}
