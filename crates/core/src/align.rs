//! Time alignment between clusters (paper, §II-C3).
//!
//! Each cluster schedule is self-contained with its own `[t_s, t_f]`
//! extent. Jedule offers two view modes: in the *scaled* view every cluster
//! is drawn using its local minima/maxima, while in the *aligned* view the
//! global minima/maxima are used for all clusters so that overall
//! utilization is directly comparable.

use crate::model::Schedule;

/// How cluster time axes are established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignMode {
    /// Every cluster uses its own local `[min start, max end]`.
    Scaled,
    /// Every cluster uses the global `[min start, max end]`.
    #[default]
    Aligned,
}

/// A time extent `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeExtent {
    pub start: f64,
    pub end: f64,
}

impl TimeExtent {
    pub fn new(start: f64, end: f64) -> Self {
        TimeExtent { start, end }
    }

    pub fn span(&self) -> f64 {
        self.end - self.start
    }

    /// True if `t` lies within the extent (closed interval).
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t <= self.end
    }
}

/// The local extent of one cluster: min start / max end over the tasks with
/// an allocation on that cluster. `None` if the cluster runs no task.
pub fn cluster_extent(schedule: &Schedule, cluster: u32) -> Option<TimeExtent> {
    let mut ext: Option<TimeExtent> = None;
    for t in &schedule.tasks {
        if t.allocations.iter().any(|a| a.cluster == cluster) {
            let e = ext.get_or_insert(TimeExtent::new(t.start, t.end));
            e.start = e.start.min(t.start);
            e.end = e.end.max(t.end);
        }
    }
    ext
}

/// The global extent over all tasks. `None` for an empty schedule.
pub fn global_extent(schedule: &Schedule) -> Option<TimeExtent> {
    match (schedule.min_start(), schedule.max_end()) {
        (Some(s), Some(e)) => Some(TimeExtent::new(s, e)),
        _ => None,
    }
}

/// The extent to use when drawing `cluster` under the given mode.
///
/// In aligned mode a task-less cluster still gets the global extent (it is
/// drawn as an empty lane); in scaled mode it yields `None`.
pub fn extent_for(schedule: &Schedule, cluster: u32, mode: AlignMode) -> Option<TimeExtent> {
    match mode {
        AlignMode::Scaled => cluster_extent(schedule, cluster),
        AlignMode::Aligned => global_extent(schedule),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Allocation, Cluster, Task};

    fn two_cluster_schedule() -> Schedule {
        Schedule {
            clusters: vec![Cluster::new(0, "c0", 4), Cluster::new(1, "c1", 4)],
            tasks: vec![
                Task::new("a", "t", 1.0, 5.0).on(Allocation::contiguous(0, 0, 4)),
                Task::new("b", "t", 10.0, 20.0).on(Allocation::contiguous(1, 0, 4)),
            ],
            meta: Default::default(),
        }
    }

    #[test]
    fn scaled_view_uses_local_extents() {
        let s = two_cluster_schedule();
        assert_eq!(
            extent_for(&s, 0, AlignMode::Scaled),
            Some(TimeExtent::new(1.0, 5.0))
        );
        assert_eq!(
            extent_for(&s, 1, AlignMode::Scaled),
            Some(TimeExtent::new(10.0, 20.0))
        );
    }

    #[test]
    fn aligned_view_uses_global_extent() {
        let s = two_cluster_schedule();
        for c in [0, 1] {
            assert_eq!(
                extent_for(&s, c, AlignMode::Aligned),
                Some(TimeExtent::new(1.0, 20.0))
            );
        }
    }

    #[test]
    fn cross_cluster_task_counts_for_both() {
        let mut s = two_cluster_schedule();
        s.tasks.push(
            Task::new("x", "transfer", 6.0, 7.0)
                .on(Allocation::contiguous(0, 0, 1))
                .on(Allocation::contiguous(1, 0, 1)),
        );
        assert_eq!(cluster_extent(&s, 0), Some(TimeExtent::new(1.0, 7.0)));
        assert_eq!(cluster_extent(&s, 1), Some(TimeExtent::new(6.0, 20.0)));
    }

    #[test]
    fn empty_cluster_extents() {
        let mut s = two_cluster_schedule();
        s.clusters.push(Cluster::new(2, "idle", 4));
        assert_eq!(extent_for(&s, 2, AlignMode::Scaled), None);
        // Aligned mode still draws the empty lane across the global span.
        assert_eq!(
            extent_for(&s, 2, AlignMode::Aligned),
            Some(TimeExtent::new(1.0, 20.0))
        );
    }

    #[test]
    fn empty_schedule_has_no_extent() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 4)],
            tasks: vec![],
            meta: Default::default(),
        };
        assert_eq!(global_extent(&s), None);
        assert_eq!(extent_for(&s, 0, AlignMode::Aligned), None);
    }

    #[test]
    fn extent_helpers() {
        let e = TimeExtent::new(2.0, 6.0);
        assert_eq!(e.span(), 4.0);
        assert!(e.contains(2.0));
        assert!(e.contains(6.0));
        assert!(!e.contains(6.1));
    }
}
