//! Interval index over a schedule's tasks.
//!
//! Bird's-eye charts of production traces (paper §VII) put 10⁵–10⁶ tasks
//! behind a single picture. Layout, statistics and the composite sweep all
//! ask the same question — *which tasks intersect the time window `[t0, t1]`
//! on this cluster / host row?* — and answering it by scanning every task of
//! the schedule makes zoomed renders pay O(total) instead of O(visible).
//!
//! This module answers it in `O(log n + k')` per query: tasks are bucketed
//! per cluster (and optionally per host row), sorted by start time, and
//! carry a *max-finish prefix* so a query can binary-search both ends of
//! the candidate range:
//!
//! * entries are sorted by `(start, task index)`, so "first entry starting
//!   after `t1`" is one `partition_point`;
//! * `prefix_max_end[i] = max(end of entries 0..=i)` is non-decreasing, so
//!   "first entry from which *anything* reaches `t0`" is another.
//!
//! The scan between the two bounds touches only candidates; `k'` is the
//! number of entries in that range (≥ the true hit count `k`, but tight for
//! the shallow-nesting interval sets real schedules produce). Queries use
//! **closed-interval** intersection (`start <= t1 && end >= t0`): zero-width
//! tasks sitting exactly on a window edge are reported, and rendering clips
//! exactly afterwards, so culling can never change pixels inside the window.

use crate::model::{Cluster, Schedule};

/// One indexed task occurrence: the task's time span plus its index into
/// `schedule.tasks`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntry {
    pub start: f64,
    pub end: f64,
    /// Index into `Schedule::tasks`.
    pub task: u32,
}

/// A sequence of intervals sorted by start time with a max-finish prefix
/// structure, supporting `O(log n + k')` window queries.
#[derive(Debug, Clone, Default)]
pub struct IntervalSeq {
    entries: Vec<IndexEntry>,
    /// `prefix_max_end[i]` = max end over `entries[0..=i]`; non-decreasing.
    prefix_max_end: Vec<f64>,
}

impl IntervalSeq {
    fn from_entries(mut entries: Vec<IndexEntry>) -> Self {
        entries.sort_unstable_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
        Self::from_sorted_entries(entries)
    }

    /// Builds the sequence from entries already in `(start, task)` order,
    /// computing only the prefix-max structure. The pack loader uses this
    /// after validating the stored order, skipping the O(n log n) sort.
    pub(crate) fn from_sorted_entries(entries: Vec<IndexEntry>) -> Self {
        let mut prefix_max_end = Vec::with_capacity(entries.len());
        let mut m = f64::NEG_INFINITY;
        for e in &entries {
            m = m.max(e.end);
            prefix_max_end.push(m);
        }
        IntervalSeq {
            entries,
            prefix_max_end,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The indexed entries in `(start, task)` order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Appends the task indices of all entries intersecting the closed
    /// window `[t0, t1]` onto `out`, in start order. An empty window
    /// (`t1 < t0`) matches nothing.
    pub fn query_into(&self, t0: f64, t1: f64, out: &mut Vec<usize>) {
        if t1 < t0 || self.entries.is_empty() {
            return;
        }
        // First entry starting strictly after the window: nothing from
        // there on can intersect.
        let hi = self.entries.partition_point(|e| e.start <= t1);
        // First position whose prefix max finish reaches the window:
        // everything before it ends strictly before t0.
        let lo = self.prefix_max_end[..hi].partition_point(|&m| m < t0);
        for e in &self.entries[lo..hi] {
            if e.end >= t0 {
                out.push(e.task as usize);
            }
        }
    }

    /// The task indices intersecting `[t0, t1]`, in start order.
    pub fn query(&self, t0: f64, t1: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(t0, t1, &mut out);
        out
    }
}

/// Per-cluster index: every task touching the cluster, plus (optionally)
/// one [`IntervalSeq`] per host row.
#[derive(Debug, Clone)]
pub struct ClusterIndex {
    pub cluster: u32,
    hosts: u32,
    tasks: IntervalSeq,
    per_host: Option<Vec<IntervalSeq>>,
}

impl ClusterIndex {
    /// Assembles a cluster index from prebuilt parts (the pack loader,
    /// after validating entry order and id ranges).
    pub(crate) fn from_parts(
        cluster: u32,
        hosts: u32,
        tasks: IntervalSeq,
        per_host: Option<Vec<IntervalSeq>>,
    ) -> Self {
        ClusterIndex {
            cluster,
            hosts,
            tasks,
            per_host,
        }
    }

    /// All tasks touching this cluster (each task once, even with several
    /// allocations on it).
    pub fn tasks(&self) -> &IntervalSeq {
        &self.tasks
    }

    /// The per-host sequence for cluster-local `host`, if the index was
    /// built with host rows and the row exists.
    pub fn host(&self, host: u32) -> Option<&IntervalSeq> {
        self.per_host.as_ref()?.get(host as usize)
    }

    /// Task indices of this cluster intersecting `[t0, t1]`, sorted
    /// ascending — i.e. in the schedule's original (painter's) order.
    pub fn query(&self, t0: f64, t1: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_into(t0, t1, &mut out);
        out
    }

    /// [`query`](Self::query) appending into a caller-owned buffer, so hot
    /// paths (the render candidate scan, serve tile misses) can reuse one
    /// allocation across calls. Appended entries are sorted ascending;
    /// anything already in `out` is left untouched.
    pub fn query_into(&self, t0: f64, t1: f64, out: &mut Vec<usize>) {
        let n0 = out.len();
        self.tasks.query_into(t0, t1, out);
        out[n0..].sort_unstable();
    }

    /// Task indices intersecting `[t0, t1]` on `host`, sorted ascending.
    /// Empty if the index was built without host rows.
    pub fn query_host(&self, host: u32, t0: f64, t1: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(seq) = self.host(host) {
            seq.query_into(t0, t1, &mut out);
            out.sort_unstable();
        }
        out
    }
}

/// Interval index over a whole schedule, one [`ClusterIndex`] per cluster
/// in declaration order.
#[derive(Debug, Clone)]
pub struct ScheduleIndex {
    clusters: Vec<ClusterIndex>,
    with_hosts: bool,
}

impl ScheduleIndex {
    /// Assembles a schedule index from prebuilt cluster indexes (the pack
    /// loader).
    pub(crate) fn from_parts(clusters: Vec<ClusterIndex>, with_hosts: bool) -> Self {
        ScheduleIndex {
            clusters,
            with_hosts,
        }
    }

    /// Builds the cluster-level index only — O(tasks · allocations) time,
    /// O(tasks) memory. Enough for layout culling and hit-testing.
    pub fn build(schedule: &Schedule) -> Self {
        Self::build_inner(schedule, false)
    }

    /// Builds cluster-level *and* per-host-row sequences — one entry per
    /// (task, occupied host) pair. Needed by statistics and the composite
    /// sweep, which reason per row.
    pub fn build_with_hosts(schedule: &Schedule) -> Self {
        Self::build_inner(schedule, true)
    }

    fn build_inner(schedule: &Schedule, with_hosts: bool) -> Self {
        let mut per_cluster: Vec<Vec<IndexEntry>> = schedule
            .clusters
            .iter()
            .map(|_| Vec::with_capacity(schedule.tasks.len() / schedule.clusters.len().max(1)))
            .collect();
        let mut per_host: Vec<Vec<Vec<IndexEntry>>> = if with_hosts {
            schedule
                .clusters
                .iter()
                .map(|c| vec![Vec::new(); c.hosts as usize])
                .collect()
        } else {
            Vec::new()
        };
        // Position of each cluster id in declaration order.
        let slot = |id: u32| schedule.clusters.iter().position(|c| c.id == id);
        for (ti, task) in schedule.tasks.iter().enumerate() {
            let entry = IndexEntry {
                start: task.start,
                end: task.end,
                task: ti as u32,
            };
            for alloc in &task.allocations {
                let Some(ci) = slot(alloc.cluster) else {
                    continue; // dangling allocation: validation's problem
                };
                // A task with several allocations on one cluster is still
                // one entry; pushes for a task are consecutive, so checking
                // the tail suffices.
                let bucket = &mut per_cluster[ci];
                if bucket.last().map(|e| e.task) != Some(entry.task) {
                    bucket.push(entry);
                }
                if with_hosts {
                    let rows = &mut per_host[ci];
                    for h in alloc.hosts.iter() {
                        if let Some(row) = rows.get_mut(h as usize) {
                            if row.last().map(|e| e.task) != Some(entry.task) {
                                row.push(entry);
                            }
                        }
                    }
                }
            }
        }
        let clusters = schedule
            .clusters
            .iter()
            .zip(per_cluster)
            .enumerate()
            .map(|(ci, (c, entries)): (usize, (&Cluster, _))| ClusterIndex {
                cluster: c.id,
                hosts: c.hosts,
                tasks: IntervalSeq::from_entries(entries),
                per_host: with_hosts.then(|| {
                    per_host[ci]
                        .drain(..)
                        .map(IntervalSeq::from_entries)
                        .collect()
                }),
            })
            .collect();
        ScheduleIndex {
            clusters,
            with_hosts,
        }
    }

    /// Whether per-host rows were built.
    pub fn has_hosts(&self) -> bool {
        self.with_hosts
    }

    /// The per-cluster indexes, in the schedule's cluster order.
    pub fn clusters(&self) -> &[ClusterIndex] {
        &self.clusters
    }

    /// Looks up the index of cluster `id`.
    pub fn cluster(&self, id: u32) -> Option<&ClusterIndex> {
        self.clusters.iter().find(|c| c.cluster == id)
    }

    /// Number of hosts of cluster `id` as recorded at build time.
    pub fn cluster_hosts(&self, id: u32) -> Option<u32> {
        self.cluster(id).map(|c| c.hosts)
    }
}

/// Reference semantics for index queries: the brute-force scan the index
/// must agree with (closed-interval intersection). Public so property tests
/// and benches can compare against it.
pub fn brute_force_query(schedule: &Schedule, cluster: u32, t0: f64, t1: f64) -> Vec<usize> {
    if t1 < t0 {
        return Vec::new();
    }
    schedule
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            t.start <= t1 && t.end >= t0 && t.allocations.iter().any(|a| a.cluster == cluster)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Brute-force per-host reference: tasks occupying `host` on `cluster`
/// intersecting `[t0, t1]`, ascending.
pub fn brute_force_query_host(
    schedule: &Schedule,
    cluster: u32,
    host: u32,
    t0: f64,
    t1: f64,
) -> Vec<usize> {
    if t1 < t0 {
        return Vec::new();
    }
    schedule
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.start <= t1 && t.end >= t0 && t.occupies(cluster, host))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostset::HostSet;
    use crate::model::{Allocation, Cluster, Task};

    fn sample() -> Schedule {
        Schedule {
            clusters: vec![Cluster::new(0, "c0", 4), Cluster::new(7, "c1", 2)],
            tasks: vec![
                Task::new("a", "t", 0.0, 2.0).on(Allocation::contiguous(0, 0, 2)),
                Task::new("b", "t", 1.0, 3.0).on(Allocation::contiguous(0, 2, 2)),
                Task::new("c", "t", 4.0, 5.0).on(Allocation::contiguous(0, 1, 1)),
                Task::new("d", "u", 0.5, 4.5)
                    .on(Allocation::contiguous(0, 3, 1))
                    .on(Allocation::contiguous(7, 0, 2)),
                Task::new("e", "t", 2.5, 2.5).on(Allocation::contiguous(7, 1, 1)),
            ],
            meta: Default::default(),
        }
    }

    #[test]
    fn cluster_query_matches_brute_force() {
        let s = sample();
        let idx = ScheduleIndex::build(&s);
        for cid in [0u32, 7] {
            for (t0, t1) in [
                (0.0, 5.0),
                (-1.0, -0.5),
                (2.0, 2.0),
                (2.5, 2.5),
                (4.9, 10.0),
                (1.5, 1.6),
                (3.0, 4.0),
            ] {
                assert_eq!(
                    idx.cluster(cid).unwrap().query(t0, t1),
                    brute_force_query(&s, cid, t0, t1),
                    "cluster {cid} window [{t0}, {t1}]"
                );
            }
        }
    }

    #[test]
    fn host_query_matches_brute_force() {
        let s = sample();
        let idx = ScheduleIndex::build_with_hosts(&s);
        for (cid, hosts) in [(0u32, 4u32), (7, 2)] {
            let ci = idx.cluster(cid).unwrap();
            for h in 0..hosts {
                for (t0, t1) in [(0.0, 5.0), (2.0, 3.0), (4.5, 4.5), (5.5, 9.0)] {
                    assert_eq!(
                        ci.query_host(h, t0, t1),
                        brute_force_query_host(&s, cid, h, t0, t1),
                        "cluster {cid} host {h} window [{t0}, {t1}]"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_window_matches_nothing() {
        let s = sample();
        let idx = ScheduleIndex::build(&s);
        assert!(idx.cluster(0).unwrap().query(3.0, 2.0).is_empty());
        assert!(brute_force_query(&s, 0, 3.0, 2.0).is_empty());
    }

    #[test]
    fn zero_width_task_on_window_edge_is_reported() {
        let s = sample();
        let idx = ScheduleIndex::build_with_hosts(&s);
        // Task "e" is a point at t=2.5 on cluster 7 host 1.
        assert_eq!(idx.cluster(7).unwrap().query(2.5, 3.0), vec![3, 4]);
        // Host 1 holds both d (0.5–4.5, hosts 0–1) and the point task e.
        assert_eq!(idx.cluster(7).unwrap().query_host(1, 0.0, 2.5), vec![3, 4]);
        // A window ending exactly at the point still reports it.
        assert_eq!(idx.cluster(7).unwrap().query_host(1, 2.5, 2.5), vec![3, 4]);
    }

    #[test]
    fn multiple_allocations_deduplicated() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 4)],
            tasks: vec![Task::new("a", "t", 0.0, 1.0)
                .on(Allocation::contiguous(0, 0, 2))
                .on(Allocation::new(0, HostSet::from_hosts([1, 3])))],
            meta: Default::default(),
        };
        let idx = ScheduleIndex::build_with_hosts(&s);
        let ci = idx.cluster(0).unwrap();
        assert_eq!(ci.tasks().len(), 1);
        // Host 1 appears in both allocations but is indexed once.
        assert_eq!(ci.host(1).unwrap().len(), 1);
        assert_eq!(ci.query_host(1, 0.0, 1.0), vec![0]);
    }

    #[test]
    fn shallow_build_has_no_host_rows() {
        let idx = ScheduleIndex::build(&sample());
        assert!(!idx.has_hosts());
        assert!(idx.cluster(0).unwrap().host(0).is_none());
        assert!(idx.cluster(0).unwrap().query_host(0, 0.0, 9.0).is_empty());
    }

    #[test]
    fn long_task_found_despite_later_starts_before_window() {
        // The prefix-max structure must find a long-running early task even
        // when many later-starting tasks end before the window.
        let mut tasks =
            vec![Task::new("long", "t", 0.0, 100.0).on(Allocation::contiguous(0, 0, 1))];
        for i in 0..50 {
            let t = 1.0 + i as f64;
            tasks.push(
                Task::new(format!("s{i}"), "t", t, t + 0.5).on(Allocation::contiguous(0, 0, 1)),
            );
        }
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 1)],
            tasks,
            meta: Default::default(),
        };
        let idx = ScheduleIndex::build(&s);
        assert_eq!(idx.cluster(0).unwrap().query(99.0, 99.5), vec![0]);
        assert_eq!(
            idx.cluster(0).unwrap().query(99.0, 99.5),
            brute_force_query(&s, 0, 99.0, 99.5)
        );
    }

    #[test]
    fn entries_sorted_by_start_with_prefix() {
        let idx = ScheduleIndex::build(&sample());
        let seq = idx.cluster(0).unwrap().tasks();
        for w in seq.entries().windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(seq.len(), 4);
        assert!(!seq.is_empty());
    }
}
