//! Columnar (struct-of-arrays) task storage for the hot render path.
//!
//! A bird's-eye layout touches every task of a million-task schedule,
//! but only needs a handful of scalars per task: its time span, its
//! kind slot (for color resolution) and the host lanes it occupies.
//! Scanning `Vec<Task>` for those pays for everything else — each
//! `Task` is ~120 bytes with two heap `String`s plus `allocations` and
//! `attrs` `Vec`s, so the scan strides across scattered allocations and
//! chases pointers it never dereferences for pixels.
//!
//! [`TaskColumns`] is the same information laid out as parallel
//! columns, built once (inside [`crate::PreparedSchedule`], alongside
//! the interval index) and scanned linearly ever after:
//!
//! * `starts[ti]` / `ends[ti]` — the task's time span (16 contiguous
//!   bytes per task instead of a 120-byte struct);
//! * `kind_ids[ti]` — the slot of the task's kind in `kind_names`
//!   (first-appearance order). Renders resolve each *kind* against the
//!   color map once and then index the resolved table by slot, so the
//!   kind ids double as packed color indices;
//! * a CSR flattening of `task → allocations → host ranges`:
//!   `seg_offsets[ti]..seg_offsets[ti + 1]` indexes the per-segment
//!   `seg_clusters` / `seg_row0` / `seg_nrows` arrays, one entry per
//!   contiguous host range, in the exact order a `Task` walk visits
//!   them — consumers that must match the `Vec<Task>` path bit for bit
//!   (LOD accumulation order is `f32`-sensitive) rely on that order.
//!
//! The columns are immutable snapshots of the schedule they were built
//! from; `PreparedSchedule`'s immutability guarantees they never go
//! stale.

use crate::model::Schedule;
use crate::snap::Col;
use std::ops::Range;

/// One host-lane segment of a task: `nrows` rows starting at
/// cluster-local row `row0` of cluster `cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    pub cluster: u32,
    pub row0: u32,
    pub nrows: u32,
}

/// Parallel per-task columns plus the CSR segment arrays. See the
/// module docs for the layout rationale. Numeric columns are [`Col`]s:
/// owned vectors when built from a parsed schedule, zero-copy borrows
/// into a mapped `.jpack` when loaded from a snapshot — consumers see
/// `&[T]` either way.
#[derive(Debug, Clone, Default)]
pub struct TaskColumns {
    starts: Col<f64>,
    ends: Col<f64>,
    kind_ids: Col<u32>,
    kind_names: Vec<String>,
    /// `seg_offsets[ti]..seg_offsets[ti + 1]` bounds task `ti`'s
    /// entries in the three segment arrays; length `tasks + 1`.
    seg_offsets: Col<u32>,
    seg_clusters: Col<u32>,
    seg_row0: Col<u32>,
    seg_nrows: Col<u32>,
}

impl TaskColumns {
    /// Builds the columns in one pass over the schedule's tasks. Kind
    /// slots are assigned in first-appearance order with the same
    /// last-kind memo the legend scan uses, so `kind_names` equals
    /// [`Schedule::task_types`] exactly.
    pub fn build(schedule: &Schedule) -> TaskColumns {
        let n = schedule.tasks.len();
        let mut starts = Vec::with_capacity(n);
        let mut ends = Vec::with_capacity(n);
        let mut kind_ids = Vec::with_capacity(n);
        let mut kind_names: Vec<String> = Vec::new();
        let mut seg_offsets = Vec::with_capacity(n + 1);
        let mut seg_clusters = Vec::with_capacity(n);
        let mut seg_row0 = Vec::with_capacity(n);
        let mut seg_nrows = Vec::with_capacity(n);
        seg_offsets.push(0);
        // Consecutive tasks of real traces overwhelmingly share one
        // kind; remembering the last slot makes the common case a
        // single string compare.
        let mut last: Option<(u32, &str)> = None;
        for t in &schedule.tasks {
            starts.push(t.start);
            ends.push(t.end);
            let slot = match last {
                Some((slot, kind)) if kind == t.kind => slot,
                _ => match kind_names.iter().position(|k| *k == t.kind) {
                    Some(i) => i as u32,
                    None => {
                        kind_names.push(t.kind.clone());
                        (kind_names.len() - 1) as u32
                    }
                },
            };
            last = Some((slot, t.kind.as_str()));
            kind_ids.push(slot);
            for a in &t.allocations {
                for r in a.hosts.ranges() {
                    seg_clusters.push(a.cluster);
                    seg_row0.push(r.start);
                    seg_nrows.push(r.nb);
                }
            }
            seg_offsets.push(seg_clusters.len() as u32);
        }
        TaskColumns {
            starts: starts.into(),
            ends: ends.into(),
            kind_ids: kind_ids.into(),
            kind_names,
            seg_offsets: seg_offsets.into(),
            seg_clusters: seg_clusters.into(),
            seg_row0: seg_row0.into(),
            seg_nrows: seg_nrows.into(),
        }
    }

    /// Assembles columns from prebuilt parts — the pack loader, after
    /// validating every invariant `build` establishes by construction
    /// (CSR shape, kind id ranges, equal column lengths).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        starts: Col<f64>,
        ends: Col<f64>,
        kind_ids: Col<u32>,
        kind_names: Vec<String>,
        seg_offsets: Col<u32>,
        seg_clusters: Col<u32>,
        seg_row0: Col<u32>,
        seg_nrows: Col<u32>,
    ) -> TaskColumns {
        TaskColumns {
            starts,
            ends,
            kind_ids,
            kind_names,
            seg_offsets,
            seg_clusters,
            seg_row0,
            seg_nrows,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.starts.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.as_slice().is_empty()
    }

    /// Per-task start times, parallel to `schedule.tasks`.
    pub fn starts(&self) -> &[f64] {
        self.starts.as_slice()
    }

    /// Per-task end times, parallel to `schedule.tasks`.
    pub fn ends(&self) -> &[f64] {
        self.ends.as_slice()
    }

    /// Per-task kind slots into [`kind_names`](Self::kind_names) —
    /// the packed color indices once a render resolves each kind.
    pub fn kind_ids(&self) -> &[u32] {
        self.kind_ids.as_slice()
    }

    /// The distinct kinds in first-appearance order.
    pub fn kind_names(&self) -> &[String] {
        &self.kind_names
    }

    /// The CSR offsets array bounding each task's segments; length
    /// `tasks + 1`.
    pub fn seg_offsets(&self) -> &[u32] {
        self.seg_offsets.as_slice()
    }

    /// The segment-array range of task `ti`.
    #[inline]
    pub fn seg_range(&self, ti: usize) -> Range<usize> {
        let offs = self.seg_offsets.as_slice();
        offs[ti] as usize..offs[ti + 1] as usize
    }

    /// Per-segment cluster ids (indexed by [`seg_range`](Self::seg_range)).
    pub fn seg_clusters(&self) -> &[u32] {
        self.seg_clusters.as_slice()
    }

    /// Per-segment first cluster-local row.
    pub fn seg_row0(&self) -> &[u32] {
        self.seg_row0.as_slice()
    }

    /// Per-segment row count.
    pub fn seg_nrows(&self) -> &[u32] {
        self.seg_nrows.as_slice()
    }

    /// Task `ti`'s segments in `Task`-walk order.
    #[inline]
    pub fn segs(&self, ti: usize) -> impl Iterator<Item = Seg> + '_ {
        let clusters = self.seg_clusters.as_slice();
        let row0 = self.seg_row0.as_slice();
        let nrows = self.seg_nrows.as_slice();
        self.seg_range(ti).map(move |si| Seg {
            cluster: clusters[si],
            row0: row0[si],
            nrows: nrows[si],
        })
    }

    /// Whether task `ti` has any allocation on `cluster` — the columnar
    /// equivalent of `task.allocations.iter().any(|a| a.cluster == c)`.
    #[inline]
    pub fn on_cluster(&self, ti: usize, cluster: u32) -> bool {
        let clusters = self.seg_clusters.as_slice();
        self.seg_range(ti).any(|si| clusters[si] == cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::hostset::HostSet;
    use crate::model::{Allocation, Task};

    fn sched() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 8)
            .cluster(3, "c1", 4)
            .task(Task::new("a", "computation", 1.0, 4.0).on(Allocation::contiguous(0, 0, 4)))
            .task(
                Task::new("b", "transfer", 3.0, 6.0)
                    .on(Allocation::new(0, HostSet::from_hosts([0, 1, 4, 5, 7])))
                    .on(Allocation::contiguous(3, 0, 2)),
            )
            .task(Task::new("c", "computation", 0.5, 5.0).on(Allocation::contiguous(3, 0, 4)))
            .task(Task::new("d", "computation", 2.0, 2.0))
            .build()
            .unwrap()
    }

    #[test]
    fn columns_mirror_tasks() {
        let s = sched();
        let cols = TaskColumns::build(&s);
        assert_eq!(cols.len(), s.tasks.len());
        for (ti, t) in s.tasks.iter().enumerate() {
            assert_eq!(cols.starts()[ti], t.start);
            assert_eq!(cols.ends()[ti], t.end);
            assert_eq!(cols.kind_names()[cols.kind_ids()[ti] as usize], t.kind);
            // Segments replay the allocation × range walk exactly.
            let want: Vec<Seg> = t
                .allocations
                .iter()
                .flat_map(|a| {
                    a.hosts.ranges().iter().map(|r| Seg {
                        cluster: a.cluster,
                        row0: r.start,
                        nrows: r.nb,
                    })
                })
                .collect();
            assert_eq!(cols.segs(ti).collect::<Vec<_>>(), want, "task {ti}");
        }
    }

    #[test]
    fn kind_names_match_first_appearance_order() {
        let s = sched();
        let cols = TaskColumns::build(&s);
        assert_eq!(
            cols.kind_names(),
            ["computation".to_string(), "transfer".to_string()]
        );
        assert_eq!(cols.kind_ids(), [0, 1, 0, 0]);
    }

    #[test]
    fn on_cluster_matches_allocation_scan() {
        let s = sched();
        let cols = TaskColumns::build(&s);
        for (ti, t) in s.tasks.iter().enumerate() {
            for cid in [0u32, 3, 9] {
                assert_eq!(
                    cols.on_cluster(ti, cid),
                    t.allocations.iter().any(|a| a.cluster == cid),
                    "task {ti} cluster {cid}"
                );
            }
        }
    }

    #[test]
    fn empty_schedule_and_allocation_free_task() {
        let cols = TaskColumns::build(&Schedule::new());
        assert!(cols.is_empty());
        assert_eq!(cols.seg_offsets(), [0]);
        let s = sched();
        let cols = TaskColumns::build(&s);
        // Task "d" has no allocations: empty segment range.
        assert_eq!(cols.seg_range(3).len(), 0);
        assert!(!cols.on_cluster(3, 0));
    }
}
