//! A schedule prepared for repeated serving.
//!
//! Interactive trace browsing (zoom, pan, repeated `--window` renders)
//! asks for many views of one schedule, but every cold render pays the
//! same per-schedule fixed work again: a full extent scan, an interval
//! index build, a legend-type scan and per-task type classification.
//! At a million tasks that fixed work dominates a windowed render — the
//! tasks actually drawn are a tiny fraction of the trace.
//!
//! [`PreparedSchedule`] bundles a schedule with lazily built, cached
//! derived data so the fixed work is paid **once** and every subsequent
//! view is bounded by what it draws:
//!
//! * the per-cluster/per-host [`ScheduleIndex`] (window culling,
//!   composite sweep, hit-testing),
//! * global and per-cluster time extents for both [`AlignMode`]s,
//! * the distinct task kinds in first-appearance order plus a per-task
//!   kind slot (legend + classify/colormap memo), and
//! * the default composite-task sweep.
//!
//! All caches are [`OnceLock`]s: a `PreparedSchedule` is `Send + Sync`,
//! costs nothing beyond the schedule itself until a consumer asks for a
//! piece, and hands out the same borrow on every later ask. The wrapped
//! schedule is immutable (no `&mut` accessor), so the caches can never
//! go stale.

use crate::align::{AlignMode, TimeExtent};
use crate::columns::TaskColumns;
use crate::composite::{composite_tasks_columnar, CompositeOptions};
use crate::index::ScheduleIndex;
use crate::model::{Cluster, MetaInfo, Schedule, Task};
use crate::obs;
use crate::snap::{PackNames, PackedSchedule};
use std::sync::OnceLock;

/// Cached extents: the global one plus each cluster's local one, stored
/// in cluster declaration order.
#[derive(Debug)]
struct Extents {
    global: Option<TimeExtent>,
    per_cluster: Vec<Option<TimeExtent>>,
}

/// A [`Schedule`] plus memoized derived data for serving many renders.
///
/// ```
/// use jedule_core::{PreparedSchedule, ScheduleBuilder};
/// let s = ScheduleBuilder::new().cluster(0, "c", 4).build().unwrap();
/// let prep = PreparedSchedule::new(s);
/// let _idx = prep.index(); // built now, reused by every later call
/// assert!(prep.kinds().is_empty());
/// ```
#[derive(Debug)]
pub struct PreparedSchedule {
    /// Where the tasks come from. `Owned` means `schedule` was set at
    /// construction; `Packed` keeps the cheap structure (clusters, meta,
    /// lazily-read names) and materializes `schedule` only on demand.
    source: Source,
    schedule: OnceLock<Schedule>,
    index: OnceLock<ScheduleIndex>,
    extents: OnceLock<Extents>,
    columns: OnceLock<TaskColumns>,
    composites: OnceLock<Vec<Task>>,
}

#[derive(Debug)]
enum Source {
    Owned,
    Packed {
        clusters: Vec<Cluster>,
        meta: MetaInfo,
        names: PackNames,
    },
}

impl PreparedSchedule {
    /// Wraps a schedule. No derived data is built yet — each cache fills
    /// on first use.
    pub fn new(schedule: Schedule) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(schedule);
        PreparedSchedule {
            source: Source::Owned,
            schedule: cell,
            index: OnceLock::new(),
            extents: OnceLock::new(),
            columns: OnceLock::new(),
            composites: OnceLock::new(),
        }
    }

    /// Wraps a loaded `.jpack` snapshot. Every cache a windowed render
    /// touches (index, extents, columns, composites) is pre-seeded from
    /// the pack — the inverse of the text path, where the schedule is
    /// eager and the caches lazy. Here only the full `Schedule` (task
    /// structs with owned strings) stays lazy; rendering never asks for
    /// it.
    pub fn from_pack(packed: PackedSchedule) -> Self {
        let PackedSchedule {
            clusters,
            meta,
            columns,
            index,
            global,
            per_cluster,
            composites,
            names,
            ..
        } = packed;
        let prep = PreparedSchedule {
            source: Source::Packed {
                clusters,
                meta,
                names,
            },
            schedule: OnceLock::new(),
            index: OnceLock::new(),
            extents: OnceLock::new(),
            columns: OnceLock::new(),
            composites: OnceLock::new(),
        };
        let _ = prep.index.set(index);
        let _ = prep.extents.set(Extents {
            global,
            per_cluster,
        });
        let _ = prep.columns.set(columns);
        let _ = prep.composites.set(composites);
        prep
    }

    /// Whether this schedule came from a `.jpack` snapshot.
    pub fn is_packed(&self) -> bool {
        matches!(self.source, Source::Packed { .. })
    }

    /// Whether the full `Schedule` has been built. Owned sources are
    /// materialized by construction; a packed source stays
    /// unmaterialized until something calls [`Self::schedule`] — tests
    /// use this to prove the render path never does.
    pub fn is_materialized(&self) -> bool {
        self.schedule.get().is_some()
    }

    /// The wrapped schedule. For packed sources this materializes the
    /// full task list (owned strings, allocations, attrs) on first call;
    /// paths that only render never pay it.
    pub fn schedule(&self) -> &Schedule {
        if let Some(s) = self.schedule.get() {
            return s;
        }
        self.schedule.get_or_init(|| match &self.source {
            Source::Owned => unreachable!("owned schedule is set at construction"),
            Source::Packed {
                clusters,
                meta,
                names,
            } => {
                let _s = obs::span("prepare.materialize");
                Schedule {
                    clusters: clusters.clone(),
                    tasks: names.build_tasks(self.columns.get().expect("packed columns preset")),
                    meta: meta.clone(),
                }
            }
        })
    }

    /// The clusters, without materializing a packed schedule.
    pub fn clusters(&self) -> &[Cluster] {
        match &self.source {
            Source::Owned => &self.schedule.get().expect("owned schedule set").clusters,
            Source::Packed { clusters, .. } => clusters,
        }
    }

    /// The meta info, without materializing a packed schedule.
    pub fn meta(&self) -> &MetaInfo {
        match &self.source {
            Source::Owned => &self.schedule.get().expect("owned schedule set").meta,
            Source::Packed { meta, .. } => meta,
        }
    }

    /// Task `ti`'s id string, without materializing a packed schedule
    /// (label paths read it straight from the pack's string blob).
    pub fn task_id(&self, ti: usize) -> &str {
        match &self.source {
            Source::Owned => &self.schedule.get().expect("owned schedule set").tasks[ti].id,
            Source::Packed { names, .. } => names.task_id(ti),
        }
    }

    /// Number of tasks, without materializing a packed schedule.
    pub fn task_count(&self) -> usize {
        match &self.source {
            Source::Owned => self.schedule.get().expect("owned schedule set").tasks.len(),
            Source::Packed { .. } => self.columns.get().expect("packed columns preset").len(),
        }
    }

    /// Unwraps the schedule (materializing it for packed sources),
    /// dropping the caches.
    pub fn into_schedule(self) -> Schedule {
        self.schedule();
        self.schedule.into_inner().expect("just materialized")
    }

    /// The interval index, built with per-host rows on first use (a
    /// superset of the cluster-only index, so one cache serves window
    /// culling, the composite sweep, statistics and hit-testing alike).
    pub fn index(&self) -> &ScheduleIndex {
        if let Some(built) = self.index.get() {
            obs::count("prepared.cache_hit", 1);
            return built;
        }
        self.index.get_or_init(|| {
            let schedule = self.schedule();
            let _s = obs::span("prepare.index");
            obs::count("prepared.cache_build", 1);
            ScheduleIndex::build_with_hosts(schedule)
        })
    }

    /// Eagerly builds every cache a windowed render touches (index,
    /// extents, columns). Useful to move the one-time cost out of the
    /// first frame — e.g. before entering an interactive loop.
    pub fn warm(&self) -> &Self {
        self.index();
        self.extents();
        self.columns();
        self
    }

    fn extents(&self) -> &Extents {
        if let Some(built) = self.extents.get() {
            obs::count("prepared.cache_hit", 1);
            return built;
        }
        self.extents.get_or_init(|| {
            let schedule = self.schedule();
            let _s = obs::span("prepare.extents");
            obs::count("prepared.cache_build", 1);
            // One pass over tasks × allocations computes what
            // `align::global_extent` + per-cluster `align::cluster_extent`
            // would, with identical min/max accumulation semantics.
            let slot = |id: u32| schedule.clusters.iter().position(|c| c.id == id);
            let mut global: Option<TimeExtent> = None;
            let mut per_cluster: Vec<Option<TimeExtent>> = vec![None; schedule.clusters.len()];
            for t in &schedule.tasks {
                let g = global.get_or_insert(TimeExtent::new(t.start, t.end));
                g.start = g.start.min(t.start);
                g.end = g.end.max(t.end);
                for a in &t.allocations {
                    let Some(ci) = slot(a.cluster) else { continue };
                    let e = per_cluster[ci].get_or_insert(TimeExtent::new(t.start, t.end));
                    e.start = e.start.min(t.start);
                    e.end = e.end.max(t.end);
                }
            }
            Extents {
                global,
                per_cluster,
            }
        })
    }

    /// The global `[min start, max end]` extent (`None` when empty),
    /// equal to [`crate::align::global_extent`].
    pub fn global_extent(&self) -> Option<TimeExtent> {
        self.extents().global
    }

    /// The extent to draw `cluster` with under `mode`, equal to
    /// [`crate::align::extent_for`] — cached instead of rescanned.
    pub fn extent_for(&self, cluster: u32, mode: AlignMode) -> Option<TimeExtent> {
        let ex = self.extents();
        match mode {
            AlignMode::Aligned => ex.global,
            AlignMode::Scaled => {
                let pos = self.clusters().iter().position(|c| c.id == cluster)?;
                ex.per_cluster[pos]
            }
        }
    }

    /// The columnar task view ([`TaskColumns`]): per-task start/end/kind
    /// columns plus the CSR host-lane segments, built once and scanned
    /// linearly by the render hot path and the composite sweep.
    pub fn columns(&self) -> &TaskColumns {
        if let Some(built) = self.columns.get() {
            obs::count("prepared.cache_hit", 1);
            return built;
        }
        self.columns.get_or_init(|| {
            let schedule = self.schedule();
            let _s = obs::span("prepare.columns");
            obs::count("prepared.cache_build", 1);
            TaskColumns::build(schedule)
        })
    }

    /// The distinct task kinds in order of first appearance — exactly
    /// the list a legend scan over all tasks collects. Served from the
    /// columnar cache.
    pub fn kinds(&self) -> &[String] {
        self.columns().kind_names()
    }

    /// For each task (by index), the slot of its kind in [`kinds`]
    /// (`self.kinds()[kind_ids()[ti] as usize] == tasks[ti].kind`).
    /// Classifiers can resolve each kind against a color map once and
    /// then look tasks up by slot instead of comparing strings.
    pub fn kind_ids(&self) -> &[u32] {
        self.columns().kind_ids()
    }

    /// Composite tasks of overlap regions under default
    /// [`CompositeOptions`] — what the layout engine draws. Computed on
    /// first use (building the index if needed) and cached.
    pub fn composites(&self) -> &[Task] {
        if let Some(built) = self.composites.get() {
            obs::count("prepared.cache_hit", 1);
            return built.as_slice();
        }
        self.composites
            .get_or_init(|| {
                // Resolve the schedule, index and column dependencies
                // *before* opening the span so their build time is
                // attributed to prepare.index / prepare.columns, not here.
                let schedule = self.schedule();
                let index = self.index();
                let columns = self.columns();
                let _s = obs::span("prepare.composites");
                obs::count("prepared.cache_build", 1);
                composite_tasks_columnar(schedule, index, columns, &CompositeOptions::default())
            })
            .as_slice()
    }
}

impl From<Schedule> for PreparedSchedule {
    fn from(schedule: Schedule) -> Self {
        PreparedSchedule::new(schedule)
    }
}

impl std::ops::Deref for PreparedSchedule {
    type Target = Schedule;

    fn deref(&self) -> &Schedule {
        self.schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{extent_for, global_extent};
    use crate::builder::ScheduleBuilder;
    use crate::composite::composite_tasks;
    use crate::model::{Allocation, Task};

    fn sched() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 8)
            .cluster(3, "c1", 4)
            .task(Task::new("a", "computation", 1.0, 4.0).on(Allocation::contiguous(0, 0, 4)))
            .task(Task::new("b", "transfer", 3.0, 6.0).on(Allocation::contiguous(0, 2, 2)))
            .task(Task::new("c", "computation", 0.5, 5.0).on(Allocation::contiguous(3, 0, 4)))
            .build()
            .unwrap()
    }

    #[test]
    fn extents_match_align_module() {
        let s = sched();
        let p = PreparedSchedule::new(s.clone());
        assert_eq!(p.global_extent(), global_extent(&s));
        for cid in [0u32, 3, 99] {
            for mode in [AlignMode::Scaled, AlignMode::Aligned] {
                assert_eq!(
                    p.extent_for(cid, mode),
                    extent_for(&s, cid, mode),
                    "cluster {cid} mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn empty_schedule_extents() {
        let s = ScheduleBuilder::new().cluster(0, "c", 2).build().unwrap();
        let p = PreparedSchedule::new(s.clone());
        assert_eq!(p.global_extent(), None);
        assert_eq!(p.extent_for(0, AlignMode::Scaled), None);
        // Aligned mode hands task-less clusters the global extent — which
        // is None here, matching align::extent_for.
        assert_eq!(
            p.extent_for(0, AlignMode::Aligned),
            extent_for(&s, 0, AlignMode::Aligned)
        );
    }

    #[test]
    fn kinds_in_first_appearance_order_with_slots() {
        let s = sched();
        let p = PreparedSchedule::new(s.clone());
        assert_eq!(
            p.kinds(),
            ["computation".to_string(), "transfer".to_string()]
        );
        assert_eq!(p.kind_ids(), [0, 1, 0]);
        for (ti, t) in s.tasks.iter().enumerate() {
            assert_eq!(p.kinds()[p.kind_ids()[ti] as usize], t.kind);
        }
    }

    #[test]
    fn index_is_built_once_and_has_hosts() {
        let p = PreparedSchedule::new(sched());
        let a = p.index() as *const _;
        let b = p.index() as *const _;
        assert_eq!(a, b);
        assert!(p.index().has_hosts());
        assert_eq!(p.index().cluster(0).unwrap().query(0.0, 10.0), vec![0, 1]);
    }

    #[test]
    fn composites_match_uncached_sweep() {
        let s = sched();
        let p = PreparedSchedule::new(s.clone());
        let cold = composite_tasks(&s, &CompositeOptions::default());
        assert_eq!(p.composites(), cold.as_slice());
        // Cached: same borrow twice.
        assert_eq!(p.composites().as_ptr(), p.composites().as_ptr());
    }

    #[test]
    fn deref_and_unwrap() {
        let s = sched();
        let p = PreparedSchedule::from(s.clone());
        assert_eq!(p.tasks.len(), 3); // Deref
        assert_eq!(p.schedule(), &s);
        p.warm();
        assert_eq!(p.into_schedule(), s);
    }

    #[test]
    fn cache_counters_distinguish_build_from_hit() {
        let col = obs::Collector::new();
        let _g = col.install();
        let p = PreparedSchedule::new(sched());
        p.index();
        p.index();
        p.composites(); // hits index again, builds columns + composites
        let rep = col.report();
        assert_eq!(rep.counter("prepared.cache_build"), 3);
        assert!(rep.counter("prepared.cache_hit") >= 2);
        assert!(rep.spans.iter().any(|s| s.name == "prepare.index"));
        assert!(rep.spans.iter().any(|s| s.name == "prepare.columns"));
        assert!(rep.spans.iter().any(|s| s.name == "prepare.composites"));
    }

    #[test]
    fn prepared_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<PreparedSchedule>();
    }
}
