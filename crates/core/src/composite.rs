//! Composite tasks (paper, §II-C3 and Fig. 3).
//!
//! A parallel system may execute tasks concurrently on the same resource.
//! For every resource shared by several tasks at the same time, Jedule
//! creates a *composite task* whose identifier is the concatenation of the
//! single task IDs and whose type is `"composite"`. The classic example is
//! the overlap of computation and communication on one host.
//!
//! The algorithm here sweeps each host's timeline once and merges identical
//! overlap segments across adjacent hosts, so a composite spanning many
//! hosts becomes a single multi-host task (one rectangle per contiguous
//! host run).

use crate::columns::TaskColumns;
use crate::hostset::HostSet;
use crate::index::ScheduleIndex;
use crate::model::{Allocation, Schedule, Task};
use crate::parallel::{chunk_bounds, effective_threads};
use std::collections::HashMap;

/// The type name assigned to generated composite tasks.
pub const COMPOSITE_KIND: &str = "composite";

/// Attribute key carrying the `+`-joined constituent task types.
pub const ATTR_TYPES: &str = "constituent_types";

/// Attribute key carrying the `+`-joined constituent task ids.
pub const ATTR_IDS: &str = "constituent_ids";

/// Options controlling composite computation.
#[derive(Debug, Clone, Copy)]
pub struct CompositeOptions {
    /// Overlap segments shorter than this are ignored (guards against
    /// floating-point touching of task boundaries).
    pub min_duration: f64,
    /// Worker threads for the per-host sweep: `0` = available
    /// parallelism, `1` = sequential. The output is identical for every
    /// worker count (hosts are chunked and merged in index order).
    pub threads: usize,
}

impl Default for CompositeOptions {
    fn default() -> Self {
        CompositeOptions {
            min_duration: 1e-12,
            threads: 0,
        }
    }
}

impl CompositeOptions {
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Key identifying a merged overlap segment: bit-exact start/end times
/// plus the sorted constituent task indices.
type SegKey = (u64, u64, Vec<usize>);

/// An overlap segment on one host before cross-host merging.
#[derive(Debug, Clone, PartialEq)]
struct Segment {
    start: f64,
    end: f64,
    /// Sorted indices of the overlapping tasks.
    tasks: Vec<usize>,
}

/// Computes the composite tasks of a schedule.
///
/// Returned tasks have type [`COMPOSITE_KIND`], an id of the form
/// `id1+id2+…`, and attributes [`ATTR_IDS`] / [`ATTR_TYPES`] used by color
/// maps to resolve composite colors.
pub fn composite_tasks(schedule: &Schedule, opts: &CompositeOptions) -> Vec<Task> {
    let index = ScheduleIndex::build_with_hosts(schedule);
    composite_tasks_indexed(schedule, &index, opts)
}

/// [`composite_tasks`] against a pre-built interval index (must have host
/// rows). Callers that already hold an index — the render pipeline builds
/// one for window culling — avoid re-bucketing every task per host.
pub fn composite_tasks_indexed(
    schedule: &Schedule,
    index: &ScheduleIndex,
    opts: &CompositeOptions,
) -> Vec<Task> {
    composite_impl(schedule, index, opts, &|ti| {
        let t = &schedule.tasks[ti];
        (t.start, t.end)
    })
}

/// [`composite_tasks_indexed`] with task spans read from the columnar
/// view's contiguous `starts`/`ends` slices instead of striding across
/// `Vec<Task>` structs. The column values are bit-exact copies of the
/// task fields, so the output is identical.
pub fn composite_tasks_columnar(
    schedule: &Schedule,
    index: &ScheduleIndex,
    cols: &TaskColumns,
    opts: &CompositeOptions,
) -> Vec<Task> {
    let (starts, ends) = (cols.starts(), cols.ends());
    composite_impl(schedule, index, opts, &|ti| (starts[ti], ends[ti]))
}

/// The shared sweep, generic (and monomorphized) over how a task index
/// resolves to its `(start, end)` span.
fn composite_impl<F>(
    schedule: &Schedule,
    index: &ScheduleIndex,
    opts: &CompositeOptions,
    span_of: &F,
) -> Vec<Task>
where
    F: Fn(usize) -> (f64, f64) + Sync,
{
    let mut out = Vec::new();
    for cluster in &schedule.clusters {
        let Some(ci) = index.cluster(cluster.id) else {
            continue;
        };
        // Per-host task lists come straight from the index rows, which
        // already deduplicate a task with several allocations on this
        // cluster (or one allocation listing a host twice) — without the
        // dedup the sweep would see the task overlap *itself* and emit
        // bogus `a+a` composites.
        let per_host: Vec<Vec<usize>> = (0..cluster.hosts)
            .map(|h| {
                ci.host(h)
                    .map(|seq| seq.entries().iter().map(|e| e.task as usize).collect())
                    .unwrap_or_default()
            })
            .collect();

        // Sweep each host (in parallel across hosts); key segments by
        // (bit-exact times, task set). The work list and the merge below
        // are both in ascending host order regardless of the worker
        // count, so the result is deterministic.
        let work: Vec<(u32, &[usize])> = per_host
            .iter()
            .enumerate()
            .filter(|(_, tasks)| tasks.len() >= 2)
            .map(|(host, tasks)| (host as u32, tasks.as_slice()))
            .collect();
        let workers = effective_threads(opts.threads).min(work.len()).max(1);

        let swept: Vec<Vec<(u32, Vec<Segment>)>> = if workers <= 1 {
            vec![work
                .iter()
                .map(|&(host, tasks)| (host, host_overlaps(span_of, tasks, opts)))
                .collect()]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunk_bounds(work.len(), workers)
                    .into_iter()
                    .map(|(lo, hi)| {
                        let items = &work[lo..hi];
                        scope.spawn(move || {
                            items
                                .iter()
                                .map(|&(host, tasks)| (host, host_overlaps(span_of, tasks, opts)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("composite sweep worker panicked"))
                    .collect()
            })
        };

        let mut groups: HashMap<SegKey, Vec<u32>> = HashMap::new();
        for (host, segs) in swept.into_iter().flatten() {
            for seg in segs {
                groups
                    .entry((seg.start.to_bits(), seg.end.to_bits(), seg.tasks))
                    .or_default()
                    .push(host);
            }
        }

        let mut segs: Vec<(SegKey, Vec<u32>)> = groups.into_iter().collect();
        // Deterministic output order: by start, end, then constituent ids.
        segs.sort_by(|a, b| {
            f64::from_bits(a.0 .0)
                .total_cmp(&f64::from_bits(b.0 .0))
                .then(f64::from_bits(a.0 .1).total_cmp(&f64::from_bits(b.0 .1)))
                .then(a.0 .2.cmp(&b.0 .2))
        });

        for ((s_bits, e_bits, task_idx), hosts) in segs {
            let ids: Vec<&str> = task_idx
                .iter()
                .map(|&i| schedule.tasks[i].id.as_str())
                .collect();
            let mut types: Vec<&str> = task_idx
                .iter()
                .map(|&i| schedule.tasks[i].kind.as_str())
                .collect();
            types.sort_unstable();
            types.dedup();
            let task = Task::new(
                ids.join("+"),
                COMPOSITE_KIND,
                f64::from_bits(s_bits),
                f64::from_bits(e_bits),
            )
            .on(Allocation::new(cluster.id, HostSet::from_hosts(hosts)))
            .with_attr(ATTR_IDS, ids.join("+"))
            .with_attr(ATTR_TYPES, types.join("+"));
            out.push(task);
        }
    }
    out
}

/// Sweeps one host's tasks and returns maximal segments where at least two
/// tasks are simultaneously active.
fn host_overlaps<F>(span_of: &F, task_indices: &[usize], opts: &CompositeOptions) -> Vec<Segment>
where
    F: Fn(usize) -> (f64, f64),
{
    // Event sweep: +1 at start, -1 at end.
    let mut events: Vec<(f64, i32, usize)> = Vec::with_capacity(task_indices.len() * 2);
    for &ti in task_indices {
        let (start, end) = span_of(ti);
        if end > start {
            events.push((start, 1, ti));
            events.push((end, -1, ti));
        }
    }
    // Ends before starts at equal times so touching tasks don't overlap.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut active: Vec<usize> = Vec::new();
    let mut out: Vec<Segment> = Vec::new();
    let mut prev_t = f64::NEG_INFINITY;
    for (t, delta, ti) in events {
        if active.len() >= 2 && t - prev_t > opts.min_duration {
            let mut tasks = active.clone();
            tasks.sort_unstable();
            // Extend the previous segment if it has the same constituents
            // and touches (can happen when an unrelated event splits it).
            // The comparison is strict: a gap of exactly `min_duration`
            // is a real (just-suppressed) interval, not floating-point
            // noise, and must keep the segments apart.
            if let Some(last) = out.last_mut() {
                if last.tasks == tasks && (last.end - prev_t).abs() < opts.min_duration {
                    last.end = t;
                } else {
                    out.push(Segment {
                        start: prev_t,
                        end: t,
                        tasks,
                    });
                }
            } else {
                out.push(Segment {
                    start: prev_t,
                    end: t,
                    tasks,
                });
            }
        }
        if delta > 0 {
            active.push(ti);
        } else if let Some(pos) = active.iter().position(|&x| x == ti) {
            active.swap_remove(pos);
        }
        prev_t = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cluster;

    fn schedule_with(tasks: Vec<Task>) -> Schedule {
        Schedule {
            clusters: vec![Cluster::new(0, "c0", 8)],
            tasks,
            meta: Default::default(),
        }
    }

    #[test]
    fn no_overlap_no_composites() {
        let s = schedule_with(vec![
            Task::new("a", "computation", 0.0, 1.0).on(Allocation::contiguous(0, 0, 4)),
            Task::new("b", "computation", 1.0, 2.0).on(Allocation::contiguous(0, 0, 4)),
        ]);
        assert!(composite_tasks(&s, &CompositeOptions::default()).is_empty());
    }

    #[test]
    fn simple_overlap_creates_one_composite() {
        let s = schedule_with(vec![
            Task::new("a", "computation", 0.0, 2.0).on(Allocation::contiguous(0, 0, 4)),
            Task::new("b", "transfer", 1.0, 3.0).on(Allocation::contiguous(0, 0, 4)),
        ]);
        let comps = composite_tasks(&s, &CompositeOptions::default());
        assert_eq!(comps.len(), 1);
        let c = &comps[0];
        assert_eq!(c.kind, COMPOSITE_KIND);
        assert_eq!(c.id, "a+b");
        assert_eq!(c.start, 1.0);
        assert_eq!(c.end, 2.0);
        assert_eq!(c.allocations.len(), 1);
        assert_eq!(c.allocations[0].hosts, HostSet::contiguous(0, 4));
        let types = c
            .attrs
            .iter()
            .find(|(k, _)| k == ATTR_TYPES)
            .map(|(_, v)| v.as_str());
        assert_eq!(types, Some("computation+transfer"));
    }

    #[test]
    fn partial_host_overlap_restricts_hosts() {
        let s = schedule_with(vec![
            Task::new("a", "computation", 0.0, 2.0).on(Allocation::contiguous(0, 0, 4)),
            Task::new("b", "transfer", 1.0, 3.0).on(Allocation::contiguous(0, 2, 4)),
        ]);
        let comps = composite_tasks(&s, &CompositeOptions::default());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].allocations[0].hosts, HostSet::contiguous(2, 2));
    }

    #[test]
    fn triple_overlap_produces_staged_composites() {
        let s = schedule_with(vec![
            Task::new("a", "x", 0.0, 10.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("b", "y", 2.0, 8.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("c", "z", 4.0, 6.0).on(Allocation::contiguous(0, 0, 1)),
        ]);
        let comps = composite_tasks(&s, &CompositeOptions::default());
        // [2,4): a+b, [4,6): a+b+c, [6,8): a+b
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].id, "a+b");
        assert_eq!((comps[0].start, comps[0].end), (2.0, 4.0));
        assert_eq!(comps[1].id, "a+b+c");
        assert_eq!((comps[1].start, comps[1].end), (4.0, 6.0));
        assert_eq!(comps[2].id, "a+b");
        assert_eq!((comps[2].start, comps[2].end), (6.0, 8.0));
    }

    #[test]
    fn touching_tasks_do_not_compose() {
        let s = schedule_with(vec![
            Task::new("a", "x", 0.0, 1.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("b", "y", 1.0, 2.0).on(Allocation::contiguous(0, 0, 1)),
        ]);
        assert!(composite_tasks(&s, &CompositeOptions::default()).is_empty());
    }

    #[test]
    fn composites_respect_cluster_boundaries() {
        let s = Schedule {
            clusters: vec![Cluster::new(0, "c0", 2), Cluster::new(1, "c1", 2)],
            tasks: vec![
                Task::new("a", "x", 0.0, 2.0).on(Allocation::contiguous(0, 0, 2)),
                Task::new("b", "y", 1.0, 3.0).on(Allocation::contiguous(1, 0, 2)),
            ],
            meta: Default::default(),
        };
        // Same host indices but different clusters: no shared resource.
        assert!(composite_tasks(&s, &CompositeOptions::default()).is_empty());
    }

    #[test]
    fn zero_duration_tasks_ignored() {
        let s = schedule_with(vec![
            Task::new("a", "x", 1.0, 1.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("b", "y", 0.0, 2.0).on(Allocation::contiguous(0, 0, 1)),
        ]);
        assert!(composite_tasks(&s, &CompositeOptions::default()).is_empty());
    }

    #[test]
    fn duplicate_allocations_do_not_self_compose() {
        // A task listed twice on the same host (two allocations on one
        // cluster) must not overlap itself and emit an `a+a` composite.
        let s = schedule_with(vec![Task::new("a", "computation", 0.0, 2.0)
            .on(Allocation::contiguous(0, 0, 2))
            .on(Allocation::contiguous(0, 1, 2))]);
        let comps = composite_tasks(&s, &CompositeOptions::default());
        assert!(
            comps.is_empty(),
            "lone task self-composed: {:?}",
            comps.iter().map(|c| c.id.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_allocations_still_compose_with_real_overlaps() {
        // The deduped task still composes with a genuinely overlapping
        // one — as `a+b`, never `a+a` or `a+a+b`.
        let s = schedule_with(vec![
            Task::new("a", "computation", 0.0, 2.0)
                .on(Allocation::contiguous(0, 1, 1))
                .on(Allocation::contiguous(0, 1, 1)),
            Task::new("b", "transfer", 1.0, 3.0).on(Allocation::contiguous(0, 1, 1)),
        ]);
        let comps = composite_tasks(&s, &CompositeOptions::default());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].id, "a+b");
        assert_eq!((comps[0].start, comps[0].end), (1.0, 2.0));
    }

    #[test]
    fn gap_of_exactly_min_duration_is_not_glued() {
        // a and b overlap throughout [0, 10]; c joins for exactly
        // min_duration at [5, 5.5]. The a+b+c segment is suppressed
        // (== min_duration), but the two surrounding a+b segments are
        // separated by that real interval and must NOT be merged into
        // one [0, 10] segment.
        let opts = CompositeOptions {
            min_duration: 0.5,
            ..CompositeOptions::default()
        };
        let s = schedule_with(vec![
            Task::new("a", "x", 0.0, 10.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("b", "y", 0.0, 10.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("c", "z", 5.0, 5.5).on(Allocation::contiguous(0, 0, 1)),
        ]);
        let comps = composite_tasks(&s, &opts);
        let ab: Vec<(f64, f64)> = comps
            .iter()
            .filter(|c| c.id == "a+b")
            .map(|c| (c.start, c.end))
            .collect();
        assert_eq!(
            ab,
            vec![(0.0, 5.0), (5.5, 10.0)],
            "boundary gap glued: {comps:?}"
        );
    }

    #[test]
    fn sub_min_duration_jitter_still_merges() {
        // The merge exists to bridge floating-point-sized splits from
        // unrelated events; a split far below min_duration still glues.
        let opts = CompositeOptions {
            min_duration: 0.5,
            ..CompositeOptions::default()
        };
        let s = schedule_with(vec![
            Task::new("a", "x", 0.0, 10.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("b", "y", 0.0, 10.0).on(Allocation::contiguous(0, 0, 1)),
            Task::new("c", "z", 5.0, 5.1).on(Allocation::contiguous(0, 0, 1)),
        ]);
        let comps = composite_tasks(&s, &opts);
        let ab: Vec<(f64, f64)> = comps
            .iter()
            .filter(|c| c.id == "a+b")
            .map(|c| (c.start, c.end))
            .collect();
        assert_eq!(ab, vec![(0.0, 10.0)]);
    }

    #[test]
    fn output_is_identical_for_any_worker_count() {
        // A many-host schedule with overlaps everywhere: the composite
        // list (content *and* order) must not depend on `threads`.
        let mut tasks = Vec::new();
        for i in 0..40u32 {
            let h = i % 8;
            let start = f64::from(i % 5);
            tasks.push(
                Task::new(
                    format!("t{i}"),
                    if i % 2 == 0 {
                        "computation"
                    } else {
                        "transfer"
                    },
                    start,
                    start + 2.0,
                )
                .on(Allocation::contiguous(0, h, 1 + (i % 3))),
            );
        }
        let s = schedule_with(tasks);
        let base = composite_tasks(&s, &CompositeOptions::default().with_threads(1));
        assert!(!base.is_empty());
        for threads in [0, 2, 3, 5, 8, 16] {
            let got = composite_tasks(&s, &CompositeOptions::default().with_threads(threads));
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn columnar_matches_indexed_for_any_worker_count() {
        let mut tasks = Vec::new();
        for i in 0..40u32 {
            let h = i % 8;
            let start = f64::from(i % 5);
            tasks.push(
                Task::new(
                    format!("t{i}"),
                    if i % 2 == 0 { "x" } else { "y" },
                    start,
                    start + 2.0,
                )
                .on(Allocation::contiguous(0, h, 1 + (i % 3))),
            );
        }
        let s = schedule_with(tasks);
        let index = ScheduleIndex::build_with_hosts(&s);
        let cols = TaskColumns::build(&s);
        let base = composite_tasks_indexed(&s, &index, &CompositeOptions::default());
        assert!(!base.is_empty());
        for threads in [1, 2, 5] {
            let opts = CompositeOptions::default().with_threads(threads);
            let got = composite_tasks_columnar(&s, &index, &cols, &opts);
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn noncontiguous_composite_hosts() {
        // Overlap on hosts 0 and 2 only.
        let s = schedule_with(vec![
            Task::new("a", "x", 0.0, 2.0).on(Allocation::new(0, HostSet::from_hosts([0, 2]))),
            Task::new("b", "y", 1.0, 3.0).on(Allocation::contiguous(0, 0, 4)),
        ]);
        let comps = composite_tasks(&s, &CompositeOptions::default());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].allocations[0].hosts, HostSet::from_hosts([0, 2]));
        assert!(!comps[0].allocations[0].hosts.is_contiguous());
    }
}
