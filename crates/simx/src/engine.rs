//! The DAG-execution engine.

use crate::events::EventQueue;
use crate::trace::{CommRecord, ExecRecord, Trace};
use jedule_dag::{Dag, TaskId};
use jedule_platform::Platform;
use std::fmt;

/// Where each task runs: a list of global host indices per task, parallel
/// to `dag.tasks`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mapping {
    pub hosts_per_task: Vec<Vec<u32>>,
}

impl Mapping {
    pub fn new(hosts_per_task: Vec<Vec<u32>>) -> Self {
        Mapping { hosts_per_task }
    }

    /// Every task on the single host `0` — a serial baseline.
    pub fn all_on_host_zero(n_tasks: usize) -> Self {
        Mapping {
            hosts_per_task: vec![vec![0]; n_tasks],
        }
    }
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Mapping length does not match the task count.
    MappingSize { tasks: usize, mapped: usize },
    /// A task is mapped to no host.
    UnmappedTask(TaskId),
    /// A task references a host outside the platform.
    BadHost { task: TaskId, host: u32 },
    /// The DAG has a cycle.
    Cyclic,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MappingSize { tasks, mapped } => {
                write!(f, "mapping covers {mapped} tasks but the DAG has {tasks}")
            }
            SimError::UnmappedTask(t) => write!(f, "task {t} is mapped to no host"),
            SimError::BadHost { task, host } => {
                write!(f, "task {task} mapped to nonexistent host {host}")
            }
            SimError::Cyclic => write!(f, "the task graph contains a cycle"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    pub trace: Trace,
    pub makespan: f64,
}

/// Communication-model options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// When set, each host's network interface serializes its transfers
    /// (a store-and-forward NIC); otherwise transfers are contention-free
    /// (the default, matching analytic schedulers like HEFT).
    pub link_contention: bool,
}

#[derive(Debug)]
enum Event {
    TaskDone(TaskId),
    /// Edge index whose transfer completed.
    TransferDone(usize),
}

/// Simulates with the default contention-free communication model.
pub fn simulate(dag: &Dag, platform: &Platform, mapping: &Mapping) -> Result<SimResult, SimError> {
    simulate_with(dag, platform, mapping, &SimOptions::default())
}

/// Simulates the execution of `dag` mapped onto `platform` by `mapping`.
///
/// The per-task execution time uses the speed of the slowest host in the
/// task's allocation (co-allocated moldable tasks progress at the pace of
/// their slowest member) and the task's speedup model at `p = |hosts|`.
pub fn simulate_with(
    dag: &Dag,
    platform: &Platform,
    mapping: &Mapping,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    let _s = jedule_core::obs::span("simx.simulate");
    let n = dag.task_count();
    jedule_core::obs::count("simx.tasks", n as u64);
    if mapping.hosts_per_task.len() != n {
        return Err(SimError::MappingSize {
            tasks: n,
            mapped: mapping.hosts_per_task.len(),
        });
    }
    for (t, hosts) in mapping.hosts_per_task.iter().enumerate() {
        if hosts.is_empty() {
            return Err(SimError::UnmappedTask(t));
        }
        for &h in hosts {
            if platform.host(h).is_none() {
                return Err(SimError::BadHost { task: t, host: h });
            }
        }
    }
    if !dag.is_acyclic() {
        return Err(SimError::Cyclic);
    }

    let preds = dag.pred_lists();
    let mut pending: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut host_free = vec![0.0f64; platform.total_hosts() as usize];
    // Per-host NIC availability, used only under link contention.
    let mut link_free = vec![0.0f64; platform.total_hosts() as usize];
    let mut finish = vec![0.0f64; n];
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut trace = Trace::default();

    // Start a ready task: claim its hosts and schedule completion.
    let start_task =
        |t: TaskId, queue: &mut EventQueue<Event>, host_free: &mut [f64], trace: &mut Trace| {
            let hosts = &mapping.hosts_per_task[t];
            let now = queue.now();
            let start = hosts
                .iter()
                .map(|&h| host_free[h as usize])
                .fold(now, f64::max);
            let speed = hosts
                .iter()
                .map(|&h| platform.speed_of(h).expect("validated host"))
                .fold(f64::INFINITY, f64::min);
            let dur = dag.tasks[t].exec_time(hosts.len() as u32, speed);
            for &h in hosts {
                host_free[h as usize] = start + dur;
            }
            trace.execs.push(ExecRecord {
                task: t,
                start,
                end: start + dur,
                hosts: hosts.clone(),
            });
            queue.push(start + dur, Event::TaskDone(t));
        };

    let initially_ready: Vec<TaskId> = (0..n).filter(|&t| pending[t] == 0).collect();
    for t in initially_ready {
        start_task(t, &mut queue, &mut host_free, &mut trace);
    }

    let mut makespan = 0.0f64;
    while let Some((now, ev)) = queue.pop() {
        match ev {
            Event::TaskDone(t) => {
                finish[t] = now;
                makespan = makespan.max(now);
                for (ei, e) in dag.edges.iter().enumerate() {
                    if e.from != t {
                        continue;
                    }
                    let from_hosts = &mapping.hosts_per_task[e.from];
                    let to_hosts = &mapping.hosts_per_task[e.to];
                    // No transfer when producer and consumer share a host.
                    let shared = from_hosts.iter().any(|h| to_hosts.contains(h));
                    let (dur, from_h, to_h) = if shared {
                        (0.0, from_hosts[0], from_hosts[0])
                    } else {
                        let a = from_hosts[0];
                        let b = to_hosts[0];
                        let route = platform.route(a, b).expect("validated hosts");
                        (route.transfer_time(e.data_bytes), a, b)
                    };
                    // Under link contention the two NICs must both be
                    // free before the transfer can start.
                    let start = if options.link_contention && dur > 0.0 {
                        now.max(link_free[from_h as usize])
                            .max(link_free[to_h as usize])
                    } else {
                        now
                    };
                    if options.link_contention && dur > 0.0 {
                        link_free[from_h as usize] = start + dur;
                        link_free[to_h as usize] = start + dur;
                    }
                    if dur > 0.0 {
                        trace.comms.push(CommRecord {
                            edge: ei,
                            from_task: e.from,
                            to_task: e.to,
                            start,
                            end: start + dur,
                            from_host: from_h,
                            to_host: to_h,
                        });
                    }
                    queue.push(start + dur, Event::TransferDone(ei));
                }
            }
            Event::TransferDone(ei) => {
                let to = dag.edges[ei].to;
                pending[to] -= 1;
                if pending[to] == 0 {
                    start_task(to, &mut queue, &mut host_free, &mut trace);
                }
            }
        }
    }

    // Transfers may end after the last task (dangling edges to nothing do
    // not exist, so makespan is the max task finish; comm records are all
    // consumed by construction).
    Ok(SimResult { trace, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_dag::{DagTask, SpeedupModel};
    use jedule_platform::{homogeneous, multi_homogeneous};

    fn chain3() -> Dag {
        let mut d = Dag::new("chain3");
        for i in 0..3 {
            d.add_task(DagTask::sequential(format!("t{i}"), "computation", 10.0));
        }
        d.add_edge(0, 1, 0.0);
        d.add_edge(1, 2, 0.0);
        d
    }

    #[test]
    fn chain_on_one_host_is_serial() {
        let dag = chain3();
        let p = homogeneous(4, 1.0);
        let m = Mapping::all_on_host_zero(3);
        let r = simulate(&dag, &p, &m).unwrap();
        assert_eq!(r.makespan, 30.0);
        assert_eq!(r.trace.execs.len(), 3);
        // Same host → no transfer records.
        assert!(r.trace.comms.is_empty());
        // Strictly sequential.
        assert_eq!(r.trace.execs[1].start, 10.0);
        assert_eq!(r.trace.execs[2].start, 20.0);
    }

    #[test]
    fn chain_across_hosts_pays_latency() {
        let dag = {
            let mut d = chain3();
            d.edges[0].data_bytes = 1.25e9; // 1 second at 1.25 GB/s
            d
        };
        let p = homogeneous(4, 1.0);
        let m = Mapping::new(vec![vec![0], vec![1], vec![1]]);
        let r = simulate(&dag, &p, &m).unwrap();
        // t0: [0,10]; transfer ≈ 1 + 2e-4; t1 starts after.
        assert!(r.makespan > 31.0);
        assert_eq!(r.trace.comms.len(), 1);
        let c = &r.trace.comms[0];
        assert_eq!((c.from_host, c.to_host), (0, 1));
        assert!((c.end - c.start - 1.0002).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut d = Dag::new("par");
        for i in 0..4 {
            d.add_task(DagTask::sequential(format!("t{i}"), "computation", 10.0));
        }
        let p = homogeneous(4, 1.0);
        let m = Mapping::new(vec![vec![0], vec![1], vec![2], vec![3]]);
        let r = simulate(&d, &p, &m).unwrap();
        assert_eq!(r.makespan, 10.0);
    }

    #[test]
    fn contended_host_serializes_fifo() {
        let mut d = Dag::new("contend");
        for i in 0..3 {
            d.add_task(DagTask::sequential(format!("t{i}"), "computation", 5.0));
        }
        let p = homogeneous(1, 1.0);
        let m = Mapping::all_on_host_zero(3);
        let r = simulate(&d, &p, &m).unwrap();
        assert_eq!(r.makespan, 15.0);
        let mut starts: Vec<f64> = r.trace.execs.iter().map(|e| e.start).collect();
        starts.sort_by(f64::total_cmp);
        assert_eq!(starts, vec![0.0, 5.0, 10.0]);
    }

    #[test]
    fn moldable_task_speeds_up() {
        let mut d = Dag::new("mold");
        let mut t = DagTask::new("m", "computation", 100.0);
        t.speedup = SpeedupModel::Power { beta: 1.0 };
        d.add_task(t);
        let p = homogeneous(4, 1.0);
        let serial = simulate(&d, &p, &Mapping::new(vec![vec![0]])).unwrap();
        let quad = simulate(&d, &p, &Mapping::new(vec![vec![0, 1, 2, 3]])).unwrap();
        assert_eq!(serial.makespan, 100.0);
        assert_eq!(quad.makespan, 25.0);
    }

    #[test]
    fn slowest_host_paces_coallocation() {
        // One task on a fast and a slow host: runs at the slow speed.
        let mut d = Dag::new("mixed");
        let mut t = DagTask::new("m", "computation", 10.0);
        t.speedup = SpeedupModel::Power { beta: 0.0 }; // no speedup
        d.add_task(t);
        let mut p = multi_homogeneous(2, 1, 1.0);
        p.clusters[1].speed_gflops = 2.0;
        let r = simulate(&d, &p, &Mapping::new(vec![vec![0, 1]])).unwrap();
        assert_eq!(r.makespan, 10.0); // paced by the 1 Gflop/s host
    }

    #[test]
    fn join_waits_for_slowest_branch() {
        let mut d = Dag::new("join");
        d.add_task(DagTask::sequential("a", "c", 2.0));
        d.add_task(DagTask::sequential("b", "c", 8.0));
        d.add_task(DagTask::sequential("j", "c", 1.0));
        d.add_edge(0, 2, 0.0);
        d.add_edge(1, 2, 0.0);
        let p = homogeneous(3, 1.0);
        let m = Mapping::new(vec![vec![0], vec![1], vec![2]]);
        let r = simulate(&d, &p, &m).unwrap();
        // Join starts at 8 (zero-byte edges still pay route latency? No:
        // distinct hosts, 0 bytes → latency only ≈ 2e-4).
        assert!((r.makespan - 9.0) < 0.01, "makespan {}", r.makespan);
        assert!(r.makespan >= 9.0);
    }

    #[test]
    fn validation_errors() {
        let dag = chain3();
        let p = homogeneous(2, 1.0);
        assert!(matches!(
            simulate(&dag, &p, &Mapping::new(vec![vec![0]; 2])),
            Err(SimError::MappingSize { .. })
        ));
        assert!(matches!(
            simulate(&dag, &p, &Mapping::new(vec![vec![0], vec![], vec![0]])),
            Err(SimError::UnmappedTask(1))
        ));
        assert!(matches!(
            simulate(&dag, &p, &Mapping::new(vec![vec![0], vec![9], vec![0]])),
            Err(SimError::BadHost { host: 9, .. })
        ));
        let mut cyc = chain3();
        cyc.add_edge(2, 0, 0.0);
        assert!(matches!(
            simulate(&cyc, &p, &Mapping::all_on_host_zero(3)),
            Err(SimError::Cyclic)
        ));
    }

    #[test]
    fn empty_dag_is_fine() {
        let d = Dag::new("empty");
        let p = homogeneous(1, 1.0);
        let r = simulate(&d, &p, &Mapping::new(vec![])).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert!(r.trace.execs.is_empty());
    }

    #[test]
    fn link_contention_serializes_fanout() {
        // One producer sends to 7 consumers on distinct hosts. Without
        // contention all transfers run concurrently; with contention the
        // producer's NIC serializes them.
        let mut d = Dag::new("fanout");
        d.add_task(DagTask::sequential("src", "c", 1.0));
        for i in 0..7 {
            d.add_task(DagTask::sequential(format!("k{i}"), "c", 1.0));
            d.add_edge(0, i + 1, 1.25e9); // 1 s per transfer
        }
        let p = homogeneous(8, 1.0);
        let m = Mapping::new((0..8).map(|h| vec![h as u32]).collect());
        let free = simulate(&d, &p, &m).unwrap();
        let contended = simulate_with(
            &d,
            &p,
            &m,
            &SimOptions {
                link_contention: true,
            },
        )
        .unwrap();
        // Free: 1 (src) + ~1 (parallel transfers) + 1 (sinks) ≈ 3.
        assert!(free.makespan < 3.1, "free {}", free.makespan);
        // Contended: last transfer starts after 6 earlier ones ≈ 9.
        assert!(contended.makespan > 8.5, "contended {}", contended.makespan);
        // Transfers never overlap on the producer's NIC.
        let mut comms = contended.trace.comms.clone();
        comms.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in comms.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-9);
        }
    }

    #[test]
    fn contention_never_helps() {
        let dag = jedule_dag::layered(&jedule_dag::GenParams {
            edge_bytes: 1e8,
            ..jedule_dag::GenParams::default()
        });
        let p = multi_homogeneous(2, 4, 1.0);
        let m = Mapping::new(
            (0..dag.task_count())
                .map(|t| vec![(t % 8) as u32])
                .collect(),
        );
        let free = simulate(&dag, &p, &m).unwrap();
        let contended = simulate_with(
            &dag,
            &p,
            &m,
            &SimOptions {
                link_contention: true,
            },
        )
        .unwrap();
        assert!(contended.makespan >= free.makespan - 1e-9);
    }

    #[test]
    fn determinism() {
        let dag = jedule_dag::layered(&jedule_dag::GenParams::default());
        let p = homogeneous(8, 1.0);
        let m = Mapping::new(
            (0..dag.task_count())
                .map(|t| vec![(t % 8) as u32])
                .collect(),
        );
        let a = simulate(&dag, &p, &m).unwrap();
        let b = simulate(&dag, &p, &m).unwrap();
        assert_eq!(a, b);
    }
}
