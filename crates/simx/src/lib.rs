//! # jedule-simx
//!
//! A discrete-event simulator standing in for SimGrid (paper, §III-B:
//! "the experiments were performed using a simulator, which was built on
//! top of SimGrid").
//!
//! Given a [`jedule_dag::Dag`], a [`jedule_platform::Platform`] and a
//! [`Mapping`] (which hosts run each task), the engine replays the
//! execution:
//!
//! * a task starts once **all** its input transfers have arrived *and*
//!   all its hosts are free;
//! * a transfer starts when its producer finishes and takes
//!   `route.latency + bytes / route.bandwidth` (zero when producer and
//!   consumer share a host);
//! * hosts are exclusive resources; readiness is served FIFO.
//!
//! The result is an exact event trace convertible to a Jedule
//! [`jedule_core::Schedule`] — computation tasks typed by their DAG task
//! kind and inter-host transfers typed `"transfer"`, spanning clusters
//! exactly as the paper's Fig. 1 describes.

pub mod engine;
pub mod events;
pub mod trace;

pub use engine::{simulate, simulate_with, Mapping, SimError, SimOptions, SimResult};
pub use events::EventQueue;
pub use trace::{schedule_from_trace, CommRecord, ExecRecord, Trace, TraceOptions};
