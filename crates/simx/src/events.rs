//! A deterministic event queue over `f64` simulation time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; ties broken by insertion order so the
        // simulation is fully deterministic.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A min-heap event queue with insertion-order tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`. Times before `now` are
    /// clamped to `now` (events cannot fire in the past).
    pub fn push(&mut self, time: f64, event: E) {
        let time = if time.is_nan() {
            self.now
        } else {
            time.max(self.now)
        };
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing `now`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn now_advances() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.push(5.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.push(5.0, "later");
        q.pop();
        q.push(1.0, "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 5.0);
        assert_eq!(e, "past");
    }

    #[test]
    fn nan_times_clamped() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, "x");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
