//! Simulation traces and their conversion to Jedule schedules.

use jedule_core::{Allocation, HostSet, Schedule, ScheduleBuilder, Task};
use jedule_dag::{Dag, TaskId};
use jedule_platform::Platform;

/// One task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRecord {
    pub task: TaskId,
    pub start: f64,
    pub end: f64,
    /// Global host indices.
    pub hosts: Vec<u32>,
}

/// One inter-host data transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct CommRecord {
    /// Index of the DAG edge.
    pub edge: usize,
    pub from_task: TaskId,
    pub to_task: TaskId,
    pub start: f64,
    pub end: f64,
    pub from_host: u32,
    pub to_host: u32,
}

/// A full simulation trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    pub execs: Vec<ExecRecord>,
    pub comms: Vec<CommRecord>,
}

/// Conversion options.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Include transfer tasks in the schedule (they overlap computation,
    /// producing the composite regions of Fig. 3).
    pub include_transfers: bool,
    /// Type name given to transfer tasks.
    pub transfer_kind: String,
    /// Label computation tasks with the DAG task name (vs numeric id).
    pub use_task_names: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            include_transfers: true,
            transfer_kind: "transfer".into(),
            use_task_names: true,
        }
    }
}

/// Converts a trace into a Jedule schedule over `platform`'s clusters.
pub fn schedule_from_trace(
    trace: &Trace,
    dag: &Dag,
    platform: &Platform,
    opts: &TraceOptions,
) -> Schedule {
    let mut b = ScheduleBuilder::new();
    for c in &platform.clusters {
        b = b.cluster(c.id, c.name.clone(), c.hosts);
    }
    b = b.meta("platform", platform.name.clone());
    b = b.meta("dag", dag.name.clone());

    for e in &trace.execs {
        let dag_task = &dag.tasks[e.task];
        let id = if opts.use_task_names {
            dag_task.name.clone()
        } else {
            e.task.to_string()
        };
        let mut task = Task::new(id, dag_task.kind.clone(), e.start, e.end);
        task = task.with_attr("work_gflop", format!("{}", dag_task.work_gflop));
        // Group global hosts by cluster into allocations.
        let mut per_cluster: Vec<(u32, Vec<u32>)> = Vec::new();
        for &g in &e.hosts {
            let h = platform.host(g).expect("host in platform");
            match per_cluster.iter_mut().find(|(c, _)| *c == h.cluster) {
                Some((_, v)) => v.push(h.host),
                None => per_cluster.push((h.cluster, vec![h.host])),
            }
        }
        for (cluster, hosts) in per_cluster {
            task.allocations
                .push(Allocation::new(cluster, HostSet::from_hosts(hosts)));
        }
        b = b.task(task);
    }

    if opts.include_transfers {
        for c in &trace.comms {
            let from = platform.host(c.from_host).expect("host in platform");
            let to = platform.host(c.to_host).expect("host in platform");
            let id = format!(
                "{}->{}",
                dag.tasks[c.from_task].name, dag.tasks[c.to_task].name
            );
            let mut task = Task::new(id, opts.transfer_kind.clone(), c.start, c.end);
            task.allocations.push(Allocation::new(
                from.cluster,
                HostSet::contiguous(from.host, 1),
            ));
            if (to.cluster, to.host) != (from.cluster, from.host) {
                if to.cluster == from.cluster {
                    task.allocations[0]
                        .hosts
                        .insert_range(jedule_core::HostRange::new(to.host, 1));
                } else {
                    // A transfer between clusters spans both — the very
                    // case the Fig. 1 multi-configuration format exists
                    // for.
                    task.allocations
                        .push(Allocation::new(to.cluster, HostSet::contiguous(to.host, 1)));
                }
            }
            b = b.task(task);
        }
    }

    b.build_unchecked()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, Mapping};
    use jedule_core::validate;
    use jedule_dag::DagTask;
    use jedule_platform::multi_homogeneous;

    fn cross_cluster_setup() -> (Dag, Platform, Mapping) {
        let mut d = Dag::new("x");
        d.add_task(DagTask::sequential("a", "computation", 10.0));
        d.add_task(DagTask::sequential("b", "computation", 10.0));
        d.add_edge(0, 1, 1.25e9);
        let p = multi_homogeneous(2, 2, 1.0);
        let m = Mapping::new(vec![vec![0], vec![2]]); // different clusters
        (d, p, m)
    }

    #[test]
    fn schedule_is_valid_and_complete() {
        let (d, p, m) = cross_cluster_setup();
        let r = simulate(&d, &p, &m).unwrap();
        let s = schedule_from_trace(&r.trace, &d, &p, &TraceOptions::default());
        assert!(validate(&s).is_empty(), "{:?}", validate(&s));
        assert_eq!(s.clusters.len(), 2);
        // 2 computations + 1 transfer.
        assert_eq!(s.tasks.len(), 3);
        assert_eq!(s.meta.get("dag"), Some("x"));
    }

    #[test]
    fn transfer_spans_clusters() {
        let (d, p, m) = cross_cluster_setup();
        let r = simulate(&d, &p, &m).unwrap();
        let s = schedule_from_trace(&r.trace, &d, &p, &TraceOptions::default());
        let tr = s.tasks.iter().find(|t| t.kind == "transfer").unwrap();
        assert_eq!(tr.allocations.len(), 2);
        assert_eq!(tr.id, "a->b");
        let clusters: Vec<u32> = tr.allocations.iter().map(|a| a.cluster).collect();
        assert_eq!(clusters, vec![0, 1]);
    }

    #[test]
    fn transfers_can_be_excluded() {
        let (d, p, m) = cross_cluster_setup();
        let r = simulate(&d, &p, &m).unwrap();
        let opts = TraceOptions {
            include_transfers: false,
            ..TraceOptions::default()
        };
        let s = schedule_from_trace(&r.trace, &d, &p, &opts);
        assert_eq!(s.tasks.len(), 2);
    }

    #[test]
    fn numeric_ids_option() {
        let (d, p, m) = cross_cluster_setup();
        let r = simulate(&d, &p, &m).unwrap();
        let opts = TraceOptions {
            use_task_names: false,
            ..TraceOptions::default()
        };
        let s = schedule_from_trace(&r.trace, &d, &p, &opts);
        assert!(s.task_by_id("0").is_some());
        assert!(s.task_by_id("1").is_some());
    }

    #[test]
    fn multi_host_task_grouped_per_cluster() {
        let mut d = Dag::new("wide");
        d.add_task(DagTask::new("m", "computation", 10.0));
        let p = multi_homogeneous(2, 2, 1.0);
        // Hosts 1 (cluster 0) and 2, 3 (cluster 1).
        let m = Mapping::new(vec![vec![1, 2, 3]]);
        let r = simulate(&d, &p, &m).unwrap();
        let s = schedule_from_trace(&r.trace, &d, &p, &TraceOptions::default());
        let t = &s.tasks[0];
        assert_eq!(t.allocations.len(), 2);
        assert_eq!(t.resource_count(), 3);
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn makespan_matches_schedule() {
        let (d, p, m) = cross_cluster_setup();
        let r = simulate(&d, &p, &m).unwrap();
        let s = schedule_from_trace(
            &r.trace,
            &d,
            &p,
            &TraceOptions {
                include_transfers: false,
                ..Default::default()
            },
        );
        assert!((s.makespan() - r.makespan).abs() < 1e-9);
    }
}
