//! Deterministic virtual-time execution of a Quicksort task tree with a
//! NUMA cost model.
//!
//! The paper's Figs. 11 and 12 were measured on an SGI Altix 4700 with 32
//! dual-core Itanium2 processors — hardware we substitute with a model
//! (see DESIGN.md): workers advance in virtual time, a central pool hands
//! out ready tasks FIFO, and a task's execution cost is
//!
//! ```text
//! cost = (len · elem_cost + swaps · swap_cost) · numa_penalty
//! ```
//!
//! where `numa_penalty > 1` when the worker's NUMA domain differs from
//! the array segment's home domain — "even two tasks with equal-sized
//! arrays may take a different time to execute and therefore create new
//! load imbalance" (§VI-B).

use crate::quicksort::QsTree;
use crate::trace::{SpanKind, TraceSpan};

/// The NUMA topology model.
#[derive(Debug, Clone)]
pub struct NumaModel {
    /// Number of NUMA domains (Altix 4700 blades).
    pub domains: u32,
    /// Cost multiplier for accessing a segment homed in another domain.
    pub remote_penalty: f64,
}

impl NumaModel {
    /// A uniform machine (no NUMA effects).
    pub fn uniform() -> Self {
        NumaModel {
            domains: 1,
            remote_penalty: 1.0,
        }
    }

    /// An Altix-4700-like model: 16 blades, remote accesses ~1.8× slower.
    pub fn altix() -> Self {
        NumaModel {
            domains: 16,
            remote_penalty: 1.8,
        }
    }

    /// Domain of a worker when `workers` workers are spread round-robin
    /// over the domains.
    pub fn worker_domain(&self, worker: u32, workers: u32) -> u32 {
        if self.domains <= 1 {
            return 0;
        }
        worker * self.domains / workers.max(1)
    }

    /// Home domain of an array segment (first-touch, pages spread evenly
    /// over the domains).
    pub fn segment_domain(&self, offset: usize, input_len: usize) -> u32 {
        if self.domains <= 1 || input_len == 0 {
            return 0;
        }
        ((offset as u64 * u64::from(self.domains)) / input_len as u64) as u32
    }
}

/// How the virtual pool hands out tasks — the "central or distributed
/// data structures … hidden behind the task pool interface" of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// One shared FIFO; the earliest-free worker takes the head.
    #[default]
    CentralFifo,
    /// Per-worker deques: spawned children go to the spawner's deque
    /// (popped LIFO by the owner); idle workers steal the oldest task of
    /// the longest victim deque.
    WorkStealing,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimParams {
    pub workers: u32,
    /// Seconds per element scanned.
    pub elem_cost: f64,
    /// Seconds per swap performed (memory traffic).
    pub swap_cost: f64,
    /// Fixed `get()` overhead per task.
    pub get_cost: f64,
    pub numa: NumaModel,
    pub policy: PoolPolicy,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            workers: 32,
            elem_cost: 4e-9,
            swap_cost: 16e-9,
            get_cost: 2e-7,
            numa: NumaModel::uniform(),
            policy: PoolPolicy::CentralFifo,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    pub spans: Vec<TraceSpan>,
    pub makespan: f64,
    /// Total busy (exec) time over all workers.
    pub busy_time: f64,
    /// Fraction of `makespan · workers` spent executing.
    pub utilization: f64,
    /// Time during which exactly one worker was executing.
    pub single_worker_time: f64,
}

impl SimReport {
    /// Fraction of the makespan during which only one worker was busy —
    /// the Fig. 12 headline ("only one processor is busy in almost half
    /// the total execution time").
    pub fn single_worker_fraction(&self) -> f64 {
        if self.makespan > 0.0 {
            self.single_worker_time / self.makespan
        } else {
            0.0
        }
    }
}

/// Executes a Quicksort task tree in virtual time under
/// `params.policy`.
///
/// A task becomes ready when its parent finishes (children enqueued left
/// child first); see [`PoolPolicy`] for who runs it next.
pub fn simulate_tree(tree: &QsTree, params: &SimParams) -> SimReport {
    let _s = jedule_core::obs::span("taskpool.simulate");
    match params.policy {
        PoolPolicy::CentralFifo => simulate_central(tree, params),
        PoolPolicy::WorkStealing => simulate_stealing(tree, params),
    }
}

/// Cost of one task on one worker under the NUMA model.
fn task_cost(
    tree: &QsTree,
    params: &SimParams,
    node_id: usize,
    worker: usize,
    workers: u32,
) -> f64 {
    let node = &tree.nodes[node_id];
    let penalty = if params.numa.worker_domain(worker as u32, workers)
        == params.numa.segment_domain(node.offset, tree.input_len)
    {
        1.0
    } else {
        params.numa.remote_penalty
    };
    (node.len as f64 * params.elem_cost + node.swaps as f64 * params.swap_cost) * penalty
}

/// Builds the report (utilization, single-worker sweep) from raw spans.
fn build_report(spans: Vec<TraceSpan>, workers: u32) -> SimReport {
    let makespan = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    let busy_time: f64 = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Exec)
        .map(|s| s.end - s.start)
        .sum();
    let utilization = if makespan > 0.0 {
        busy_time / (makespan * f64::from(workers))
    } else {
        0.0
    };
    let mut events: Vec<(f64, i32)> = Vec::new();
    for s in spans.iter().filter(|s| s.kind == SpanKind::Exec) {
        events.push((s.start, 1));
        events.push((s.end, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut active = 0i32;
    let mut prev = 0.0f64;
    let mut single = 0.0f64;
    for (t, d) in events {
        if active == 1 {
            single += t - prev;
        }
        active += d;
        prev = t;
    }
    SimReport {
        spans,
        makespan,
        busy_time,
        utilization,
        single_worker_time: single,
    }
}

/// Central FIFO policy.
fn simulate_central(tree: &QsTree, params: &SimParams) -> SimReport {
    let workers = params.workers.max(1);
    let n = tree.nodes.len();

    // Worker availability.
    let mut free_at = vec![0.0f64; workers as usize];
    // FIFO ready queue of (ready time, node id).
    let mut queue: std::collections::VecDeque<(f64, usize)> = std::collections::VecDeque::new();
    if n > 0 {
        queue.push_back((0.0, 0));
    }
    let mut spans: Vec<TraceSpan> = Vec::with_capacity(n);
    let mut last_end = vec![0.0f64; workers as usize];

    while let Some((ready, node_id)) = queue.pop_front() {
        // Earliest-available worker (ties → lowest index).
        let w = (0..workers as usize)
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]).then(a.cmp(&b)))
            .expect("at least one worker");
        let start = free_at[w].max(ready) + params.get_cost;
        let node = &tree.nodes[node_id];
        let end = start + task_cost(tree, params, node_id, w, workers);

        // Wait span between this worker's previous activity and now.
        if start > last_end[w] + 1e-15 {
            spans.push(TraceSpan {
                worker: w as u32,
                kind: SpanKind::Wait,
                task_id: String::new(),
                start: last_end[w],
                end: start,
            });
        }
        spans.push(TraceSpan {
            worker: w as u32,
            kind: SpanKind::Exec,
            task_id: format!("t{node_id}"),
            start,
            end,
        });
        free_at[w] = end;
        last_end[w] = end;

        for &c in &node.children {
            queue.push_back((end, c));
        }
        // Keep the queue sorted by readiness so FIFO per ready-time holds
        // (children are pushed in completion order; completions are
        // nondecreasing only per worker, so restore global order).
        let mut v: Vec<(f64, usize)> = queue.drain(..).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        queue.extend(v);
    }

    build_report(spans, workers)
}

/// Work-stealing policy: per-worker LIFO deques, steal-oldest from the
/// longest victim when idle. Fully deterministic.
fn simulate_stealing(tree: &QsTree, params: &SimParams) -> SimReport {
    use std::collections::VecDeque;
    let workers = params.workers.max(1) as usize;
    let n = tree.nodes.len();
    let mut spans: Vec<TraceSpan> = Vec::with_capacity(n * 2);
    if n == 0 {
        return build_report(spans, workers as u32);
    }

    let mut local: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
    // (completion time, seq, worker, node) events for running tasks.
    let mut running: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize, usize)>> =
        std::collections::BinaryHeap::new();
    let mut seq = 0u64;
    // Idle workers and the time they went idle.
    let mut idle_since = vec![Some(0.0f64); workers];

    // Start a node on a worker at `now`; records wait span if needed.
    macro_rules! start {
        ($w:expr, $node:expr, $now:expr) => {{
            let w = $w;
            let node = $node;
            let now: f64 = $now;
            if let Some(since) = idle_since[w] {
                if now > since + 1e-15 {
                    spans.push(TraceSpan {
                        worker: w as u32,
                        kind: SpanKind::Wait,
                        task_id: String::new(),
                        start: since,
                        end: now,
                    });
                }
                idle_since[w] = None;
            }
            let start = now + params.get_cost;
            let end = start + task_cost(tree, params, node, w, workers as u32);
            spans.push(TraceSpan {
                worker: w as u32,
                kind: SpanKind::Exec,
                task_id: format!("t{node}"),
                start,
                end,
            });
            running.push(std::cmp::Reverse((end.to_bits(), seq, w, node)));
            seq += 1;
        }};
    }

    start!(0, 0, 0.0);

    while let Some(std::cmp::Reverse((end_bits, _, w, node))) = running.pop() {
        let now = f64::from_bits(end_bits);
        // Spawn children into the finishing worker's deque (left first,
        // so LIFO pops the right child — depth-first, like Cilk).
        for &c in &tree.nodes[node].children {
            local[w].push_back(c);
        }
        // The finishing worker continues with its newest local task.
        match local[w].pop_back() {
            Some(next) => start!(w, next, now),
            None => {
                // Try to steal the oldest task of the longest deque.
                match steal_victim(&local, w) {
                    Some(v) => {
                        let stolen = local[v].pop_front().expect("victim non-empty");
                        start!(w, stolen, now);
                    }
                    None => idle_since[w] = Some(now),
                }
            }
        }
        // Wake idle workers while work is available.
        while local.iter().any(|q| !q.is_empty()) {
            let Some(wi) = idle_since.iter().position(|s| s.is_some()) else {
                break;
            };
            let v = steal_victim(&local, wi).expect("checked non-empty");
            let stolen = local[v].pop_front().expect("victim non-empty");
            start!(wi, stolen, now);
        }
    }

    build_report(spans, workers as u32)
}

/// Deterministic victim selection: the longest deque, ties to the lowest
/// worker index; `None` when all deques are empty. `thief`'s own deque is
/// eligible (it is empty when this is called from the thief itself).
fn steal_victim(local: &[std::collections::VecDeque<usize>], thief: usize) -> Option<usize> {
    local
        .iter()
        .enumerate()
        .filter(|(i, q)| *i != thief && !q.is_empty())
        .max_by(|(ai, aq), (bi, bq)| aq.len().cmp(&bq.len()).then(bi.cmp(ai)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quicksort::{build_qs_tree, inverse_input, random_input, PivotStrategy};

    fn sim(tree: &QsTree, workers: u32, numa: NumaModel) -> SimReport {
        simulate_tree(
            tree,
            &SimParams {
                workers,
                numa,
                ..SimParams::default()
            },
        )
    }

    #[test]
    fn deterministic() {
        let data = random_input(1 << 14, 11);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 256);
        let a = sim(&tree, 8, NumaModel::uniform());
        let b = sim(&tree, 8, NumaModel::uniform());
        assert_eq!(a, b);
    }

    #[test]
    fn more_workers_never_slower() {
        let data = random_input(1 << 15, 12);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 256);
        let m1 = sim(&tree, 1, NumaModel::uniform()).makespan;
        let m8 = sim(&tree, 8, NumaModel::uniform()).makespan;
        let m32 = sim(&tree, 32, NumaModel::uniform()).makespan;
        assert!(m8 < m1);
        assert!(m32 <= m8 + 1e-12);
    }

    #[test]
    fn fig11_ramp_up_limits_utilization() {
        // "due to the initial limited parallelism a linear speedup cannot
        // be achieved."
        let data = random_input(1 << 16, 13);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::First, 1 << 10);
        let r = sim(&tree, 32, NumaModel::uniform());
        assert!(r.utilization < 0.9, "utilization {}", r.utilization);
        assert!(r.utilization > 0.05);
        // There are real waiting periods.
        assert!(r.spans.iter().any(|s| s.kind == SpanKind::Wait));
    }

    #[test]
    fn fig12_single_worker_dominates_half() {
        // Inverse input + middle pivot: "only one processor is busy in
        // almost half the total execution time".
        let data = inverse_input(1 << 16);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 1 << 10);
        let r = sim(&tree, 32, NumaModel::uniform());
        let f = r.single_worker_fraction();
        assert!(
            (0.25..0.75).contains(&f),
            "single-worker fraction {f} should be near one half"
        );
    }

    #[test]
    fn inverse_root_costs_more_than_random_root() {
        // "Since the processor has to swap every pair of numbers, it
        // takes much longer than for the random input case."
        let n = 1 << 16;
        let (ti, _) = build_qs_tree(&inverse_input(n), PivotStrategy::Middle, 1 << 10);
        let (tr, _) = build_qs_tree(&random_input(n, 14), PivotStrategy::Middle, 1 << 10);
        let p = SimParams::default();
        let cost = |t: &QsTree| {
            t.nodes[0].len as f64 * p.elem_cost + t.nodes[0].swaps as f64 * p.swap_cost
        };
        assert!(
            cost(&ti) > cost(&tr) * 1.5,
            "inverse {} vs random {}",
            cost(&ti),
            cost(&tr)
        );
    }

    #[test]
    fn numa_penalty_creates_imbalance() {
        // "even two tasks with equal-sized arrays may take a different
        // time to execute".
        let data = inverse_input(1 << 15);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 1 << 9);
        let uniform = sim(&tree, 32, NumaModel::uniform());
        let numa = sim(&tree, 32, NumaModel::altix());
        assert!(numa.makespan > uniform.makespan);
        // Equal-sized sibling tasks run for different durations under
        // NUMA: compare exec spans of the root's two children.
        let kids = &tree.nodes[0].children;
        assert_eq!(kids.len(), 2);
        let d = |r: &SimReport, id: usize| {
            let tid = format!("t{id}");
            r.spans
                .iter()
                .find(|s| s.task_id == tid)
                .map(|s| s.end - s.start)
                .unwrap()
        };
        let (a, b) = (d(&numa, kids[0]), d(&numa, kids[1]));
        let sizes_equal =
            (tree.nodes[kids[0]].len as f64 / tree.nodes[kids[1]].len as f64 - 1.0).abs() < 0.05;
        assert!(sizes_equal);
        // Cost may or may not differ depending on which worker picked
        // which half; makespan inflation is the robust signal. Check the
        // per-span penalty machinery directly too:
        let m = NumaModel::altix();
        assert_ne!(
            m.segment_domain(0, 1 << 15),
            m.segment_domain((1 << 15) - 1, 1 << 15)
        );
        let _ = (a, b);
    }

    #[test]
    fn worker_spans_never_overlap() {
        let data = random_input(1 << 14, 15);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::First, 256);
        let r = sim(&tree, 4, NumaModel::altix());
        for w in 0..4u32 {
            let mut mine: Vec<&TraceSpan> = r.spans.iter().filter(|s| s.worker == w).collect();
            mine.sort_by(|a, b| a.start.total_cmp(&b.start));
            for pair in mine.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-12);
            }
        }
    }

    #[test]
    fn busy_time_equals_sum_of_exec() {
        let data = random_input(1 << 12, 16);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 128);
        let r = sim(&tree, 4, NumaModel::uniform());
        let sum: f64 = r
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Exec)
            .map(|s| s.end - s.start)
            .sum();
        assert!((sum - r.busy_time).abs() < 1e-12);
        assert!(r.utilization <= 1.0);
    }

    #[test]
    fn empty_tree() {
        let tree = QsTree {
            nodes: vec![],
            threshold: 2,
            input_len: 0,
        };
        let r = simulate_tree(&tree, &SimParams::default());
        assert_eq!(r.makespan, 0.0);
        assert!(r.spans.is_empty());
    }

    #[test]
    fn stealing_policy_is_deterministic_and_sound() {
        let data = random_input(1 << 14, 21);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 256);
        let params = SimParams {
            workers: 8,
            policy: PoolPolicy::WorkStealing,
            ..SimParams::default()
        };
        let a = simulate_tree(&tree, &params);
        let b = simulate_tree(&tree, &params);
        assert_eq!(a, b);
        // Every task executed exactly once.
        let execs = a.spans.iter().filter(|s| s.kind == SpanKind::Exec).count();
        assert_eq!(execs, tree.nodes.len());
        // Per-worker spans never overlap.
        for w in 0..8u32 {
            let mut mine: Vec<&TraceSpan> = a.spans.iter().filter(|s| s.worker == w).collect();
            mine.sort_by(|x, y| x.start.total_cmp(&y.start));
            for pair in mine.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-12);
            }
        }
    }

    #[test]
    fn stealing_respects_parent_before_child() {
        let data = random_input(1 << 12, 22);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 64);
        let r = simulate_tree(
            &tree,
            &SimParams {
                workers: 4,
                policy: PoolPolicy::WorkStealing,
                ..SimParams::default()
            },
        );
        let start_of = |id: usize| {
            let tid = format!("t{id}");
            r.spans
                .iter()
                .find(|s| s.task_id == tid)
                .map(|s| s.start)
                .unwrap()
        };
        let end_of = |id: usize| {
            let tid = format!("t{id}");
            r.spans
                .iter()
                .find(|s| s.task_id == tid)
                .map(|s| s.end)
                .unwrap()
        };
        for node in &tree.nodes {
            for &c in &node.children {
                assert!(
                    start_of(c) + 1e-12 >= end_of(node.id),
                    "child {c} started before parent {} finished",
                    node.id
                );
            }
        }
    }

    #[test]
    fn stealing_beats_central_on_deep_trees() {
        // With a central FIFO the queue order is breadth-first-ish and
        // every get serializes through one queue; LIFO-local stealing
        // descends depth-first and spreads work at least as well. The
        // ablation the §VI pool design implies:
        let data = random_input(1 << 16, 23);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 256);
        let base = SimParams {
            workers: 16,
            ..SimParams::default()
        };
        let central = simulate_tree(&tree, &base);
        let stealing = simulate_tree(
            &tree,
            &SimParams {
                policy: PoolPolicy::WorkStealing,
                ..base
            },
        );
        assert!(
            stealing.makespan <= central.makespan * 1.05,
            "stealing {} vs central {}",
            stealing.makespan,
            central.makespan
        );
        assert!(stealing.utilization > 0.0);
    }

    #[test]
    fn stealing_single_worker_matches_serial() {
        let data = random_input(1 << 12, 24);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 128);
        let p1 = SimParams {
            workers: 1,
            policy: PoolPolicy::WorkStealing,
            ..SimParams::default()
        };
        let r = simulate_tree(&tree, &p1);
        // One worker executes everything back to back: busy + get costs.
        let expected: f64 = (0..tree.nodes.len())
            .map(|i| task_cost(&tree, &p1, i, 0, 1))
            .sum::<f64>()
            + tree.nodes.len() as f64 * p1.get_cost;
        assert!((r.makespan - expected).abs() < 1e-9);
        assert!((r.utilization - r.busy_time / r.makespan).abs() < 1e-12);
    }

    #[test]
    fn domain_mapping_sane() {
        let m = NumaModel::altix();
        assert_eq!(m.worker_domain(0, 32), 0);
        assert_eq!(m.worker_domain(31, 32), 15);
        assert_eq!(m.segment_domain(0, 1000), 0);
        assert_eq!(m.segment_domain(999, 1000), 15);
        let u = NumaModel::uniform();
        assert_eq!(u.worker_domain(5, 8), 0);
        assert_eq!(u.segment_domain(500, 1000), 0);
    }
}
