//! # jedule-taskpool
//!
//! The task-pool runtime of the paper's §VI case study ("load balancing
//! on NUMA architectures").
//!
//! A task pool "stores executable tasks in a virtually shared data
//! structure accessible by all processors"; workers loop
//! `get() → execute() → free()` while executed tasks may create new
//! tasks (paper, Fig. 10). The runtime "is able to log run-time
//! information about each task for offline analysis in Jedule": per
//! worker, the time spent executing tasks and the time spent getting or
//! waiting for tasks.
//!
//! Three pieces:
//!
//! * [`pool`] — real multi-threaded pools (central queue and
//!   crossbeam-deque work stealing) with wall-clock trace logging,
//! * [`quicksort`] — the paper's workload: task-parallel Quicksort whose
//!   recursion tree depends on the pivot strategy and input,
//! * [`sim`] — a deterministic virtual-time executor over the same
//!   recursion tree, with a NUMA memory-penalty model; this reproduces
//!   Figs. 11 and 12 exactly and independently of the machine the tests
//!   run on.
//!
//! [`trace`] converts either execution's log into a Jedule schedule
//! (execution time blue, waiting time red — exactly the §VI color coding).

pub mod pool;
pub mod quicksort;
pub mod sim;
pub mod trace;

pub use pool::{run_pool, PoolKind};
pub use quicksort::{build_qs_tree, PivotStrategy, QsNode, QsTree};
pub use sim::{simulate_tree, NumaModel, PoolPolicy, SimParams, SimReport};
pub use trace::{trace_to_schedule, TraceLog, TraceSpan};
