//! Real multi-threaded task pools with trace logging.
//!
//! Implements the execution scheme of the paper's Fig. 10:
//!
//! ```text
//! // initialization (master thread)
//! for (each initial work unit U)
//!     TaskPool.create_initial_task(U.Function, U.Argument);
//! // working phase
//! parallel for (each thread 1...p)
//!     forever() {
//!         Task T = TaskPool.get();
//!         if (T == ∅) exit;
//!         T.execute();   // may create new tasks
//!         T.free();
//!     }
//! ```
//!
//! Two pool organizations are provided — a *central* shared queue and a
//! crossbeam-deque *work-stealing* pool ("the actual storing may use
//! central or distributed data structures … hidden behind the task pool
//! interface"). Both log, per worker, the time spent in `execute()` and
//! the time spent in `get()`/waiting, producing the §VI trace.

use crate::trace::{SpanKind, TraceLog, TraceSpan};
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Context handed to every executing task; `spawn` creates new tasks
/// ("may create new tasks").
pub struct Ctx<'a> {
    pool: &'a dyn AnyPool,
    pub worker: u32,
}

impl Ctx<'_> {
    pub fn spawn(&self, job: Job) {
        self.pool.push(job);
    }
}

/// A unit of work.
pub struct Job {
    /// Identifier recorded in the trace.
    pub id: String,
    pub run: Box<dyn FnOnce(&Ctx) + Send>,
}

impl Job {
    pub fn new(id: impl Into<String>, run: impl FnOnce(&Ctx) + Send + 'static) -> Self {
        Job {
            id: id.into(),
            run: Box::new(run),
        }
    }
}

/// Which pool organization to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// One shared FIFO protected by a lock.
    Central,
    /// Per-worker deques with stealing (crossbeam).
    WorkStealing,
}

trait AnyPool: Sync {
    fn push(&self, job: Job);
    fn pop(&self, worker: usize) -> Option<Job>;
}

struct CentralPool {
    queue: Mutex<VecDeque<Job>>,
}

impl AnyPool for CentralPool {
    fn push(&self, job: Job) {
        self.queue.lock().push_back(job);
    }

    fn pop(&self, _worker: usize) -> Option<Job> {
        self.queue.lock().pop_front()
    }
}

struct StealingPool {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    locals: Vec<Mutex<Deque<Job>>>,
}

impl AnyPool for StealingPool {
    fn push(&self, job: Job) {
        // Tasks spawned by workers go to the global injector; locals are
        // only popped by their owner. (A production pool would push to
        // the current worker's deque; the injector keeps `push` callable
        // from any thread, which the Fig. 10 master-initialization needs.)
        self.injector.push(job);
    }

    fn pop(&self, worker: usize) -> Option<Job> {
        if let Some(j) = self.locals[worker].lock().pop() {
            return Some(j);
        }
        loop {
            match self
                .injector
                .steal_batch_and_pop(&*self.locals[worker].lock())
            {
                crossbeam::deque::Steal::Success(j) => return Some(j),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        for (i, s) in self.stealers.iter().enumerate() {
            if i == worker {
                continue;
            }
            loop {
                match s.steal() {
                    crossbeam::deque::Steal::Success(j) => return Some(j),
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        None
    }
}

/// Runs `initial` jobs on `workers` threads with the chosen pool kind.
/// Returns the trace spans (exec and wait intervals per worker, in
/// seconds relative to the start of the working phase).
pub fn run_pool(kind: PoolKind, workers: u32, initial: Vec<Job>) -> Vec<TraceSpan> {
    let _s = jedule_core::obs::span_with("taskpool.run", || format!("{kind:?}"));
    jedule_core::obs::count("taskpool.jobs", initial.len() as u64);
    let workers = workers.max(1);
    let pool: Arc<dyn AnyPool + Send + Sync> = match kind {
        PoolKind::Central => Arc::new(CentralPool {
            queue: Mutex::new(VecDeque::new()),
        }),
        PoolKind::WorkStealing => {
            let locals: Vec<Deque<Job>> = (0..workers).map(|_| Deque::new_fifo()).collect();
            let stealers = locals.iter().map(Deque::stealer).collect();
            Arc::new(StealingPool {
                injector: Injector::new(),
                stealers,
                locals: locals.into_iter().map(Mutex::new).collect(),
            })
        }
    };

    // Termination: count of tasks created but not yet finished. A worker
    // exits when the count hits zero (no task can create more).
    let outstanding = Arc::new(AtomicUsize::new(initial.len()));
    for j in initial {
        pool.push(j);
    }

    let log = Arc::new(TraceLog::new());
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let pool = Arc::clone(&pool);
            let outstanding = Arc::clone(&outstanding);
            let log = Arc::clone(&log);
            scope.spawn(move || {
                let mut wait_started = t0.elapsed().as_secs_f64();
                loop {
                    if outstanding.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    let Some(job) = pool.pop(w as usize) else {
                        std::hint::spin_loop();
                        continue;
                    };
                    let start = t0.elapsed().as_secs_f64();
                    if start > wait_started {
                        log.record(TraceSpan {
                            worker: w,
                            kind: SpanKind::Wait,
                            task_id: String::new(),
                            start: wait_started,
                            end: start,
                        });
                    }
                    let counted = CountGuard(&outstanding);
                    let ctx = Ctx {
                        pool: &*pool,
                        worker: w,
                    };
                    // Spawns must be counted before the task finishes, so
                    // wrap the context push.
                    struct CountingCtx<'a> {
                        inner: &'a dyn AnyPool,
                        outstanding: &'a AtomicUsize,
                    }
                    impl AnyPool for CountingCtx<'_> {
                        fn push(&self, job: Job) {
                            self.outstanding.fetch_add(1, Ordering::AcqRel);
                            self.inner.push(job);
                        }
                        fn pop(&self, w: usize) -> Option<Job> {
                            self.inner.pop(w)
                        }
                    }
                    let counting = CountingCtx {
                        inner: ctx.pool,
                        outstanding: &outstanding,
                    };
                    let ctx = Ctx {
                        pool: &counting,
                        worker: w,
                    };
                    (job.run)(&ctx);
                    drop(counted);
                    let end = t0.elapsed().as_secs_f64();
                    log.record(TraceSpan {
                        worker: w,
                        kind: SpanKind::Exec,
                        task_id: job.id,
                        start,
                        end,
                    });
                    wait_started = end;
                }
            });
        }
    });

    Arc::try_unwrap(log)
        .expect("all workers joined")
        .into_spans()
}

/// Decrements the outstanding-task counter on drop (after the task body
/// ran and its spawns were counted).
struct CountGuard<'a>(&'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Convenience: runs the task-parallel Quicksort of §VI on a real pool
/// over shared atomic storage and returns (trace, sorted check).
pub fn run_quicksort(
    kind: PoolKind,
    workers: u32,
    data: Vec<i64>,
    threshold: usize,
) -> (Vec<TraceSpan>, Vec<i64>) {
    use std::sync::atomic::AtomicI64;
    let shared: Arc<Vec<AtomicI64>> = Arc::new(data.into_iter().map(AtomicI64::new).collect());
    let threshold = threshold.max(2);

    fn sort_task(shared: Arc<Vec<AtomicI64>>, off: usize, len: usize, threshold: usize, ctx: &Ctx) {
        // Snapshot the segment (segments of concurrent tasks are
        // disjoint, so relaxed ordering is fine).
        let mut seg: Vec<i64> = (0..len)
            .map(|i| shared[off + i].load(Ordering::Relaxed))
            .collect();
        if len <= threshold {
            seg.sort_unstable();
            for (i, v) in seg.iter().enumerate() {
                shared[off + i].store(*v, Ordering::Relaxed);
            }
            return;
        }
        let pivot = seg[len / 2];
        let mut less: Vec<i64> = Vec::with_capacity(len / 2);
        let mut geq: Vec<i64> = Vec::with_capacity(len / 2);
        for &v in &seg {
            if v < pivot {
                less.push(v);
            } else {
                geq.push(v);
            }
        }
        if less.is_empty() || geq.is_empty() {
            seg.sort_unstable();
            for (i, v) in seg.iter().enumerate() {
                shared[off + i].store(*v, Ordering::Relaxed);
            }
            return;
        }
        let split = less.len();
        for (i, v) in less.iter().chain(geq.iter()).enumerate() {
            shared[off + i].store(*v, Ordering::Relaxed);
        }
        let (s1, s2) = (Arc::clone(&shared), Arc::clone(&shared));
        ctx.spawn(Job::new(format!("qs[{off}+{split}]"), move |c| {
            sort_task(s1, off, split, threshold, c)
        }));
        ctx.spawn(Job::new(
            format!("qs[{}+{}]", off + split, len - split),
            move |c| sort_task(s2, off + split, len - split, threshold, c),
        ));
    }

    let root = {
        let shared = Arc::clone(&shared);
        let n = shared.len();
        Job::new("qs-root", move |c| sort_task(shared, 0, n, threshold, c))
    };
    let spans = run_pool(kind, workers, vec![root]);
    let result: Vec<i64> = shared.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    (spans, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quicksort::random_input;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_initial_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                let c = Arc::clone(&counter);
                Job::new(format!("j{i}"), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let spans = run_pool(PoolKind::Central, 4, jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 20);
        let execs = spans.iter().filter(|s| s.kind == SpanKind::Exec).count();
        assert_eq!(execs, 20);
    }

    #[test]
    fn spawned_jobs_run_too() {
        let counter = Arc::new(AtomicUsize::new(0));
        for kind in [PoolKind::Central, PoolKind::WorkStealing] {
            counter.store(0, Ordering::Relaxed);
            let c = Arc::clone(&counter);
            let root = Job::new("root", move |ctx| {
                for i in 0..8 {
                    let c2 = Arc::clone(&c);
                    ctx.spawn(Job::new(format!("child{i}"), move |_| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    }));
                }
            });
            run_pool(kind, 3, vec![root]);
            assert_eq!(counter.load(Ordering::Relaxed), 8, "{kind:?}");
        }
    }

    #[test]
    fn quicksort_sorts_on_central_pool() {
        let data = random_input(20_000, 7);
        let mut expect = data.clone();
        expect.sort_unstable();
        let (spans, sorted) = run_quicksort(PoolKind::Central, 4, data, 512);
        assert_eq!(sorted, expect);
        assert!(spans.iter().any(|s| s.kind == SpanKind::Exec));
    }

    #[test]
    fn quicksort_sorts_on_stealing_pool() {
        let data = random_input(20_000, 8);
        let mut expect = data.clone();
        expect.sort_unstable();
        let (_, sorted) = run_quicksort(PoolKind::WorkStealing, 4, data, 512);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn trace_spans_are_well_formed() {
        let data = random_input(5_000, 9);
        let (spans, _) = run_quicksort(PoolKind::Central, 3, data, 256);
        for s in &spans {
            assert!(s.end >= s.start, "negative span");
            assert!(s.worker < 3);
        }
        // Exec spans per worker never overlap.
        for w in 0..3 {
            let mut mine: Vec<&TraceSpan> = spans
                .iter()
                .filter(|s| s.worker == w && s.kind == SpanKind::Exec)
                .collect();
            mine.sort_by(|a, b| a.start.total_cmp(&b.start));
            for pair in mine.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-9);
            }
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let data = random_input(2_000, 10);
        let mut expect = data.clone();
        expect.sort_unstable();
        let (_, sorted) = run_quicksort(PoolKind::Central, 1, data, 128);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn empty_pool_terminates() {
        let spans = run_pool(PoolKind::Central, 2, vec![]);
        assert!(spans.iter().all(|s| s.kind == SpanKind::Wait));
    }
}
