//! Task-parallel Quicksort (paper, §VI-B).
//!
//! "The parallel Quicksort … creates two tasks for sorting each
//! sub-array. At the beginning, there is only one task for the whole
//! input array." The shape of the recursion tree — and hence the
//! schedule — depends on the pivot strategy and the input:
//!
//! * random input + naive pivot: "due to an accidental bad choice of the
//!   pivot element, the initial array is not split into nearly
//!   equal-sized sub-arrays" (Fig. 11);
//! * inversely sorted input + middle pivot: perfectly equal splits, but
//!   "the processor has to swap every pair of numbers", so the serial
//!   prefix dominates (Fig. 12).
//!
//! [`build_qs_tree`] runs the real partitioning on the data and records
//! the task tree with exact element and swap counts; the tree is then
//! either executed by the real pool ([`crate::pool`]) or replayed in
//! virtual time ([`crate::sim`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the pivot is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotStrategy {
    /// First element — classic naive choice.
    First,
    /// Middle element (the Fig. 12 configuration).
    Middle,
    /// Median of first/middle/last.
    MedianOfThree,
}

/// One task of the recursion tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QsNode {
    /// Index within the tree (`0` is the initial whole-array task).
    pub id: usize,
    /// Parent task (None for the root).
    pub parent: Option<usize>,
    /// Segment offset and length in the original array.
    pub offset: usize,
    pub len: usize,
    /// Number of swaps the partition performed (drives the Fig. 12 cost).
    pub swaps: usize,
    /// Children spawned (0, 1 or 2).
    pub children: Vec<usize>,
    /// Recursion depth (root = 0).
    pub depth: usize,
}

/// The complete recursion tree of one Quicksort run.
#[derive(Debug, Clone, PartialEq)]
pub struct QsTree {
    pub nodes: Vec<QsNode>,
    /// Below this segment length a task sorts sequentially (no spawns).
    pub threshold: usize,
    /// Total input length.
    pub input_len: usize,
}

impl QsTree {
    /// Total elements processed over all tasks: Σ len — the `n log n`
    /// style total work.
    pub fn total_elements(&self) -> usize {
        self.nodes.iter().map(|n| n.len).sum()
    }

    /// Total swaps over all tasks.
    pub fn total_swaps(&self) -> usize {
        self.nodes.iter().map(|n| n.swaps).sum()
    }

    /// Maximum recursion depth.
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }
}

/// Partitions `data` around the pivot at `pivot_idx`: moves the pivot to
/// the front, Hoare-scans the rest into `< pivot | ≥ pivot`, then places
/// the pivot at the boundary. Returns `(pivot position, swaps)`; the
/// halves `[0, pos)` and `[pos+1, len)` are both strictly shorter than
/// `data`, so recursion always makes progress (no degenerate loops on
/// duplicate or pre-sorted inputs).
fn partition(data: &mut [i64], pivot_idx: usize) -> (usize, usize) {
    let mut swaps = 0usize;
    if pivot_idx != 0 {
        data.swap(0, pivot_idx);
        swaps += 1;
    }
    let pivot = data[0];
    let (mut i, mut j) = (1usize, data.len());
    loop {
        while i < data.len() && data[i] < pivot {
            i += 1;
        }
        while j > i && data[j - 1] >= pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j - 1);
        swaps += 1;
        i += 1;
        j -= 1;
    }
    // data[1..i] < pivot, data[i..] >= pivot; park the pivot at i-1.
    if i > 1 {
        data.swap(0, i - 1);
        swaps += 1;
    }
    (i - 1, swaps)
}

fn choose_pivot_index(data: &[i64], strategy: PivotStrategy) -> usize {
    match strategy {
        PivotStrategy::First => 0,
        PivotStrategy::Middle => data.len() / 2,
        PivotStrategy::MedianOfThree => {
            let (ai, bi, ci) = (0, data.len() / 2, data.len() - 1);
            let (a, b, c) = (data[ai], data[bi], data[ci]);
            // Index of the median value.
            if (a <= b && b <= c) || (c <= b && b <= a) {
                bi
            } else if (b <= a && a <= c) || (c <= a && a <= b) {
                ai
            } else {
                ci
            }
        }
    }
}

/// Runs Quicksort on a copy of `data`, recording the task tree. The sort
/// itself is verified by the caller (the data really is sorted).
pub fn build_qs_tree(
    data: &[i64],
    strategy: PivotStrategy,
    threshold: usize,
) -> (QsTree, Vec<i64>) {
    let threshold = threshold.max(2);
    let mut work = data.to_vec();
    let mut nodes: Vec<QsNode> = Vec::new();
    // Explicit stack of (node id, offset, len, depth).
    let mut stack: Vec<(usize, usize, usize, usize)> = Vec::new();
    nodes.push(QsNode {
        id: 0,
        parent: None,
        offset: 0,
        len: work.len(),
        swaps: 0,
        children: Vec::new(),
        depth: 0,
    });
    stack.push((0, 0, work.len(), 0));

    while let Some((id, off, len, depth)) = stack.pop() {
        if len <= threshold {
            // Leaf: sequential sort, no spawns.
            work[off..off + len].sort_unstable();
            continue;
        }
        let seg = &mut work[off..off + len];
        let pidx = choose_pivot_index(seg, strategy);
        let (pos, swaps) = partition(seg, pidx);
        nodes[id].swaps = swaps;
        // The pivot sits at `pos`; recurse on both sides of it. Each side
        // is strictly shorter than `len`, so the tree is finite even for
        // duplicate-heavy or pre-sorted inputs.
        for (co, cl) in [(off, pos), (off + pos + 1, len - pos - 1)] {
            if cl == 0 {
                continue;
            }
            let cid = nodes.len();
            nodes.push(QsNode {
                id: cid,
                parent: Some(id),
                offset: co,
                len: cl,
                swaps: 0,
                children: Vec::new(),
                depth: depth + 1,
            });
            nodes[id].children.push(cid);
            stack.push((cid, co, cl, depth + 1));
        }
    }

    (
        QsTree {
            nodes,
            threshold,
            input_len: data.len(),
        },
        work,
    )
}

/// Random input of `n` integers (Fig. 11's "10 million random integers").
pub fn random_input(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..i64::MAX / 2)).collect()
}

/// Inversely sorted input (Fig. 12's worst case for memory traffic).
pub fn inverse_input(n: usize) -> Vec<i64> {
    (0..n as i64).rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(v: &[i64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn sorts_random_input() {
        let data = random_input(10_000, 1);
        for strat in [
            PivotStrategy::First,
            PivotStrategy::Middle,
            PivotStrategy::MedianOfThree,
        ] {
            let (_, sorted) = build_qs_tree(&data, strat, 64);
            assert!(is_sorted(&sorted), "{strat:?}");
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "{strat:?}");
        }
    }

    #[test]
    fn sorts_inverse_input() {
        let data = inverse_input(5_000);
        let (tree, sorted) = build_qs_tree(&data, PivotStrategy::Middle, 64);
        assert!(is_sorted(&sorted));
        assert!(tree.total_swaps() > 0);
    }

    #[test]
    fn sorts_pathological_inputs() {
        for data in [
            vec![],
            vec![1],
            vec![5, 5, 5, 5, 5, 5],
            vec![2, 1],
            (0..100).collect::<Vec<i64>>(), // already sorted
        ] {
            let (_, sorted) = build_qs_tree(&data, PivotStrategy::First, 4);
            assert!(is_sorted(&sorted), "{data:?}");
            assert_eq!(sorted.len(), data.len());
        }
    }

    #[test]
    fn root_is_whole_array() {
        let data = random_input(1_000, 2);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 32);
        assert_eq!(tree.nodes[0].offset, 0);
        assert_eq!(tree.nodes[0].len, 1_000);
        assert_eq!(tree.nodes[0].depth, 0);
        assert!(tree.nodes[0].parent.is_none());
    }

    #[test]
    fn children_partition_the_parent() {
        let data = random_input(4_096, 3);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::MedianOfThree, 32);
        for n in &tree.nodes {
            if n.children.len() == 2 {
                let a = &tree.nodes[n.children[0]];
                let b = &tree.nodes[n.children[1]];
                assert_eq!(a.offset, n.offset);
                // The pivot element sits between the two children.
                assert_eq!(a.offset + a.len + 1, b.offset);
                assert_eq!(a.len + b.len + 1, n.len);
                assert_eq!(a.depth, n.depth + 1);
            }
        }
    }

    #[test]
    fn middle_pivot_on_inverse_input_splits_evenly() {
        // The Fig. 12 construction: "inversely sorted numbers and
        // selecting the middle element as pivot element … force the
        // Quicksort algorithm to equally partition the input array".
        let data = inverse_input(1 << 14);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 64);
        let root = &tree.nodes[0];
        assert_eq!(root.children.len(), 2);
        let a = tree.nodes[root.children[0]].len as f64;
        let b = tree.nodes[root.children[1]].len as f64;
        assert!((a / b - 1.0).abs() < 0.05, "split {a} / {b}");
        // And the root swaps every pair: n/2 swaps.
        assert!(root.swaps as f64 > data.len() as f64 * 0.45);
    }

    #[test]
    fn random_input_has_moderate_root_swaps() {
        let data = random_input(1 << 14, 4);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 64);
        // Random data swaps far fewer than every pair.
        assert!((tree.nodes[0].swaps as f64) < data.len() as f64 * 0.45);
    }

    #[test]
    fn many_tasks_for_large_inputs() {
        // §VI: "some experiments with the parallel Quicksort have created
        // more than 200,000 individual tasks" — small threshold, big n.
        let data = random_input(1 << 16, 5);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::First, 2);
        assert!(tree.nodes.len() > 10_000, "{} tasks", tree.nodes.len());
    }

    #[test]
    fn threshold_bounds_leaf_size() {
        let data = random_input(10_000, 6);
        let (tree, _) = build_qs_tree(&data, PivotStrategy::Middle, 128);
        for n in &tree.nodes {
            if n.len > 128 {
                assert!(
                    !n.children.is_empty(),
                    "over-threshold segment (len {}) must recurse",
                    n.len
                );
            }
        }
        assert!(tree.max_depth() > 3);
    }
}
