//! Trace logging and conversion to Jedule schedules.
//!
//! "The run-time environment stores for each thread the time used for
//! executing a task and the time to get new tasks (or wait for new tasks
//! if necessary)" (paper, §VI-B). A [`TraceSpan`] is one such interval;
//! [`trace_to_schedule`] renders the log as a Jedule schedule where
//! "task execution times are highlighted in blue and waiting times are
//! colored red".

use jedule_core::{Allocation, Color, ColorMap, ColorPair, Schedule, ScheduleBuilder, Task};
use parking_lot::Mutex;

/// What a worker was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing a task (`execute()`).
    Exec,
    /// Getting or waiting for a task (`get()` / `free()`).
    Wait,
}

impl SpanKind {
    pub fn type_name(&self) -> &'static str {
        match self {
            SpanKind::Exec => "exec",
            SpanKind::Wait => "wait",
        }
    }
}

/// One logged interval on one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    pub worker: u32,
    pub kind: SpanKind,
    /// Task identifier for exec spans (empty for waits).
    pub task_id: String,
    pub start: f64,
    pub end: f64,
}

/// A thread-safe trace collector.
#[derive(Debug, Default)]
pub struct TraceLog {
    spans: Mutex<Vec<TraceSpan>>,
}

impl TraceLog {
    pub fn new() -> Self {
        TraceLog::default()
    }

    pub fn record(&self, span: TraceSpan) {
        self.spans.lock().push(span);
    }

    /// Takes all recorded spans, sorted by (worker, start).
    pub fn into_spans(self) -> Vec<TraceSpan> {
        let mut v = self.spans.into_inner();
        v.sort_by(|a, b| a.worker.cmp(&b.worker).then(a.start.total_cmp(&b.start)));
        v
    }

    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }
}

/// Options for schedule conversion.
#[derive(Debug, Clone)]
pub struct TraceScheduleOptions {
    /// Cluster name shown on the chart.
    pub cluster_name: String,
    /// Drop spans shorter than this (noise in wall-clock traces).
    pub min_span: f64,
    /// Include wait spans (red) in the schedule.
    pub include_waits: bool,
}

impl Default for TraceScheduleOptions {
    fn default() -> Self {
        TraceScheduleOptions {
            cluster_name: "workers".into(),
            min_span: 0.0,
            include_waits: true,
        }
    }
}

/// Converts a span log over `workers` workers into a Jedule schedule.
pub fn trace_to_schedule(
    spans: &[TraceSpan],
    workers: u32,
    opts: &TraceScheduleOptions,
) -> Schedule {
    let mut b = ScheduleBuilder::new().cluster(0, opts.cluster_name.clone(), workers);
    let mut wait_seq = 0u64;
    for s in spans {
        if s.end - s.start < opts.min_span {
            continue;
        }
        if s.kind == SpanKind::Wait && !opts.include_waits {
            continue;
        }
        let id = match s.kind {
            SpanKind::Exec => s.task_id.clone(),
            SpanKind::Wait => {
                wait_seq += 1;
                format!("w{wait_seq}")
            }
        };
        b = b.task(
            Task::new(id, s.kind.type_name(), s.start, s.end)
                .on(Allocation::contiguous(0, s.worker, 1)),
        );
    }
    b.build_unchecked()
}

/// The §VI color map: execution blue, waiting red.
pub fn taskpool_colormap() -> ColorMap {
    let mut m = ColorMap::new("taskpool");
    m.set(
        "exec",
        ColorPair::new(Color::WHITE, Color::parse("0000FF").unwrap()),
    );
    m.set(
        "wait",
        ColorPair::new(Color::BLACK, Color::parse("f10000").unwrap()),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_core::validate;

    fn spans() -> Vec<TraceSpan> {
        vec![
            TraceSpan {
                worker: 0,
                kind: SpanKind::Exec,
                task_id: "t1".into(),
                start: 0.0,
                end: 2.0,
            },
            TraceSpan {
                worker: 1,
                kind: SpanKind::Wait,
                task_id: String::new(),
                start: 0.0,
                end: 1.0,
            },
            TraceSpan {
                worker: 1,
                kind: SpanKind::Exec,
                task_id: "t2".into(),
                start: 1.0,
                end: 1.5,
            },
        ]
    }

    #[test]
    fn conversion_produces_valid_schedule() {
        let s = trace_to_schedule(&spans(), 2, &TraceScheduleOptions::default());
        assert!(validate(&s).is_empty());
        assert_eq!(s.tasks.len(), 3);
        assert_eq!(s.task_types(), vec!["exec", "wait"]);
        assert_eq!(s.total_hosts(), 2);
    }

    #[test]
    fn waits_can_be_dropped() {
        let opts = TraceScheduleOptions {
            include_waits: false,
            ..Default::default()
        };
        let s = trace_to_schedule(&spans(), 2, &opts);
        assert_eq!(s.tasks.len(), 2);
        assert!(s.tasks.iter().all(|t| t.kind == "exec"));
    }

    #[test]
    fn min_span_filters_noise() {
        let opts = TraceScheduleOptions {
            min_span: 0.75,
            ..Default::default()
        };
        let s = trace_to_schedule(&spans(), 2, &opts);
        assert_eq!(s.tasks.len(), 2); // t2 (0.5) dropped
    }

    #[test]
    fn log_is_thread_safe_and_sorts() {
        let log = std::sync::Arc::new(TraceLog::new());
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    log.record(TraceSpan {
                        worker: w,
                        kind: SpanKind::Exec,
                        task_id: format!("{w}-{i}"),
                        start: f64::from(i),
                        end: f64::from(i) + 0.5,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 40);
        let spans = std::sync::Arc::try_unwrap(log).unwrap().into_spans();
        // Sorted by worker then start.
        for w in spans.windows(2) {
            assert!(
                (w[0].worker, w[0].start) <= (w[1].worker, w[1].start),
                "unsorted"
            );
        }
    }

    #[test]
    fn colormap_matches_paper_palette() {
        let m = taskpool_colormap();
        assert_eq!(m.get("exec").unwrap().bg, Color::new(0, 0, 255));
        assert_eq!(m.get("wait").unwrap().bg, Color::new(0xf1, 0, 0));
    }
}
