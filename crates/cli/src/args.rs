//! A tiny flag parser shared by the subcommands.

/// Iterates over raw arguments, separating flags from positionals.
pub struct Args<'a> {
    argv: &'a [String],
    i: usize,
}

impl<'a> Args<'a> {
    pub fn new(argv: &'a [String]) -> Self {
        Args { argv, i: 0 }
    }

    /// Next raw argument, if any.
    pub fn next(&mut self) -> Option<&'a str> {
        let a = self.argv.get(self.i)?;
        self.i += 1;
        Some(a)
    }

    /// The value following a flag.
    pub fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    /// The value following a flag, parsed.
    pub fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let v = self.value(flag)?;
        v.parse().map_err(|_| format!("{flag}: cannot parse {v:?}"))
    }
}

/// Loads a schedule with format auto-detection (sequential ingest).
pub fn load_schedule(path: &str) -> Result<jedule_core::Schedule, String> {
    load_schedule_threads(path, 1)
}

/// Loads a schedule with format auto-detection and the workspace
/// `threads` knob (`0` auto, `1` sequential, `n` workers) for the
/// line-oriented formats' chunked parallel ingest. `.swf` workload
/// traces are converted through the bird's-eye pipeline with cluster
/// geometry taken from the trace header.
pub fn load_schedule_threads(path: &str, threads: usize) -> Result<jedule_core::Schedule, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_schedule_src(path, &src, threads)
}

/// Parses already-read source text with the same format auto-detection
/// as [`load_schedule_threads`] — shared with the sidecar path, which
/// needs the raw text for digesting before it decides whether to parse.
fn parse_schedule_src(
    path: &str,
    src: &str,
    threads: usize,
) -> Result<jedule_core::Schedule, String> {
    let p = std::path::Path::new(path);
    if p.extension().is_some_and(|e| e.eq_ignore_ascii_case("swf")) {
        return swf_to_schedule(src, threads).map_err(|e| format!("{path}: {e}"));
    }
    jedule_xmlio::parse_any_parallel(src, Some(p), threads).map_err(|e| format!("{path}: {e}"))
}

/// Loads a schedule as a [`PreparedSchedule`], preferring a fresh
/// `<input>.jpack` sidecar over re-parsing the text (the `--pack-sidecar`
/// mode of `render` / `view` / `compare`):
///
/// * a sidecar whose stored digest matches the input's bytes is mapped
///   and served directly — the text is never parsed and (unless the
///   caller materializes) no `Schedule` is ever built;
/// * a **stale** sidecar (digest mismatch after the input changed) is
///   silently ignored and rewritten after the text parse;
/// * a **corrupt** sidecar is reported to stderr, ignored, and
///   rewritten — it never fails the command.
pub fn load_prepared_sidecar(
    path: &str,
    threads: usize,
) -> Result<jedule_core::PreparedSchedule, String> {
    use jedule_core::snap;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let digest = snap::source_digest(src.as_bytes());
    let sidecar = snap::sidecar_path(std::path::Path::new(path));
    if sidecar.exists() {
        match snap::load_if_fresh(&sidecar, digest) {
            Ok(Some(packed)) => return Ok(jedule_core::PreparedSchedule::from_pack(packed)),
            Ok(None) => {} // stale: fall back to the text silently
            Err(e) => eprintln!("jedule: ignoring sidecar {}: {e}", sidecar.display()),
        }
    }
    let prep = jedule_core::PreparedSchedule::new(parse_schedule_src(path, &src, threads)?);
    if let Err(e) = snap::write_pack_file(&prep, digest, &sidecar) {
        eprintln!("jedule: cannot write sidecar {}: {e}", sidecar.display());
    }
    Ok(prep)
}

/// Converts an SWF workload trace into a renderable schedule. Node
/// count comes from the `MaxNodes`/`MaxProcs` header, falling back to
/// the widest job in the trace.
fn swf_to_schedule(src: &str, threads: usize) -> Result<jedule_core::Schedule, String> {
    let (header, jobs) =
        jedule_workloads::parse_swf_parallel(src, threads).map_err(|e| e.to_string())?;
    let total_nodes = header
        .max_nodes
        .or(header.max_procs)
        .unwrap_or_else(|| jobs.iter().map(|j| j.procs).max().unwrap_or(1));
    let opts = jedule_workloads::ConvertOptions {
        cluster_name: header.computer.unwrap_or_else(|| "swf".to_string()),
        total_nodes: total_nodes.max(1),
        reserved: 0,
        highlight_user: None,
        task_attrs: false,
    };
    // Node assignment + task building dominate SWF ingest; give them
    // their own span so `--timings` attributes the time.
    let _s = jedule_core::obs::span("ingest.convert");
    Ok(jedule_workloads::jobs_to_schedule(&jobs, &opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_arguments() {
        let argv = vec!["a".to_string(), "-W".to_string(), "640".to_string()];
        let mut args = Args::new(&argv);
        assert_eq!(args.next(), Some("a"));
        assert_eq!(args.next(), Some("-W"));
        let w: f64 = args.parse("-W").unwrap();
        assert_eq!(w, 640.0);
        assert!(args.next().is_none());
    }

    #[test]
    fn missing_value_errors() {
        let argv = vec!["-W".to_string()];
        let mut args = Args::new(&argv);
        args.next();
        assert!(args.parse::<f64>("-W").is_err());
    }

    #[test]
    fn bad_value_errors() {
        let argv = vec!["abc".to_string()];
        let mut args = Args::new(&argv);
        let r: Result<f64, _> = args.parse("-W");
        assert!(r.is_err());
    }
}
