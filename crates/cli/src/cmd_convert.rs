//! `jedule convert` — translate between the supported schedule formats
//! (the output format is picked from the output file extension).

use crate::args::{load_schedule, Args};
use jedule_xmlio::{csvfmt, jedule_xml, jsonl};

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;

    while let Some(a) = args.next() {
        match a {
            "-o" | "--output" => output = Some(args.value(a)?.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            p => input = Some(p.to_string()),
        }
    }
    let input = input.ok_or("convert needs an input schedule file")?;
    let output = output.ok_or("convert needs -o <output>")?;
    let schedule = load_schedule(&input)?;

    let ext = std::path::Path::new(&output)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let text = match ext {
        "jed" | "xml" | "jedule" => jedule_xml::write_schedule_string(&schedule),
        "csv" => csvfmt::write_schedule_csv(&schedule),
        "jsonl" | "ndjson" => jsonl::write_schedule_jsonl(&schedule),
        other => {
            return Err(format!(
                "unknown output extension {other:?} (use .jed/.xml, .csv or .jsonl)"
            ))
        }
    };
    std::fs::write(&output, text).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!("wrote {output}");
    Ok(())
}
