//! `jedule compare` — the side-by-side workflow of the §III case study:
//! "a fast overview of the scheduling performance by viewing the
//! scheduling output of CPA and MCPA side by side". Stacks two schedules
//! into one chart and prints a statistics diff.

use crate::args::{load_prepared_sidecar, load_schedule, Args};
use crate::obs_cli::ObsSink;
use jedule_core::obs;
use jedule_core::stats::{idle_holes, schedule_stats};
use jedule_core::transform::{merge, normalize};
use jedule_core::PreparedSchedule;
use jedule_render::{render_prepared, OutputFormat, RenderOptions};

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut inputs: Vec<String> = Vec::new();
    let mut output: Option<String> = None;
    let mut format = OutputFormat::Svg;
    let mut align_origins = true;
    let mut pack_sidecar = false;
    let mut sink = ObsSink::default();

    while let Some(a) = args.next() {
        match a {
            "-o" | "--output" => output = Some(args.value(a)?.to_string()),
            "-f" | "--format" => {
                let name = args.value(a)?;
                format =
                    OutputFormat::parse(name).ok_or_else(|| format!("unknown format {name:?}"))?;
            }
            "--keep-origins" => align_origins = false,
            "--pack-sidecar" => pack_sidecar = true,
            flag if sink.accept(flag, &mut args)? => {}
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            p => inputs.push(p.to_string()),
        }
    }
    if inputs.len() != 2 {
        return Err("compare needs exactly two schedule files".into());
    }

    let _obs = sink.arm();
    // Comparison needs full task lists (normalize/diff/merge), so a
    // sidecar hit materializes — it still skips the text parse.
    let load = |p: &str| -> Result<_, String> {
        if pack_sidecar {
            Ok(load_prepared_sidecar(p, 1)?.into_schedule())
        } else {
            load_schedule(p)
        }
    };
    let (mut a, mut b) = {
        let _s = obs::span("ingest");
        (load(&inputs[0])?, load(&inputs[1])?)
    };
    if align_origins {
        a = normalize(&a);
        b = normalize(&b);
    }

    let name = |p: &str| {
        std::path::Path::new(p)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("schedule")
            .to_string()
    };
    let (na, nb) = (name(&inputs[0]), name(&inputs[1]));

    // Statistics diff.
    let sa = schedule_stats(&a);
    let sb = schedule_stats(&b);
    let ha = idle_holes(&a, 1e-9).len();
    let hb = idle_holes(&b, 1e-9).len();
    println!("{:<14} {:>12} {:>12}", "", na, nb);
    println!(
        "{:<14} {:>12} {:>12}",
        "tasks", sa.task_count, sb.task_count
    );
    println!(
        "{:<14} {:>12.4} {:>12.4}",
        "makespan", sa.makespan, sb.makespan
    );
    println!(
        "{:<14} {:>11.1}% {:>11.1}%",
        "utilization",
        sa.utilization * 100.0,
        sb.utilization * 100.0
    );
    println!("{:<14} {:>12} {:>12}", "idle holes", ha, hb);

    // Task-level diff when the schedules share task ids (e.g. the §IV
    // with/without-backfilling comparison).
    let d = jedule_core::diff_schedules(&a, &b);
    if d.unchanged + d.moved.len() + d.resized.len() + d.relocated.len() > 0
        && (d.added.len() + d.removed.len()) * 2 < a.tasks.len().max(1)
    {
        println!(
            "\ntask diff: {} unchanged, {} moved, {} resized, {} relocated, {} added, {} removed",
            d.unchanged,
            d.moved.len(),
            d.resized.len(),
            d.relocated.len(),
            d.added.len(),
            d.removed.len()
        );
        println!(
            "max delay {:.4} (0 = conservative), total advance {:.4}",
            d.max_delay(),
            d.total_advance()
        );
    }
    if sa.makespan > 0.0 && sb.makespan > 0.0 {
        let ratio = sb.makespan / sa.makespan;
        println!(
            "\n{} is {:.2}x {} than {}",
            nb,
            if ratio >= 1.0 { ratio } else { 1.0 / ratio },
            if ratio >= 1.0 { "slower" } else { "faster" },
            na
        );
    }

    // Side-by-side chart (stacked cluster panels in one document). The
    // merged schedule is wrapped in a PreparedSchedule so the render
    // shares the same warm path as the interactive mode.
    let combined = PreparedSchedule::new(merge(&a, &b, &na, &nb));
    let opts = RenderOptions::default()
        .with_format(format)
        .with_title(format!("{na} vs {nb}"));
    let bytes = render_prepared(&combined, &opts);
    sink.finish()?;
    let out_path = output.unwrap_or_else(|| format!("compare.{}", format.extension()));
    if format == OutputFormat::Ascii && out_path == "compare.txt" {
        print!("{}", String::from_utf8_lossy(&bytes));
    } else {
        std::fs::write(&out_path, bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
        eprintln!("wrote {out_path}");
    }
    Ok(())
}
