//! `jedule pack` — builds (or checks) a `.jpack` binary snapshot of a
//! schedule: everything `PreparedSchedule` computes, serialized into a
//! mmap-ready section file so later renders skip the parse + prepare
//! cold path entirely (DESIGN.md §5f).

use crate::args::{load_schedule_threads, Args};
use crate::obs_cli::ObsSink;
use jedule_core::{obs, snap, PreparedSchedule};
use std::path::{Path, PathBuf};

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut check = false;
    let mut threads = 1usize;
    let mut sink = ObsSink::default();

    while let Some(a) = args.next() {
        match a {
            "-o" | "--output" => output = Some(args.value(a)?.to_string()),
            "--check" => check = true,
            "-j" | "--threads" => threads = args.parse(a)?,
            flag if sink.accept(flag, &mut args)? => {}
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if input.is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
                input = Some(positional.to_string());
            }
        }
    }
    let input = input.ok_or("pack needs an input schedule file")?;
    let _obs = sink.arm();

    let src = std::fs::read(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let digest = snap::source_digest(&src);
    let out_path = output
        .map(PathBuf::from)
        .unwrap_or_else(|| snap::sidecar_path(Path::new(&input)));

    if check {
        return check_pack(&input, &out_path, digest);
    }

    let prep = {
        let _s = obs::span("ingest");
        PreparedSchedule::new(load_schedule_threads(&input, threads)?)
    };
    snap::write_pack_file(&prep, digest, &out_path)
        .map_err(|e| format!("cannot pack {input}: {e}"))?;
    let size = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    sink.finish()?;
    eprintln!(
        "wrote {} ({} tasks, {} bytes, source digest {digest:016x})",
        out_path.display(),
        prep.task_count(),
        size
    );
    Ok(())
}

/// `--check`: fully loads an existing pack and reports freshness
/// against the current input bytes. Missing, stale or corrupt packs
/// exit nonzero so CI can gate on it.
fn check_pack(input: &str, pack: &Path, digest: u64) -> Result<(), String> {
    if !pack.exists() {
        return Err(format!(
            "{}: no pack (run `jedule pack {input}`)",
            pack.display()
        ));
    }
    let packed = snap::load(pack).map_err(|e| format!("{}: {e}", pack.display()))?;
    if packed.source_digest != digest {
        return Err(format!(
            "{}: stale (pack digest {:016x}, input digest {digest:016x})",
            pack.display(),
            packed.source_digest
        ));
    }
    let prep = PreparedSchedule::from_pack(packed);
    println!(
        "{}: fresh ({} tasks, {} clusters)",
        pack.display(),
        prep.task_count(),
        prep.clusters().len()
    );
    Ok(())
}
