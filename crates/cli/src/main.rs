//! `jedule` — the command-line front end of the reproduction.
//!
//! Mirrors the original tool's two modes (paper, §II-D):
//!
//! * **command line mode** — `jedule render` produces publication
//!   graphics in batch, with the original's parameters (output format,
//!   width/height, color map, cluster time alignment);
//! * **interactive mode** — `jedule view` drives the `ViewState` model
//!   (zoom, pan, cluster selection, task inspection, reread) over an
//!   ANSI terminal rendering instead of a Swing window.
//!
//! Plus quality-of-life commands: `info` (validation + statistics),
//! `convert` (between the XML/CSV/JSONL formats) and `cmap` (emit the
//! standard color map of Fig. 2).

mod args;
mod cmd_compare;
mod cmd_convert;
mod cmd_info;
mod cmd_pack;
mod cmd_render;
mod cmd_serve;
mod cmd_view;
mod obs_cli;

use std::process::ExitCode;

const USAGE: &str = "\
jedule — visualize schedules of parallel applications

USAGE:
    jedule render <input> [options]    render a schedule to a graphic
    jedule view <input>                interactive terminal mode
    jedule info <input> [--json]       validate and print statistics
    jedule convert <input> -o <out>    convert between schedule formats
    jedule compare <a> <b> [-o out]    stats diff + stacked side-by-side chart
    jedule pack <input> [-o out]       build a .jpack binary snapshot
    jedule cmap                        print the standard color map XML
    jedule serve [options]             resident HTTP render service

RENDER OPTIONS:
    -o, --output <file>     output path (default: input + format ext)
    -f, --format <fmt>      svg | png | jpeg | ppm | pdf | ascii | html
                            (default svg; html emits one self-contained
                            interactive explorer page, no external assets)
    -W, --width <px>        canvas width (default 800)
    -H, --height <px>       canvas height (default: auto)
    -c, --cmap <file>       color map XML (default: standard map)
        --gray              convert the color map to gray scale
        --scaled            per-cluster local time axes
        --aligned           global time axis for all clusters (default)
        --cluster <id>      render only one cluster
        --window <t0> <t1>  restrict to a time window (t1 must exceed t0;
                            tasks outside it are culled via an interval index)
        --lod <mode>        auto | off | force — aggregate sub-pixel tasks
                            into per-row density strips (default auto)
        --title <text>      chart title
        --no-meta           hide the meta-info header
        --no-labels         hide task id labels
        --no-composites     do not draw composite (overlap) tasks
        --util-profile      add a busy-hosts-over-time strip
        --only-type <t>     keep only tasks of this type (repeatable)
        --pack-sidecar      keep a <input>.jpack binary snapshot beside
                            the input: fresh sidecars are mmap-loaded
                            instead of parsed (also on view/compare);
                            stale ones are silently rebuilt
    -j, --threads <n>       raster/encode worker threads (0 = all cores,
                            1 = sequential; pixels identical either way)

PACK OPTIONS:
    -o, --output <file>     pack path (default: <input>.jpack)
        --check             validate an existing pack against the input
                            (exit nonzero when missing/stale/corrupt)
    -j, --threads <n>       parse worker threads (0 = all cores)

SERVE OPTIONS:
        --addr <host:port>  bind address (default 127.0.0.1:8017)
        --root <dir>        directory /render inputs are restricted to
                            (default .)
        --cache-cap <n>     max cached prepared schedules, LRU
                            (default 64)
        --body-cache-cap <n>  max cached rendered bodies, LRU
                            (default: --cache-cap)
        --tile-cache-cap <n>  max cached render tiles shared across
                            views, LRU (default 1024, 0 disables)
        --trace-keep <n>    request traces retained for
                            /debug/trace/<id> (default 32)
        --access-log <file|->  stream one JSONL record per request
                            (append; `-` for stdout)
        --access-log-keep <n>  in-memory access records served by
                            /debug/log (default 512)
        --slow-ms <n>       pin traces of requests slower than <n> ms so
                            fast-request churn cannot evict them
    -j, --threads <n>       worker threads (0 = auto)
        --metrics-json <file|->  after SIGTERM drain, flush cumulative
                            registry metrics (jedule-metrics-v1)
    endpoints: /render (figure), /explore (interactive explorer shell;
    &tile=1 fetches window/LOD tiles), /meta (schedule JSON), /metrics,
    /metrics.json, /healthz, /debug/dash (live dashboard),
    /debug/log?n=&status=&path= (access-log tail), /debug/trace/<id>

OBSERVABILITY (render, compare, view):
        --timings           print the hierarchical span tree to stderr
        --profile <file|->  write a Chrome trace-event JSON (load it in
                            Perfetto / chrome://tracing, or feed it back
                            into `jedule render` as a schedule)
        --metrics-json <file|->  write flat stage/counter metrics JSON
                            (schema jedule-metrics-v1, diffable in CI)
    `-` writes the artifact to stdout for piping into CI tooling.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &argv[1..];
    let result = match cmd.as_str() {
        "render" => cmd_render::run(rest),
        "view" => cmd_view::run(rest),
        "info" => cmd_info::run(rest),
        "convert" => cmd_convert::run(rest),
        "compare" => cmd_compare::run(rest),
        "pack" => cmd_pack::run(rest),
        "serve" => cmd_serve::run(rest),
        "cmap" => {
            print!(
                "{}",
                jedule_xmlio::write_colormap_string(&jedule_core::ColorMap::standard())
            );
            Ok(())
        }
        "help" | "-h" | "--help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `jedule help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("jedule: {msg}");
            ExitCode::FAILURE
        }
    }
}
