//! `jedule view` — the interactive mode (paper, §II-D1), terminal
//! edition.
//!
//! The original opens a Swing window; here the same interaction verbs
//! drive a [`jedule_core::ViewState`] over an ANSI rendering (see
//! DESIGN.md's substitution table):
//!
//! ```text
//! z <factor> [center]   zoom the time axis (0.5 = zoom in 2x)
//! p <dt> [dr]           pan by dt seconds / dr rows
//! w <t0> <t1>           zoom to an explicit time window
//! c <id> | c all        select one cluster / all clusters
//! i <t> <row>           inspect (click) the task at (t, row)
//! r                     reread the schedule file and redraw
//! e <file>              export the current view (format by extension)
//! g                     toggle gray-scale colors
//! q                     quit
//! ```

use crate::args::{load_schedule, Args};
use jedule_core::view::task_info;
use jedule_core::{AlignMode, HitTarget, PreparedSchedule, ViewState};
use jedule_render::{render_prepared, OutputFormat, RenderOptions};
use std::io::BufRead;

pub struct Session {
    path: String,
    /// The schedule plus its cached index/extent/kind bundle: every
    /// zoom/pan redraw reuses the prepared data instead of rebuilding it
    /// per frame (the whole point of the interactive mode staying fast
    /// on million-task traces).
    schedule: PreparedSchedule,
    view: ViewState,
    gray: bool,
    cmap: jedule_core::ColorMap,
}

impl Session {
    fn options(&self) -> RenderOptions {
        let mut o = RenderOptions::default()
            .with_format(OutputFormat::Ascii)
            .with_colormap(self.cmap.clone())
            .with_title(self.path.clone());
        if self.gray {
            o = o.grayscale();
        }
        o.cluster = self.view.cluster_filter;
        o.time_window = Some((self.view.viewport.t0, self.view.viewport.t1));
        o.align = AlignMode::Aligned;
        o
    }

    fn redraw(&self, out: &mut impl std::io::Write) {
        let bytes = render_prepared(&self.schedule, &self.options());
        let _ = out.write_all(&bytes);
        let vp = &self.view.viewport;
        let _ = writeln!(
            out,
            "[{}] window {:.4}..{:.4}  cluster {}  (h for help)",
            self.path,
            vp.t0,
            vp.t1,
            self.view
                .cluster_filter
                .map_or("all".to_string(), |c| c.to_string()),
        );
    }
}

/// Executes one command line against the session. Returns `false` on
/// quit. Extracted from the I/O loop so the interactive mode is unit-
/// testable.
pub fn execute(session: &mut Session, line: &str, out: &mut impl std::io::Write) -> bool {
    let mut it = line.split_whitespace();
    let Some(cmd) = it.next() else {
        return true;
    };
    let num = |s: Option<&str>| s.and_then(|v| v.parse::<f64>().ok());
    match cmd {
        "q" | "quit" => return false,
        "h" | "help" => {
            let _ = writeln!(
                out,
                "z <f> [c] zoom | p <dt> [dr] pan | w <t0> <t1> window | c <id|all> cluster\n\
                 i <t> <row> inspect | r reread | e <file> export | g gray\n\
                 m <cmap.xml> load color map (paper: maps swappable on the fly) | q quit"
            );
        }
        "z" => {
            let f = num(it.next()).unwrap_or(0.5);
            let center = num(it.next())
                .unwrap_or((session.view.viewport.t0 + session.view.viewport.t1) / 2.0);
            session.view.zoom_time(f, center);
            session.redraw(out);
        }
        "p" => {
            let dt = num(it.next()).unwrap_or(0.0);
            let dr = num(it.next()).unwrap_or(0.0);
            session.view.pan(dt, dr);
            session.redraw(out);
        }
        "w" => {
            if let (Some(t0), Some(t1)) = (num(it.next()), num(it.next())) {
                let (r0, r1) = (session.view.viewport.r0, session.view.viewport.r1);
                session.view.zoom_rect(t0, t1, r0, r1);
            }
            session.redraw(out);
        }
        "c" => {
            match it.next() {
                Some("all") | None => session.view.select_cluster(None),
                Some(id) => {
                    if let Ok(v) = id.parse() {
                        session.view.select_cluster(Some(v));
                    }
                }
            }
            session.redraw(out);
        }
        "i" => {
            if let (Some(t), Some(row)) = (num(it.next()), num(it.next())) {
                match session.view.hit_test(&session.schedule, t, row) {
                    HitTarget::Task(idx) => {
                        let info = task_info(&session.schedule, idx);
                        let _ = writeln!(
                            out,
                            "task {} [{}]: start {:.4}, end {:.4}, duration {:.4}",
                            info.id, info.kind, info.start, info.end, info.duration
                        );
                        for (cid, name, hosts) in &info.resources {
                            let _ = writeln!(out, "  cluster {cid} ({name}): hosts {hosts}");
                        }
                        for (k, v) in &info.attrs {
                            let _ = writeln!(out, "  {k} = {v}");
                        }
                    }
                    HitTarget::Idle { cluster, host } => {
                        let _ = writeln!(out, "idle: cluster {cluster}, host {host}");
                    }
                    HitTarget::Nothing => {
                        let _ = writeln!(out, "nothing there");
                    }
                }
            } else {
                let _ = writeln!(out, "usage: i <t> <row>");
            }
        }
        "r" => {
            // "Jedule also supports fast rereads … of the current
            // schedule file" — rerun the simulation, press r, see the
            // new schedule.
            match load_schedule(&session.path) {
                Ok(s) => {
                    session.schedule = PreparedSchedule::new(s);
                    session.view = ViewState::fit(&session.schedule);
                    session.redraw(out);
                }
                Err(e) => {
                    let _ = writeln!(out, "reread failed: {e}");
                }
            }
        }
        "e" => {
            if let Some(file) = it.next() {
                let format = std::path::Path::new(file)
                    .extension()
                    .and_then(|e| e.to_str())
                    .and_then(OutputFormat::parse)
                    .unwrap_or(OutputFormat::Png);
                let mut o = session.options();
                o.format = format;
                match std::fs::write(file, render_prepared(&session.schedule, &o)) {
                    Ok(()) => {
                        let _ = writeln!(out, "exported {file}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "export failed: {e}");
                    }
                }
            }
        }
        "g" => {
            session.gray = !session.gray;
            session.redraw(out);
        }
        "m" => {
            // "Color maps can also be changed on the fly" (paper, §IX).
            match it.next() {
                Some(file) => match std::fs::read_to_string(file)
                    .map_err(|e| e.to_string())
                    .and_then(|src| jedule_xmlio::read_colormap(&src).map_err(|e| e.to_string()))
                {
                    Ok(map) => {
                        session.cmap = map;
                        session.redraw(out);
                    }
                    Err(e) => {
                        let _ = writeln!(out, "cannot load color map: {e}");
                    }
                },
                None => {
                    session.cmap = jedule_core::ColorMap::standard();
                    session.redraw(out);
                }
            }
        }
        other => {
            let _ = writeln!(out, "unknown command {other:?}; h for help");
        }
    }
    true
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut input: Option<String> = None;
    let mut pack_sidecar = false;
    let mut sink = crate::obs_cli::ObsSink::default();
    while let Some(a) = args.next() {
        match a {
            "--pack-sidecar" => pack_sidecar = true,
            flag if sink.accept(flag, &mut args)? => {}
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if input.is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
                input = Some(positional.to_string());
            }
        }
    }
    let input = input.ok_or("view needs an input schedule file")?;
    // The collector stays installed for the whole interactive session;
    // exports are written when the session ends (q / EOF).
    let _obs = sink.arm();
    let schedule = {
        let _s = jedule_core::obs::span("ingest");
        if pack_sidecar {
            crate::args::load_prepared_sidecar(&input, 1)?
        } else {
            PreparedSchedule::new(load_schedule(&input)?)
        }
    };
    // Build the index/extent caches up front so even the very first
    // zoom or pan is served warm.
    schedule.warm();
    let view = ViewState::fit(&schedule);
    let mut session = Session {
        path: input,
        schedule,
        view,
        gray: false,
        cmap: jedule_core::ColorMap::standard(),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    session.redraw(&mut out);

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if !execute(&mut session, &line, &mut out) {
            break;
        }
    }
    sink.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_core::{Allocation, ScheduleBuilder, Task};

    fn session() -> Session {
        let schedule = ScheduleBuilder::new()
            .cluster(0, "c0", 4)
            .task(Task::new("a", "computation", 0.0, 10.0).on(Allocation::contiguous(0, 0, 4)))
            .build()
            .unwrap();
        let schedule = PreparedSchedule::new(schedule);
        let view = ViewState::fit(&schedule);
        Session {
            path: "/nonexistent.jed".into(),
            schedule,
            view,
            gray: false,
            cmap: jedule_core::ColorMap::standard(),
        }
    }

    fn run_cmd(s: &mut Session, cmd: &str) -> (bool, String) {
        let mut out = Vec::new();
        let more = execute(s, cmd, &mut out);
        (more, String::from_utf8_lossy(&out).into_owned())
    }

    #[test]
    fn quit_stops_loop() {
        let mut s = session();
        assert!(!run_cmd(&mut s, "q").0);
        assert!(run_cmd(&mut s, "").0);
    }

    #[test]
    fn zoom_changes_window() {
        let mut s = session();
        let before = s.view.viewport.time_span();
        run_cmd(&mut s, "z 0.5");
        assert!(s.view.viewport.time_span() < before);
    }

    #[test]
    fn inspect_prints_task_details() {
        let mut s = session();
        let (_, out) = run_cmd(&mut s, "i 5 1");
        assert!(out.contains("task a"), "{out}");
        assert!(out.contains("hosts 0-3"), "{out}");
    }

    #[test]
    fn inspect_misses_politely() {
        let mut s = session();
        let (_, out) = run_cmd(&mut s, "i 5 99");
        assert!(out.contains("nothing"), "{out}");
    }

    #[test]
    fn cluster_selection_roundtrip() {
        let mut s = session();
        run_cmd(&mut s, "c 0");
        assert_eq!(s.view.cluster_filter, Some(0));
        run_cmd(&mut s, "c all");
        assert_eq!(s.view.cluster_filter, None);
    }

    #[test]
    fn reread_of_missing_file_reports() {
        let mut s = session();
        let (more, out) = run_cmd(&mut s, "r");
        assert!(more);
        assert!(out.contains("reread failed"), "{out}");
    }

    #[test]
    fn gray_toggles() {
        let mut s = session();
        run_cmd(&mut s, "g");
        assert!(s.gray);
        run_cmd(&mut s, "g");
        assert!(!s.gray);
    }

    #[test]
    fn export_writes_file() {
        let mut s = session();
        let dir = std::env::temp_dir().join("jedule_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("view.svg");
        let (_, out) = run_cmd(&mut s, &format!("e {}", path.display()));
        assert!(out.contains("exported"), "{out}");
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn help_lists_commands() {
        let mut s = session();
        let (_, out) = run_cmd(&mut s, "h");
        assert!(out.contains("zoom") && out.contains("inspect"));
    }

    #[test]
    fn unknown_command_hint() {
        let mut s = session();
        let (_, out) = run_cmd(&mut s, "bogus");
        assert!(out.contains("unknown command"));
    }
}
