//! `jedule serve` — the resident render service (DESIGN.md §6b–c).
//!
//! Binds the epoll HTTP server from `jedule-serve`, wires SIGTERM /
//! SIGINT to its graceful-shutdown flag, and after the drain optionally
//! flushes the process-lifetime metrics registry as `jedule-metrics-v1`
//! JSON (`--metrics-json`, `-` for stdout) so a supervised run leaves
//! the same machine-readable record a batch run would.

use crate::args::Args;
use crate::obs_cli::emit_output;
use jedule_serve::{signal, ServeConfig, Server};

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut config = ServeConfig::default();
    let mut metrics_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a {
            "--addr" => config.addr = args.value(a)?.to_string(),
            "--root" => config.root = args.value(a)?.into(),
            "--cache-cap" => config.cache_cap = args.parse(a)?,
            "--body-cache-cap" => config.body_cache_cap = Some(args.parse(a)?),
            "--tile-cache-cap" => config.tile_cache_cap = args.parse(a)?,
            "--trace-keep" => config.trace_keep = args.parse(a)?,
            "--access-log" => config.access_log = Some(args.value(a)?.to_string()),
            "--access-log-keep" => config.access_log_keep = args.parse(a)?,
            "--slow-ms" => config.slow_ms = Some(args.parse(a)?),
            "-j" | "--threads" => config.workers = args.parse(a)?,
            "--metrics-json" => metrics_out = Some(args.value(a)?.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                return Err(format!(
                    "unexpected argument {positional:?} (serve takes only flags)"
                ))
            }
        }
    }

    let server = Server::bind(config)?;
    let registry = server.registry();
    signal::install_term_handler(server.shutdown_flag());
    eprintln!(
        "jedule serve: listening on http://{} — /healthz /render /explore /meta /metrics \
         /metrics.json /debug/dash /debug/log /debug/trace/<id>; \
         SIGTERM drains in-flight requests and exits",
        server.local_addr()
    );
    server.run()?;
    if let Some(p) = &metrics_out {
        emit_output(p, &registry.to_metrics_json(), "metrics")?;
    }
    eprintln!("jedule serve: drained, shut down cleanly");
    Ok(())
}
