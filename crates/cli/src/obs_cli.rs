//! Shared `--timings` / `--profile` / `--metrics-json` plumbing.
//!
//! Every subcommand that renders (`render`, `compare`, `view`) accepts
//! the same three observability flags; [`ObsSink`] owns the collector
//! behind them so each command only arms it, does its work, and calls
//! [`ObsSink::finish`]. All three outputs are views over one recorded
//! span tree — the `--timings` text, the Chrome trace and the metrics
//! JSON can never disagree.

use jedule_core::obs::{Collector, InstallGuard};

/// Collects the observability flags of a subcommand and, once armed,
/// the recording they feed.
#[derive(Default)]
pub struct ObsSink {
    /// `--timings`: print the span tree to stderr.
    pub timings: bool,
    /// `--profile <file>`: write Chrome trace-event JSON.
    pub trace_out: Option<String>,
    /// `--metrics-json <file>`: write flat `jedule-metrics-v1` JSON.
    pub metrics_out: Option<String>,
    collector: Option<Collector>,
}

impl ObsSink {
    /// Tries to consume one observability flag; returns whether `flag`
    /// was one (so command arg loops can delegate unknown flags here).
    pub fn accept(&mut self, flag: &str, args: &mut crate::args::Args) -> Result<bool, String> {
        match flag {
            "--timings" => self.timings = true,
            "--profile" => self.trace_out = Some(args.value(flag)?.to_string()),
            "--metrics-json" => self.metrics_out = Some(args.value(flag)?.to_string()),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Whether any observability output was requested.
    pub fn wanted(&self) -> bool {
        self.timings || self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Installs a collector on the current thread when any output was
    /// requested. Keep the guard alive for the instrumented region.
    pub fn arm(&mut self) -> Option<InstallGuard> {
        if !self.wanted() {
            return None;
        }
        let col = Collector::new();
        let guard = col.install();
        self.collector = Some(col);
        Some(guard)
    }

    /// Emits everything that was requested: the `--timings` tree to
    /// stderr, the trace/metrics outputs to their files — or to stdout
    /// when the path is `-`. Call after the spans of interest have
    /// closed.
    pub fn finish(&self) -> Result<(), String> {
        let Some(col) = &self.collector else {
            return Ok(());
        };
        let report = col.report();
        if self.timings {
            eprint!("{}", report.tree_report());
        }
        if let Some(p) = &self.trace_out {
            emit_output(p, &report.to_chrome_trace(), "trace")?;
        }
        if let Some(p) = &self.metrics_out {
            emit_output(p, &report.to_metrics_json(), "metrics")?;
        }
        Ok(())
    }
}

/// Writes an observability artifact to `path`, with the conventional
/// `-` meaning stdout — so `--metrics-json -` / `--profile -` pipe
/// straight into CI tooling without temp files. The "wrote …" note goes
/// to stderr (and only for real files), keeping stdout clean JSON.
pub fn emit_output(path: &str, content: &str, what: &str) -> Result<(), String> {
    if path == "-" {
        print!("{content}");
        return Ok(());
    }
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("wrote {what} {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    #[test]
    fn accepts_only_obs_flags() {
        let argv: Vec<String> = [
            "--timings",
            "--profile",
            "t.json",
            "--metrics-json",
            "m.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut args = Args::new(&argv);
        let mut sink = ObsSink::default();
        while let Some(a) = args.next() {
            assert!(sink.accept(a, &mut args).unwrap(), "{a} not accepted");
        }
        assert!(sink.timings);
        assert_eq!(sink.trace_out.as_deref(), Some("t.json"));
        assert_eq!(sink.metrics_out.as_deref(), Some("m.json"));
        let mut other = Args::new(&argv);
        other.next();
        assert!(!sink.accept("--width", &mut other).unwrap());
    }

    #[test]
    fn unarmed_sink_finishes_quietly() {
        let mut sink = ObsSink::default();
        assert!(!sink.wanted());
        assert!(sink.arm().is_none());
        sink.finish().unwrap();
    }

    #[test]
    fn armed_sink_records_and_writes() {
        let dir = std::env::temp_dir().join("jedule_obs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        let mut sink = ObsSink {
            timings: false,
            trace_out: Some(trace.to_string_lossy().into_owned()),
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            collector: None,
        };
        {
            let _g = sink.arm().expect("armed");
            let _s = jedule_core::obs::span("stage");
            jedule_core::obs::count("things", 2);
        }
        sink.finish().unwrap();
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"traceEvents\"") && t.contains("\"stage\""));
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("jedule-metrics-v1") && m.contains("\"things\":2"));
    }
}
