//! `jedule info` — validation and statistics (the "sanity checks" the
//! paper motivates the tool with).

use crate::args::{load_schedule, Args};
use jedule_core::stats::{idle_holes, schedule_stats};
use jedule_core::validate;
use jedule_xmlio::json::{obj, Json};

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut input: Option<String> = None;
    let mut as_json = false;
    let mut hole_min = 0.0f64;

    while let Some(a) = args.next() {
        match a {
            "--json" => as_json = true,
            "--holes" => hole_min = args.parse(a)?,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            p => input = Some(p.to_string()),
        }
    }
    let input = input.ok_or("info needs an input schedule file")?;
    let schedule = load_schedule(&input)?;

    let issues = validate(&schedule);
    let stats = schedule_stats(&schedule);
    let holes = idle_holes(&schedule, hole_min.max(1e-9));
    let pack = pack_status(&input);

    if as_json {
        let per_cluster: Vec<Json> = stats
            .per_cluster
            .iter()
            .map(|c| {
                obj([
                    ("cluster", Json::Num(f64::from(c.cluster))),
                    ("utilization", Json::Num(c.utilization)),
                    ("idle_time", Json::Num(c.idle_time)),
                ])
            })
            .collect();
        let doc = obj([
            ("file", Json::Str(input.clone())),
            ("tasks", Json::Num(stats.task_count as f64)),
            ("clusters", Json::Num(schedule.clusters.len() as f64)),
            ("hosts", Json::Num(f64::from(schedule.total_hosts()))),
            ("makespan", Json::Num(stats.makespan)),
            ("total_area", Json::Num(stats.total_area)),
            ("utilization", Json::Num(stats.utilization)),
            ("holes", Json::Num(holes.len() as f64)),
            ("issues", Json::Num(issues.len() as f64)),
            ("per_cluster", Json::Arr(per_cluster)),
            (
                "pack",
                match &pack {
                    PackStatus::Absent => obj([("present", Json::Bool(false))]),
                    PackStatus::Ok { version, fresh } => obj([
                        ("present", Json::Bool(true)),
                        ("version", Json::Num(f64::from(*version))),
                        ("fresh", Json::Bool(*fresh)),
                    ]),
                    PackStatus::Invalid(e) => obj([
                        ("present", Json::Bool(true)),
                        ("error", Json::Str(e.clone())),
                    ]),
                },
            ),
        ]);
        println!("{}", doc.to_string_compact());
    } else {
        println!("schedule : {input}");
        println!("tasks    : {}", stats.task_count);
        println!(
            "clusters : {} ({} hosts total)",
            schedule.clusters.len(),
            schedule.total_hosts()
        );
        println!("makespan : {:.6}", stats.makespan);
        println!("area     : {:.6}", stats.total_area);
        println!("util     : {:.2} %", stats.utilization * 100.0);
        for c in &stats.per_cluster {
            println!(
                "  cluster {:>3}: utilization {:>6.2} %, idle {:.4}",
                c.cluster,
                c.utilization * 100.0,
                c.idle_time
            );
        }
        println!("idle holes (> {hole_min}s): {}", holes.len());
        match &pack {
            PackStatus::Absent => println!("pack     : none (`jedule pack` builds one)"),
            PackStatus::Ok { version, fresh } => println!(
                "pack     : v{version}, {}",
                if *fresh {
                    "fresh"
                } else {
                    "STALE (input changed)"
                }
            ),
            PackStatus::Invalid(e) => println!("pack     : invalid ({e})"),
        }
        for (k, v) in schedule.meta.iter() {
            println!("meta     : {k} = {v}");
        }
        if issues.is_empty() {
            println!("validation: OK");
        } else {
            println!("validation: {} issue(s)", issues.len());
            for i in &issues {
                println!("  [{}] {}", if i.fatal { "FATAL" } else { "warn" }, i.error);
            }
            if issues.iter().any(|i| i.fatal) {
                return Err("schedule has fatal validation issues".into());
            }
        }
    }
    Ok(())
}

/// What `info` reports about the input's `.jpack` sidecar.
enum PackStatus {
    Absent,
    Ok { version: u32, fresh: bool },
    Invalid(String),
}

/// Header-only freshness probe of the input's sidecar: present/absent,
/// format version, and whether the stored source digest still matches
/// the input bytes (a stale pack is valid but will be ignored and
/// rebuilt by `--pack-sidecar` runs).
fn pack_status(input: &str) -> PackStatus {
    use jedule_core::snap;
    let sidecar = snap::sidecar_path(std::path::Path::new(input));
    if !sidecar.exists() {
        return PackStatus::Absent;
    }
    match snap::peek(&sidecar) {
        Ok(info) => {
            let fresh = std::fs::read(input)
                .map(|b| snap::source_digest(&b) == info.source_digest)
                .unwrap_or(false);
            PackStatus::Ok {
                version: info.version,
                fresh,
            }
        }
        Err(e) => PackStatus::Invalid(e.to_string()),
    }
}
