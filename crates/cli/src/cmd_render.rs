//! `jedule render` — the batch command-line mode (paper, §II-D2).

use crate::args::{load_prepared_sidecar, load_schedule_threads, Args};
use crate::obs_cli::ObsSink;
use jedule_core::{obs, AlignMode, PreparedSchedule};
use jedule_render::{render_prepared, LodMode, OutputFormat, RenderOptions};
use std::path::PathBuf;

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut args = Args::new(argv);
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut opts = RenderOptions::default();
    let mut gray = false;
    let mut cmap_path: Option<String> = None;
    let mut only_types: Vec<String> = Vec::new();
    let mut pack_sidecar = false;
    let mut sink = ObsSink::default();

    while let Some(a) = args.next() {
        match a {
            "-o" | "--output" => output = Some(args.value(a)?.to_string()),
            "-f" | "--format" => {
                let name = args.value(a)?;
                opts.format =
                    OutputFormat::parse(name).ok_or_else(|| format!("unknown format {name:?}"))?;
            }
            "-W" | "--width" => opts.width = args.parse(a)?,
            "-H" | "--height" => opts.height = Some(args.parse(a)?),
            "-c" | "--cmap" => cmap_path = Some(args.value(a)?.to_string()),
            "--gray" => gray = true,
            "--scaled" => opts.align = AlignMode::Scaled,
            "--aligned" => opts.align = AlignMode::Aligned,
            "--cluster" => opts.cluster = Some(args.parse(a)?),
            "--window" => {
                let t0: f64 = args.parse(a)?;
                let t1: f64 = args.parse(a)?;
                opts.time_window = Some((t0, t1));
            }
            "--title" => opts.title = Some(args.value(a)?.to_string()),
            "--no-meta" => opts.show_meta = false,
            "--no-labels" => opts.show_labels = false,
            "--no-composites" => opts.show_composites = false,
            "--util-profile" => opts.show_profile = true,
            "--only-type" => only_types.push(args.value(a)?.to_string()),
            "--pack-sidecar" => pack_sidecar = true,
            "--lod" => {
                let name = args.value(a)?;
                opts.lod = LodMode::parse(name)
                    .ok_or_else(|| format!("unknown LOD mode {name:?} (auto, off, force)"))?;
            }
            "-j" | "--threads" => opts.threads = args.parse(a)?,
            flag if sink.accept(flag, &mut args)? => {}
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if input.is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
                input = Some(positional.to_string());
            }
        }
    }

    opts.validate()?;

    let input = input.ok_or("render needs an input schedule file")?;
    let _obs = sink.arm();

    // The `-j` knob drives ingest (chunked parallel parse for the
    // line-oriented formats) as well as the raster/encode stages. With
    // `--pack-sidecar` the ingest span covers the sidecar load (or the
    // parse + sidecar write on a miss) instead of the text parse.
    let prepared = {
        let _s = obs::span("ingest");
        let prepared = if pack_sidecar {
            load_prepared_sidecar(&input, opts.threads)?
        } else {
            PreparedSchedule::new(load_schedule_threads(&input, opts.threads)?)
        };
        if only_types.is_empty() {
            prepared
        } else {
            // Type filtering rewrites the task list, so it has to
            // materialize even a packed snapshot.
            let filtered = jedule_core::transform::filter_types(prepared.schedule(), |k| {
                only_types.iter().any(|t| t == k)
            });
            PreparedSchedule::new(filtered)
        }
    };

    if let Some(p) = cmap_path {
        let src = std::fs::read_to_string(&p).map_err(|e| format!("cannot read {p}: {e}"))?;
        opts.colormap = jedule_xmlio::read_colormap(&src).map_err(|e| format!("{p}: {e}"))?;
    }
    if gray {
        opts.colormap = opts.colormap.to_grayscale();
    }

    // The prepared path is pixel-identical to a cold render (property-
    // tested) and its lazily built caches carry the `prepare.*` spans,
    // so a profiled batch render shows every pipeline stage.
    let bytes = render_prepared(&prepared, &opts);
    sink.finish()?;
    match output {
        Some(path) => {
            std::fs::write(&path, bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None if opts.format == OutputFormat::Ascii => {
            print!("{}", String::from_utf8_lossy(&bytes));
        }
        None => {
            let mut path = PathBuf::from(&input);
            path.set_extension(opts.format.extension());
            let path = path.to_string_lossy().into_owned();
            std::fs::write(&path, bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    Ok(())
}
