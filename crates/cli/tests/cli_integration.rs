//! End-to-end tests of the `jedule` binary, driving it exactly as a user
//! would (the paper's command-line batch mode, §II-D2).

use std::path::PathBuf;
use std::process::{Command, Output};

fn jedule(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jedule"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn jedule_with_stdin(args: &[&str], stdin: &str) -> Output {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_jedule"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("binary exits")
}

fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jedule_cli_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Writes a small demo schedule and returns its path.
fn demo_schedule(dir: &std::path::Path) -> PathBuf {
    let xml = r#"<jedule version="0.2">
  <jedule_meta><info name="alg" value="demo"/></jedule_meta>
  <platform>
    <cluster id="0" name="c0" hosts="8"/>
    <cluster id="1" name="c1" hosts="4"/>
  </platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.0"/>
      <node_property name="end_time" value="4.0"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="0" nb="8"/></host_lists>
      </configuration>
    </node_statistics>
    <node_statistics>
      <node_property name="id" value="2"/>
      <node_property name="type" value="transfer"/>
      <node_property name="start_time" value="3.0"/>
      <node_property name="end_time" value="5.0"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="2" nb="2"/></host_lists>
      </configuration>
      <configuration>
        <conf_property name="cluster_id" value="1"/>
        <host_lists><hosts start="0" nb="1"/></host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>"#;
    let path = dir.join("demo.jed");
    std::fs::write(&path, xml).expect("write demo");
    path
}

#[test]
fn help_prints_usage() {
    let out = jedule(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("render"));
    assert!(text.contains("interactive"));
    assert!(text.contains("html"), "help must list the html format");
    assert!(
        text.contains("/explore"),
        "help must list the explorer endpoint"
    );
    assert!(text.contains("/meta"), "help must list the meta endpoint");
}

#[test]
fn no_args_fails_with_usage() {
    let out = jedule(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = jedule(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn render_produces_each_format() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    for (fmt, magic) in [
        ("svg", &b"<svg"[..]),
        ("png", &b"\x89PNG"[..]),
        ("pdf", &b"%PDF"[..]),
        ("ppm", &b"P6"[..]),
    ] {
        let out_path = dir.join(format!("demo_out.{fmt}"));
        let out = jedule(&[
            "render",
            input.to_str().unwrap(),
            "-f",
            fmt,
            "-o",
            out_path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{fmt}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&out_path).expect("output written");
        assert!(bytes.starts_with(magic), "{fmt} magic mismatch");
    }
}

#[test]
fn render_html_is_one_self_contained_file() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let out_path = dir.join("demo_out.html");
    let out = jedule(&[
        "render",
        input.to_str().unwrap(),
        "-f",
        "html",
        "-o",
        out_path.to_str().unwrap(),
        "--title",
        "demo explorer",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let page = std::fs::read_to_string(&out_path).expect("output written");
    assert!(page.starts_with("<!DOCTYPE html>") || page.starts_with("<!doctype html>"));
    assert!(page.contains("demo explorer"));
    assert!(page.contains("<svg xmlns="), "the SVG scene is inlined");
    // Single-file discipline: no external fetches besides the SVG
    // namespace declaration, no leftover template placeholders.
    for line in page.lines() {
        let l = line.replace("xmlns=\"http://www.w3.org/2000/svg\"", "");
        assert!(
            !l.contains("http://") && !l.contains("https://"),
            "external URL: {line}"
        );
        assert!(!l.contains("src="), "external asset: {line}");
        assert!(!l.contains("@import"), "external stylesheet: {line}");
    }
    assert!(!page.contains("__JEDULE_"));
}

#[test]
fn render_ascii_to_stdout() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let out = jedule(&["render", input.to_str().unwrap(), "-f", "ascii"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains('\n'));
}

#[test]
fn render_supports_jpeg() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let out_path = dir.join("demo.jpg");
    let out = jedule(&[
        "render",
        input.to_str().unwrap(),
        "-f",
        "jpeg",
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&out_path).unwrap();
    assert_eq!(&bytes[..2], &[0xff, 0xd8]); // SOI
    assert_eq!(&bytes[bytes.len() - 2..], &[0xff, 0xd9]); // EOI
}

#[test]
fn render_rejects_unknown_format() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let out = jedule(&["render", input.to_str().unwrap(), "-f", "bmp"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown format"));
}

#[test]
fn info_reports_stats_and_json() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let out = jedule(&["info", input.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tasks    : 2"));
    assert!(text.contains("validation: OK"));

    let out = jedule(&["info", input.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{'));
    assert!(text.contains("\"tasks\":2"));
}

#[test]
fn convert_roundtrips_formats() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let csv = dir.join("demo.csv");
    let jsonl = dir.join("demo.jsonl");
    let back = dir.join("back.jed");
    assert!(jedule(&[
        "convert",
        input.to_str().unwrap(),
        "-o",
        csv.to_str().unwrap()
    ])
    .status
    .success());
    assert!(jedule(&[
        "convert",
        csv.to_str().unwrap(),
        "-o",
        jsonl.to_str().unwrap()
    ])
    .status
    .success());
    assert!(jedule(&[
        "convert",
        jsonl.to_str().unwrap(),
        "-o",
        back.to_str().unwrap()
    ])
    .status
    .success());
    // Semantically identical after the full tour.
    let a = jedule_xmlio::read_schedule(&std::fs::read_to_string(&input).unwrap()).unwrap();
    let b = jedule_xmlio::read_schedule(&std::fs::read_to_string(&back).unwrap()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn compare_two_schedules() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let out_svg = dir.join("cmp.svg");
    let out = jedule(&[
        "compare",
        input.to_str().unwrap(),
        input.to_str().unwrap(),
        "-o",
        out_svg.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("makespan"));
    assert!(std::fs::read_to_string(&out_svg).unwrap().contains("<svg"));
}

#[test]
fn cmap_emits_fig2() {
    let out = jedule(&["cmap"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("standard_map"));
    assert!(text.contains("0000ff"));
    // And it parses back.
    assert!(jedule_xmlio::read_colormap(&text).is_ok());
}

#[test]
fn view_session_scripted() {
    let dir = tmp();
    let input = demo_schedule(&dir);
    let export = dir.join("view_export.svg");
    let script = format!("h\nz 0.5\ni 3.5 1\nc 1\nc all\ne {}\nq\n", export.display());
    let out = jedule_with_stdin(&["view", input.to_str().unwrap()], &script);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("task 1"), "inspect output missing: {text}");
    assert!(text.contains("exported"));
    assert!(std::fs::read_to_string(&export).unwrap().contains("<svg"));
}

#[test]
fn missing_file_reports_error() {
    let out = jedule(&["render", "/nonexistent/schedule.jed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn invalid_schedule_fails_info() {
    let dir = tmp();
    let path = dir.join("broken.jed");
    std::fs::write(
        &path,
        r#"<jedule><platform><cluster id="0" hosts="2"/></platform>
<node_infos><node_statistics>
  <node_property name="id" value="1"/>
  <node_property name="type" value="t"/>
  <node_property name="start_time" value="0"/>
  <node_property name="end_time" value="1"/>
  <configuration>
    <conf_property name="cluster_id" value="0"/>
    <host_lists><hosts start="0" nb="9"/></host_lists>
  </configuration>
</node_statistics></node_infos></jedule>"#,
    )
    .unwrap();
    let out = jedule(&["info", path.to_str().unwrap()]);
    assert!(!out.status.success());
}
