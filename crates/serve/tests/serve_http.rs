//! End-to-end tests of the render service over real sockets: route
//! behavior, cache identity (served bytes == cold render bytes), the
//! hit/miss partition invariant under concurrency, the Prometheus
//! surface, per-request traces, and graceful shutdown.

use jedule_core::{Allocation, ScheduleBuilder, Task};
use jedule_serve::{render_options_from_params, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// A tiny deterministic schedule written as CSV into a fresh temp root.
fn temp_root(tag: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("jedule_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let s = ScheduleBuilder::new()
        .cluster(0, "c0", 8)
        .task(Task::new("a", "computation", 0.0, 4.0).on(Allocation::contiguous(0, 0, 4)))
        .task(Task::new("b", "transfer", 2.0, 6.0).on(Allocation::contiguous(0, 2, 3)))
        .task(Task::new("c", "io", 1.0, 3.0).on(Allocation::contiguous(0, 5, 2)))
        .build()
        .unwrap();
    let csv = jedule_xmlio::write_schedule_csv(&s);
    std::fs::write(dir.join("sched.csv"), &csv).unwrap();
    (dir, csv)
}

fn start(tag: &str) -> (ServerHandle, PathBuf, String) {
    start_with(tag, |_| {})
}

/// Like [`start`], with a hook to adjust the config (cache caps) or the
/// root (drop a `.jpack` sidecar next to the input) before binding.
fn start_with(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (ServerHandle, PathBuf, String) {
    let (root, csv) = temp_root(tag);
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        root: root.clone(),
        workers: 4,
        cache_cap: 16,
        body_cache_cap: None,
        tile_cache_cap: 256,
        trace_keep: 8,
        ..ServeConfig::default()
    };
    tweak(&mut config);
    let server = Server::bind(config).unwrap();
    (server.spawn(), root, csv)
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn get(addr: SocketAddr, target: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    }
}

/// Sends one request on an existing connection and reads one
/// Content-Length-framed response, leaving the connection usable.
fn get_keep_alive(stream: &mut TcpStream, target: &str) -> Reply {
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    read_framed(stream)
}

fn read_framed(stream: &mut TcpStream) -> Reply {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    let head_end = loop {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "peer closed mid-head");
        raw.push(byte[0]);
        if raw.ends_with(b"\r\n\r\n") {
            break raw.len();
        }
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("Content-Length"))
        .map(|(_, v)| v.parse().unwrap())
        .unwrap();
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    Reply {
        status,
        headers,
        body,
    }
}

#[test]
fn healthz_answers_with_request_ids() {
    let (server, _root, _csv) = start("healthz");
    let a = get(server.addr(), "/healthz");
    let b = get(server.addr(), "/healthz");
    assert_eq!(a.status, 200);
    assert_eq!(a.body, b"ok\n");
    let ida: u64 = a.header("X-Jedule-Request-Id").unwrap().parse().unwrap();
    let idb: u64 = b.header("X-Jedule-Request-Id").unwrap().parse().unwrap();
    assert_ne!(ida, idb, "each request gets its own id");
    assert_eq!(get(server.addr(), "/").status, 200);
    assert_eq!(get(server.addr(), "/nope").status, 404);
    server.shutdown().unwrap();
}

#[test]
fn render_bytes_match_cold_render_and_cache_hits() {
    let (server, root, csv) = start("identity");
    let first = get(server.addr(), "/render?file=sched.csv");
    let second = get(server.addr(), "/render?file=sched.csv");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("Content-Type"), Some("image/svg+xml"));
    assert_eq!(
        first.body, second.body,
        "cached reply must be byte-identical"
    );

    // The service body must equal a cold, single-threaded render of the
    // same input with the same canonical options.
    let schedule = jedule_serve::ingest::parse_schedule(&csv, &root.join("sched.csv")).unwrap();
    let (opts, _key) = render_options_from_params(None, None, None, None).unwrap();
    let cold = jedule_render::render(&schedule, &opts);
    assert_eq!(first.body, cold);

    let reg = server.registry();
    assert_eq!(reg.counter_value("jedule_render_cache_hits_total", &[]), 1);
    assert_eq!(
        reg.counter_value("jedule_render_cache_misses_total", &[]),
        1
    );
    assert_eq!(
        reg.counter_value("jedule_prepared_cache_misses_total", &[]),
        1
    );
    server.shutdown().unwrap();
}

#[test]
fn windowed_png_render_matches_cold_render() {
    let (server, root, csv) = start("png");
    let target = "/render?file=sched.csv&fmt=png&width=400&window=1:5&lod=off";
    let reply = get(server.addr(), target);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("Content-Type"), Some("image/png"));
    assert_eq!(&reply.body[..8], b"\x89PNG\r\n\x1a\n");

    let schedule = jedule_serve::ingest::parse_schedule(&csv, &root.join("sched.csv")).unwrap();
    let (opts, _) =
        render_options_from_params(Some("png"), Some("400"), Some("1:5"), Some("off")).unwrap();
    assert_eq!(reply.body, jedule_render::render(&schedule, &opts));
    server.shutdown().unwrap();
}

#[test]
fn concurrent_renders_are_identical_and_counters_partition() {
    let (server, root, csv) = start("concurrent");
    let addr = server.addr();
    const N: usize = 8;
    let bodies: Vec<Vec<u8>> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..N)
            .map(|_| s.spawn(move || get(addr, "/render?file=sched.csv&width=500")))
            .collect();
        joins
            .into_iter()
            .map(|j| {
                let r = j.join().unwrap();
                assert_eq!(r.status, 200);
                r.body
            })
            .collect()
    });
    let schedule = jedule_serve::ingest::parse_schedule(&csv, &root.join("sched.csv")).unwrap();
    let (opts, _) = render_options_from_params(None, Some("500"), None, None).unwrap();
    let cold = jedule_render::render(&schedule, &opts);
    for body in &bodies {
        assert_eq!(body, &cold, "every concurrent reply equals the cold render");
    }
    let reg = server.registry();
    let hits = reg.counter_value("jedule_render_cache_hits_total", &[]);
    let misses = reg.counter_value("jedule_render_cache_misses_total", &[]);
    assert_eq!(
        hits + misses,
        N as u64,
        "hit/miss counters partition render requests exactly (hits {hits}, misses {misses})"
    );
    assert!(misses >= 1);
    assert_eq!(
        reg.counter_value(
            "jedule_http_requests_total",
            &[("route", "/render"), ("status", "200")]
        ),
        N as u64
    );
    server.shutdown().unwrap();
}

#[test]
fn metrics_exposition_covers_requests_and_latency() {
    let (server, _root, _csv) = start("metrics");
    assert_eq!(get(server.addr(), "/render?file=sched.csv").status, 200);
    assert_eq!(get(server.addr(), "/healthz").status, 200);
    let m = get(server.addr(), "/metrics");
    assert_eq!(m.status, 200);
    assert!(m.header("Content-Type").unwrap().starts_with("text/plain"));
    let text = String::from_utf8(m.body).unwrap();
    assert!(text.contains("# TYPE jedule_http_requests_total counter"));
    assert!(text.contains("jedule_http_requests_total{route=\"/render\",status=\"200\"} 1"));
    assert!(text.contains("# TYPE jedule_http_request_duration_seconds histogram"));
    assert!(text
        .contains("jedule_http_request_duration_seconds_bucket{route=\"/render\",le=\"+Inf\"} 1"));
    assert!(text.contains("jedule_stage_duration_seconds_bucket{stage=\"serve.render\""));
    assert!(text.contains("jedule_uptime_seconds"));
    server.shutdown().unwrap();
}

#[test]
fn debug_trace_replays_recent_requests() {
    let (server, _root, _csv) = start("trace");
    let r = get(server.addr(), "/render?file=sched.csv");
    let id: u64 = r.header("X-Jedule-Request-Id").unwrap().parse().unwrap();
    let trace = get(server.addr(), &format!("/debug/trace/{id}"));
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("Content-Type"), Some("application/json"));
    let json = String::from_utf8(trace.body).unwrap();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("serve.request"));
    assert!(json.contains("serve.render"));
    assert_eq!(get(server.addr(), "/debug/trace/999999").status, 404);
    assert_eq!(get(server.addr(), "/debug/trace/junk").status, 400);
    server.shutdown().unwrap();
}

#[test]
fn inputs_outside_the_root_are_rejected() {
    let (server, _root, _csv) = start("jail");
    assert_eq!(get(server.addr(), "/render").status, 400);
    assert_eq!(
        get(server.addr(), "/render?file=../../etc/passwd").status,
        404
    );
    assert_eq!(get(server.addr(), "/render?file=/etc/passwd").status, 404);
    assert_eq!(get(server.addr(), "/render?file=missing.csv").status, 404);
    assert_eq!(
        get(server.addr(), "/render?file=sched.csv&fmt=gif").status,
        400
    );
    assert_eq!(
        get(server.addr(), "/render?file=sched.csv&window=9:1").status,
        400
    );
    server.shutdown().unwrap();
}

#[test]
fn keep_alive_reuses_one_connection_for_many_requests() {
    let (server, _root, _csv) = start("keepalive");
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut ids = Vec::new();
    for target in [
        "/healthz",
        "/render?file=sched.csv",
        "/render?file=sched.csv",
    ] {
        let r = get_keep_alive(&mut stream, target);
        assert_eq!(r.status, 200);
        assert_eq!(r.header("Connection"), Some("keep-alive"));
        ids.push(
            r.header("X-Jedule-Request-Id")
                .unwrap()
                .parse::<u64>()
                .unwrap(),
        );
    }
    assert!(
        ids.windows(2).all(|w| w[0] != w[1]),
        "distinct ids: {ids:?}"
    );

    // Two pipelined requests in one write come back in order.
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\n\r\nGET / HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let first = read_framed(&mut stream);
    assert_eq!(first.body, b"ok\n");
    let second = read_framed(&mut stream);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("Connection"), Some("close"));
    server.shutdown().unwrap();
}

#[test]
fn etag_revalidation_returns_304_with_no_body() {
    let (server, _root, _csv) = start("etag");
    let addr = server.addr();
    let first = get(addr, "/render?file=sched.csv");
    assert_eq!(first.status, 200);
    let etag = first
        .header("ETag")
        .expect("render carries ETag")
        .to_string();
    assert!(etag.starts_with('"') && etag.ends_with('"'), "{etag}");

    // Identical request + If-None-Match → 304, empty body, ETag echoed.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /render?file=sched.csv HTTP/1.1\r\nHost: t\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let not_modified = read_framed(&mut stream);
    assert_eq!(not_modified.status, 304);
    assert!(not_modified.body.is_empty());
    assert_eq!(not_modified.header("ETag"), Some(etag.as_str()));
    assert!(not_modified.header("X-Jedule-Request-Id").is_some());

    // A stale validator still gets the full body…
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /render?file=sched.csv HTTP/1.1\r\nHost: t\r\nIf-None-Match: \"stale\"\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    assert_eq!(read_framed(&mut stream).status, 200);

    // …and different options produce a different ETag.
    let png = get(addr, "/render?file=sched.csv&fmt=png");
    assert_ne!(png.header("ETag"), Some(etag.as_str()));

    let reg = server.registry();
    assert_eq!(
        reg.counter_value("jedule_render_not_modified_total", &[]),
        1
    );
    // 304s sit outside the body-cache hit/miss partition.
    let hits = reg.counter_value("jedule_render_cache_hits_total", &[]);
    let misses = reg.counter_value("jedule_render_cache_misses_total", &[]);
    assert_eq!(
        hits + misses,
        3,
        "hits {hits} + misses {misses} cover the three 200s"
    );
    server.shutdown().unwrap();
}

#[test]
fn tile_counters_partition_lookups_exactly() {
    let (server, _root, _csv) = start("tilecount");
    let addr = server.addr();
    // Distinct windows defeat the body cache key but share the store.
    for t0 in 0..4 {
        let target = format!("/render?file=sched.csv&window={t0}:{}", t0 + 4);
        assert_eq!(get(addr, &target).status, 200);
        assert_eq!(get(addr, &target).status, 200);
    }
    let reg = server.registry();
    let hits = reg.counter_total("jedule_tile_cache_hits_total");
    let misses = reg.counter_total("jedule_tile_cache_misses_total");
    let lookups = reg.counter_total("jedule_tile_lookups_total");
    assert_eq!(hits + misses, lookups, "hit/miss partitions tile lookups");
    assert!(misses >= 4, "each distinct window shards at least once");
    server.shutdown().unwrap();
}

/// Packs the served input exactly as `jedule pack` would — the prepared
/// form of the parsed schedule, stamped with the digest of `stamp` (pass
/// the real input bytes for a fresh sidecar, anything else for a stale
/// one).
fn write_sidecar(root: &std::path::Path, csv: &str, stamp: &[u8]) {
    use jedule_core::snap;
    let input = root.join("sched.csv");
    let schedule = jedule_serve::ingest::parse_schedule(csv, &input).unwrap();
    let prep = jedule_core::PreparedSchedule::new(schedule);
    snap::write_pack_file(
        &prep,
        snap::source_digest(stamp),
        &snap::sidecar_path(&input),
    )
    .unwrap();
}

/// The cold-render reference bytes for the canonical options.
fn cold_reference(root: &std::path::Path, csv: &str) -> Vec<u8> {
    let schedule = jedule_serve::ingest::parse_schedule(csv, &root.join("sched.csv")).unwrap();
    let (opts, _key) = render_options_from_params(None, None, None, None).unwrap();
    jedule_render::render(&schedule, &opts)
}

#[test]
fn fresh_sidecar_serves_the_cold_first_request() {
    let (server, root, csv) = start("sidecar_fresh");
    write_sidecar(&root, &csv, csv.as_bytes());
    let first = get(server.addr(), "/render?file=sched.csv");
    assert_eq!(first.status, 200);
    assert_eq!(
        first.body,
        cold_reference(&root, &csv),
        "pack-served bytes must equal a cold text render"
    );
    let reg = server.registry();
    assert_eq!(
        reg.counter_value("jedule_pack_sidecar_total", &[("result", "hit")]),
        1
    );
    // The second request hits the prepared cache — no second probe.
    assert_eq!(get(server.addr(), "/render?file=sched.csv").status, 200);
    assert_eq!(reg.counter_total("jedule_pack_sidecar_total"), 1);
    server.shutdown().unwrap();
}

#[test]
fn stale_sidecar_is_silently_ignored() {
    let (server, root, csv) = start("sidecar_stale");
    write_sidecar(&root, &csv, b"bytes of an older revision");
    let first = get(server.addr(), "/render?file=sched.csv");
    assert_eq!(first.status, 200);
    assert_eq!(first.body, cold_reference(&root, &csv));
    let reg = server.registry();
    assert_eq!(
        reg.counter_value("jedule_pack_sidecar_total", &[("result", "stale")]),
        1
    );
    assert_eq!(
        reg.counter_value("jedule_pack_sidecar_total", &[("result", "hit")]),
        0
    );
    server.shutdown().unwrap();
}

#[test]
fn corrupt_sidecar_is_skipped_with_an_error_count() {
    let (server, root, csv) = start("sidecar_corrupt");
    std::fs::write(root.join("sched.csv.jpack"), b"JEDPACK1 but not really").unwrap();
    let first = get(server.addr(), "/render?file=sched.csv");
    assert_eq!(first.status, 200);
    assert_eq!(first.body, cold_reference(&root, &csv));
    let reg = server.registry();
    assert_eq!(
        reg.counter_value("jedule_pack_sidecar_total", &[("result", "error")]),
        1
    );
    server.shutdown().unwrap();
}

#[test]
fn body_cache_cap_sizes_the_body_cache_independently() {
    let (server, _root, _csv) = start_with("bodycap", |c| c.body_cache_cap = Some(1));
    let addr = server.addr();
    // Two distinct render keys alternating through a one-slot body
    // cache evict each other every time; the prepared schedule (cap 16)
    // is parsed exactly once.
    for _ in 0..2 {
        assert_eq!(get(addr, "/render?file=sched.csv").status, 200);
        assert_eq!(get(addr, "/render?file=sched.csv&window=0:4").status, 200);
    }
    let reg = server.registry();
    assert_eq!(reg.counter_value("jedule_render_cache_hits_total", &[]), 0);
    assert_eq!(
        reg.counter_value("jedule_render_cache_misses_total", &[]),
        4
    );
    assert_eq!(
        reg.counter_value("jedule_prepared_cache_misses_total", &[]),
        1
    );
    server.shutdown().unwrap();
}

#[test]
fn shutdown_is_graceful_and_final() {
    let (server, _root, _csv) = start("shutdown");
    let addr = server.addr();
    assert_eq!(get(addr, "/healthz").status, 200);
    server.shutdown().unwrap();
    // The listener is gone: connecting (or at least speaking HTTP)
    // fails once the drain has finished.
    let alive = TcpStream::connect(addr)
        .map(|mut s| {
            let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(n) if n > 0)
        })
        .unwrap_or(false);
    assert!(!alive, "server must stop answering after shutdown");
}

#[test]
fn explore_shell_and_meta_endpoints() {
    let (server, _root, _csv) = start("explore");
    let addr = server.addr();

    // The shell is a single self-contained HTML page that knows its file.
    let shell = get(addr, "/explore?file=sched.csv");
    assert_eq!(shell.status, 200);
    assert!(shell
        .header("Content-Type")
        .unwrap()
        .starts_with("text/html"));
    let page = String::from_utf8(shell.body).unwrap();
    assert!(page.contains("\"mode\":\"serve\""));
    assert!(page.contains("sched.csv"));
    assert!(!page.contains("__JEDULE_"), "unfilled placeholder");
    assert!(
        !page.contains("src="),
        "shell must not load external assets"
    );

    // /meta returns the jedule-meta-v1 document with a validator.
    let meta = get(addr, "/meta?file=sched.csv&width=640");
    assert_eq!(meta.status, 200);
    assert_eq!(meta.header("Content-Type"), Some("application/json"));
    let etag = meta.header("ETag").expect("meta carries ETag").to_string();
    let json = String::from_utf8(meta.body).unwrap();
    assert!(json.contains("\"schema\":\"jedule-meta-v1\""));
    assert!(json.contains("\"taskCount\":3"));
    assert!(json.contains("\"panels\""));
    assert!(json.contains("\"kinds\""));

    // Revalidation works exactly like /render.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /meta?file=sched.csv&width=640 HTTP/1.1\r\nHost: t\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    assert_eq!(read_framed(&mut stream).status, 304);

    // Errors mirror /render semantics.
    assert_eq!(get(addr, "/explore").status, 400);
    assert_eq!(get(addr, "/meta").status, 400);
    assert_eq!(get(addr, "/meta?file=missing.csv").status, 404);
    assert_eq!(get(addr, "/explore?file=../../etc/passwd").status, 404);
    assert_eq!(get(addr, "/meta?file=sched.csv&width=1").status, 400);
    server.shutdown().unwrap();
}

#[test]
fn explore_tiles_are_byte_identical_to_render() {
    let (server, _root, _csv) = start("exploretile");
    let addr = server.addr();
    for params in [
        "file=sched.csv&fmt=svg&width=640",
        "file=sched.csv&fmt=svg&width=640&window=0:4",
        "file=sched.csv&fmt=svg&width=640&lod=force",
    ] {
        let direct = get(addr, &format!("/render?{params}"));
        let tile = get(addr, &format!("/explore?{params}&tile=1"));
        assert_eq!(direct.status, 200);
        assert_eq!(tile.status, 200);
        assert_eq!(
            tile.body, direct.body,
            "tile bytes must match /render for {params}"
        );
        assert_eq!(
            tile.header("ETag"),
            direct.header("ETag"),
            "tile validator must match /render for {params}"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn explore_pan_sequence_hits_the_tile_store() {
    // A one-slot body cache forces the A→B→A pan sequence to re-render
    // window A, which must be served (at least partly) from the tile
    // store rather than rasterized from scratch.
    let (server, _root, _csv) = start_with("explorepan", |c| c.body_cache_cap = Some(1));
    let addr = server.addr();
    let win_a = "/explore?file=sched.csv&tile=1&fmt=svg&width=640&window=0:4";
    let win_b = "/explore?file=sched.csv&tile=1&fmt=svg&width=640&window=2:6";
    let first = get(addr, win_a);
    assert_eq!(first.status, 200);
    let etag_a = first.header("ETag").unwrap().to_string();
    assert_eq!(get(addr, win_b).status, 200);
    let reg = server.registry();
    let hits_before = reg.counter_total("jedule_tile_cache_hits_total");
    assert_eq!(get(addr, win_a).status, 200);
    let hits_after = reg.counter_total("jedule_tile_cache_hits_total");
    assert!(
        hits_after > hits_before,
        "panning back must reuse cached tiles ({hits_before} → {hits_after})"
    );

    // The second visit to window A revalidates instead of re-downloading.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {win_a} HTTP/1.1\r\nHost: t\r\nIf-None-Match: {etag_a}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    assert_eq!(read_framed(&mut stream).status, 304);
    assert!(reg.counter_value("jedule_render_not_modified_total", &[]) >= 1);
    server.shutdown().unwrap();
}

#[test]
fn metrics_json_mirrors_the_prometheus_families() {
    let (server, _root, _csv) = start("metricsjson");
    let addr = server.addr();
    assert_eq!(get(addr, "/render?file=sched.csv").status, 200);
    assert_eq!(get(addr, "/healthz").status, 200);

    let json_reply = get(addr, "/metrics.json");
    assert_eq!(json_reply.status, 200);
    assert_eq!(json_reply.header("Content-Type"), Some("application/json"));
    let json = String::from_utf8(json_reply.body).unwrap();
    assert!(json.starts_with("{\"schema\":\"jedule-registry-v1\""));

    // Every family the Prometheus text exposition declares must appear
    // in the JSON twin (the registry unit tests prove exact key-for-key
    // agreement; this guards the HTTP plumbing end to end).
    let text = String::from_utf8(get(addr, "/metrics").body).unwrap();
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let family = line.split_whitespace().nth(2).unwrap();
        assert!(
            json.contains(&format!("\"{family}")),
            "family {family} missing from /metrics.json"
        );
    }
    // Spot-check the new introspection families and histogram shape.
    assert!(json.contains("\"jedule_build_info{"));
    assert!(json.contains("\"jedule_uptime_seconds\""));
    assert!(json.contains("\"jedule_connections_accepted_total\""));
    assert!(json.contains("\"jedule_http_request_duration_seconds{route="));
    assert!(json.contains("\"bounds\":["));
    assert!(json.contains("\"cumulative\":["));
    server.shutdown().unwrap();
}

#[test]
fn debug_dash_is_a_self_contained_page() {
    let (server, _root, _csv) = start("dash");
    let dash = get(server.addr(), "/debug/dash");
    assert_eq!(dash.status, 200);
    assert!(dash
        .header("Content-Type")
        .unwrap()
        .starts_with("text/html"));
    let page = String::from_utf8(dash.body).unwrap();
    assert!(page.contains("/metrics.json"), "dash polls /metrics.json");
    assert!(page.contains("<script>") && page.contains("</html>"));
    assert!(!page.contains("__JEDULE_"), "unfilled placeholder");
    assert!(
        !page.contains("http://") && !page.contains("https://"),
        "dash must not reference any external URL"
    );
    assert!(
        !page.contains("src=") && !page.contains("@import"),
        "dash must not load external assets"
    );
    server.shutdown().unwrap();
}

#[test]
fn debug_log_tails_newest_first_with_filters() {
    let (server, _root, _csv) = start("accesslog");
    let addr = server.addr();
    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/render?file=sched.csv").status, 200);
    assert_eq!(get(addr, "/render?file=missing.csv").status, 404);

    let tail = get(addr, "/debug/log?n=10");
    assert_eq!(tail.status, 200);
    assert_eq!(tail.header("Content-Type"), Some("application/x-ndjson"));
    let body = String::from_utf8(tail.body).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3, "three requests so far: {body}");
    // Newest first: the 404 tops the tail, the healthz closes it.
    assert!(lines[0].contains("\"status\":404"));
    assert!(lines[0].contains("\"cache\":\"error\""));
    assert!(lines[2].contains("/healthz"));
    for line in &lines {
        assert!(line.starts_with("{\"id\":"), "JSONL record: {line}");
        assert!(line.ends_with('}'), "JSONL record: {line}");
        assert!(line.contains("\"ts_ms\":") && line.contains("\"dur_us\":"));
    }
    // The ids in the tail resolve at /debug/trace/<id>.
    let id: u64 = lines[1]
        .split("\"id\":")
        .nth(1)
        .unwrap()
        .split(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(get(addr, &format!("/debug/trace/{id}")).status, 200);

    // Filters: by status, by path substring, and bad params → 400.
    let by_status = get(addr, "/debug/log?status=404&n=10");
    let body = String::from_utf8(by_status.body).unwrap();
    assert_eq!(body.lines().count(), 1, "{body}");
    assert!(body.contains("missing.csv"));
    let by_path = get(addr, "/debug/log?path=healthz&n=10");
    assert_eq!(String::from_utf8(by_path.body).unwrap().lines().count(), 1);
    assert_eq!(get(addr, "/debug/log?n=junk").status, 400);
    assert_eq!(get(addr, "/debug/log?status=junk").status, 400);
    server.shutdown().unwrap();
}

/// The acceptance invariant: access-log records partition exactly into
/// cache dispositions that agree with the registry counters.
#[test]
fn access_dispositions_partition_and_match_counters() {
    // A one-slot body cache so a pan A→B→A re-renders window A from the
    // tile store — exercising the `tile` disposition alongside the rest.
    let (server, _root, _csv) = start_with("dispo", |c| c.body_cache_cap = Some(1));
    let addr = server.addr();
    let win_a = "/render?file=sched.csv&width=640&window=0:4";
    let win_b = "/render?file=sched.csv&width=640&window=2:6";
    let first = get(addr, win_a);
    assert_eq!(first.status, 200);
    let etag_a = first.header("ETag").unwrap().to_string();
    assert_eq!(get(addr, win_b).status, 200);
    assert_eq!(get(addr, win_a).status, 200); // tile-assisted re-render
    assert_eq!(get(addr, "/healthz").status, 200); // disposition "none"
    assert_eq!(get(addr, "/render?file=nope.csv").status, 404);

    // One revalidation → disposition "revalidated".
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {win_a} HTTP/1.1\r\nHost: t\r\nIf-None-Match: {etag_a}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    assert_eq!(read_framed(&mut stream).status, 304);

    // Snapshot before tailing: the /debug/log request logs itself only
    // after its own response (the tail) has been built.
    let reg = server.registry();
    let records_before = reg.counter_value("jedule_access_log_records_total", &[]);
    let tail = get(addr, "/debug/log?n=100");
    let body = String::from_utf8(tail.body).unwrap();
    let count = |d: &str| {
        body.lines()
            .filter(|l| l.contains(&format!("\"cache\":\"{d}\"")))
            .count() as u64
    };
    let (hit, miss, tile, reval, error, none) = (
        count("hit"),
        count("miss"),
        count("tile"),
        count("revalidated"),
        count("error"),
        count("none"),
    );
    assert_eq!(
        hit + miss + tile + reval + error + none,
        body.lines().count() as u64,
        "every record carries exactly one known disposition: {body}"
    );

    assert_eq!(
        hit,
        reg.counter_value("jedule_render_cache_hits_total", &[])
    );
    assert_eq!(
        miss + tile,
        reg.counter_value("jedule_render_cache_misses_total", &[]),
        "miss and tile dispositions partition the body-cache misses"
    );
    assert_eq!(
        reval,
        reg.counter_value("jedule_render_not_modified_total", &[])
    );
    assert!(tile >= 1, "the pan-back render must be tile-assisted");
    assert_eq!(error, 1);
    assert_eq!(records_before, body.lines().count() as u64);
    server.shutdown().unwrap();
}

#[test]
fn access_log_streams_jsonl_and_slow_requests_pin_traces() {
    let (root_dir, _) = temp_root("logsink_dir");
    let log_path = root_dir.join("access.jsonl");
    let log_str = log_path.to_str().unwrap().to_string();
    let (server, _root, _csv) = start_with("logsink", move |c| {
        c.access_log = Some(log_str);
        c.slow_ms = Some(0); // every request counts as slow
    });
    let addr = server.addr();
    assert_eq!(get(addr, "/render?file=sched.csv").status, 200);
    assert_eq!(get(addr, "/healthz").status, 200);
    server.shutdown().unwrap();

    let streamed = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = streamed.lines().collect();
    assert_eq!(lines.len(), 2, "{streamed}");
    for line in &lines {
        assert!(line.starts_with("{\"id\":"), "well-formed JSONL: {line}");
        assert!(
            line.contains("\"slow\":true"),
            "slow-ms 0 marks all: {line}"
        );
        assert!(line.contains("\"stages_us\":{"), "per-stage micros: {line}");
    }
    assert!(lines[0].contains("\"opt\":"), "render records its opt key");
}

/// Satellite (b): responses the event loop generates without ever
/// reaching `handle_request` (malformed head → 400) still carry a
/// request id that resolves at `/debug/trace/<id>` and appears in the
/// access log under the `loop` route.
#[test]
fn loop_generated_errors_stay_correlatable() {
    let (server, _root, _csv) = start("looperr");
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"BOGUS nonsense\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    let id: u64 = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Jedule-Request-Id: "))
        .expect("error response carries a request id")
        .trim()
        .parse()
        .unwrap();

    let trace = get(addr, &format!("/debug/trace/{id}"));
    assert_eq!(trace.status, 200, "loop 400 must leave a trace");
    assert!(String::from_utf8(trace.body)
        .unwrap()
        .contains("serve.loop_error"));

    let tail = get(addr, "/debug/log?status=400&n=10");
    let body = String::from_utf8(tail.body).unwrap();
    assert!(body.contains("(head-parse)"), "{body}");
    assert!(body.contains(&format!("\"id\":{id}")), "{body}");
    assert_eq!(
        server.registry().counter_value(
            "jedule_http_requests_total",
            &[("route", "loop"), ("status", "400")]
        ),
        1
    );
    server.shutdown().unwrap();
}
