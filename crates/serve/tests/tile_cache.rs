//! Concurrency and eviction-pressure tests of the serve-side
//! [`TileStore`]: assembled figures must be byte-identical to cold
//! whole-figure renders no matter how many threads race on the store or
//! how small the tile LRU is, and the hit/miss counters must partition
//! lookups exactly through it all.

use jedule_core::obs::Registry;
use jedule_core::{Allocation, PreparedSchedule, Schedule, ScheduleBuilder, Task};
use jedule_render::{layout, layout_prepared_scratch, OutputFormat, RenderOptions};
use jedule_serve::tile::TileStore;
use std::sync::Arc;

fn schedule(jobs: usize) -> Schedule {
    let mut b = ScheduleBuilder::new().cluster(0, "c0", 16);
    for i in 0..jobs {
        let start = (i as f64) * 0.7;
        b = b.task(
            Task::new(
                format!("t{i}"),
                if i % 2 == 0 {
                    "computation"
                } else {
                    "transfer"
                },
                start,
                start + 1.0 + (i % 5) as f64,
            )
            .on(Allocation::contiguous(
                0,
                (i % 12) as u32,
                1 + (i % 4) as u32,
            )),
        );
    }
    b.build().unwrap()
}

fn options(fmt: OutputFormat, window: Option<(f64, f64)>) -> (RenderOptions, String) {
    let opts = RenderOptions {
        format: fmt,
        width: 320.0,
        time_window: window,
        threads: 1,
        ..RenderOptions::default()
    };
    let key = format!("fmt={fmt:?};w=320;window={window:?}");
    (opts, key)
}

fn cold(s: &Schedule, opts: &RenderOptions) -> Vec<u8> {
    jedule_render::render(s, opts)
}

/// Many threads × many views × a tile cache far too small to hold them:
/// every assembled figure must still equal its cold render, and
/// hits + misses == lookups must hold exactly.
#[test]
fn concurrent_assembly_is_byte_identical_under_eviction_pressure() {
    let s = Arc::new(schedule(120));
    // Misses lay out through the prepared columnar + scratch path the
    // server uses — its bytes must equal the cold scalar renders below.
    let prep = Arc::new(PreparedSchedule::new((*s).clone()));
    // 8 views × 2 formats, but only 6 tiles of room: constant eviction.
    let store = Arc::new(TileStore::new(6));
    let reg = Registry::new();

    let views: Vec<Option<(f64, f64)>> = (0..8)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some((i as f64 * 5.0, i as f64 * 5.0 + 30.0))
            }
        })
        .collect();
    let mut expected = Vec::new();
    for fmt in [OutputFormat::Svg, OutputFormat::Png] {
        for w in &views {
            let (opts, key) = options(fmt, *w);
            expected.push((opts.clone(), key, cold(&s, &opts)));
        }
    }

    for threads in [1usize, 4, 8] {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = Arc::clone(&store);
                let prep = Arc::clone(&prep);
                let reg = reg.clone();
                let expected = &expected;
                scope.spawn(move || {
                    // Each thread walks the views from a different
                    // offset so misses and hits interleave.
                    for i in 0..expected.len() {
                        let (opts, key, want) = &expected[(i + t * 3) % expected.len()];
                        let digest = 17;
                        let (got, _ct) = store.render(&reg, digest, opts, key, &mut |sc| {
                            layout_prepared_scratch(&prep, opts, sc)
                        });
                        assert_eq!(&got, want, "thread {t}, view {key}");
                    }
                });
            }
        });
    }

    let hits = reg.counter_total("jedule_tile_cache_hits_total");
    let misses = reg.counter_total("jedule_tile_cache_misses_total");
    let lookups = reg.counter_total("jedule_tile_lookups_total");
    assert_eq!(
        hits + misses,
        lookups,
        "partition must be exact (hits {hits}, misses {misses}, lookups {lookups})"
    );
    assert!(misses > 0, "a 6-tile cache must evict");
    assert!(hits > 0, "some shards must still be served warm");
}

/// A zero-capacity tile cache degenerates to always-cold rendering —
/// still byte-identical, every lookup a miss.
#[test]
fn zero_cap_store_stays_correct() {
    let s = schedule(40);
    let store = TileStore::new(0);
    let reg = Registry::new();
    for fmt in [OutputFormat::Svg, OutputFormat::Png] {
        let (opts, key) = options(fmt, None);
        let want = cold(&s, &opts);
        for _ in 0..2 {
            let (got, _) = store.render(&reg, 5, &opts, &key, &mut |_| layout(&s, &opts));
            assert_eq!(got, want);
        }
    }
    assert_eq!(reg.counter_total("jedule_tile_cache_hits_total"), 0);
    assert_eq!(
        reg.counter_total("jedule_tile_cache_misses_total"),
        reg.counter_total("jedule_tile_lookups_total")
    );
}

/// Warm assembly across formats: the second pass must not lay out at
/// all for SVG, and must reuse every raster band for PNG.
#[test]
fn warm_pass_skips_layout() {
    let s = schedule(60);
    let store = TileStore::new(4096);
    let reg = Registry::new();
    for fmt in [OutputFormat::Svg, OutputFormat::Png] {
        let (opts, key) = options(fmt, Some((3.0, 40.0)));
        let want = cold(&s, &opts);
        let mut layouts = 0;
        for pass in 0..2 {
            let (got, _) = store.render(&reg, 9, &opts, &key, &mut |_| {
                layouts += 1;
                layout(&s, &opts)
            });
            assert_eq!(got, want, "{fmt:?} pass {pass}");
        }
        assert_eq!(layouts, 1, "{fmt:?}: only the cold pass may lay out");
    }
}
