//! A bounded ring of the last N per-request span trees.
//!
//! Every request records into its own [`jedule_core::obs::Collector`];
//! the finished [`ObsReport`] lands here keyed by the request id so
//! `GET /debug/trace/<id>` can replay any recent request as Chrome
//! trace-event JSON. Old traces fall off the back once the ring is
//! full — operational memory stays bounded no matter how long the
//! process lives.

use jedule_core::obs::ObsReport;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

pub struct TraceRing {
    keep: usize,
    inner: Mutex<VecDeque<(u64, Arc<ObsReport>)>>,
    /// A second ring of the same capacity for requests that crossed
    /// the `--slow-ms` threshold: a burst of fast requests evicts the
    /// main ring in milliseconds, but the slow outliers — the traces
    /// an operator actually wants — survive here until `keep` *other
    /// slow* requests displace them.
    slow: Mutex<VecDeque<(u64, Arc<ObsReport>)>>,
}

impl TraceRing {
    pub fn new(keep: usize) -> TraceRing {
        TraceRing {
            keep,
            inner: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Retains `report` under `request_id`, evicting the oldest entry
    /// when full. A `keep` of 0 retains nothing.
    pub fn push(&self, request_id: u64, report: ObsReport) {
        self.push_shared(request_id, Arc::new(report), false);
    }

    /// Like [`TraceRing::push`] for an already-shared report; `pin`
    /// additionally retains it in the slow ring, where only other
    /// pinned traces can evict it.
    pub fn push_shared(&self, request_id: u64, report: Arc<ObsReport>, pin: bool) {
        if self.keep == 0 {
            return;
        }
        if pin {
            let mut slow = self.slow.lock().unwrap();
            if slow.len() == self.keep {
                slow.pop_front();
            }
            slow.push_back((request_id, Arc::clone(&report)));
        }
        let mut ring = self.inner.lock().unwrap();
        if ring.len() == self.keep {
            ring.pop_front();
        }
        ring.push_back((request_id, report));
    }

    /// The retained report for `request_id`, if it has not been evicted
    /// from the main ring or the pinned slow ring.
    pub fn get(&self, request_id: u64) -> Option<Arc<ObsReport>> {
        let find = |ring: &Mutex<VecDeque<(u64, Arc<ObsReport>)>>| {
            ring.lock()
                .unwrap()
                .iter()
                .rev()
                .find(|(id, _)| *id == request_id)
                .map(|(_, r)| Arc::clone(r))
        };
        find(&self.inner).or_else(|| find(&self.slow))
    }

    /// Ids currently retained (either ring), ascending, deduplicated.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .lock()
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .chain(self.slow.lock().unwrap().iter().map(|(id, _)| *id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ObsReport {
        ObsReport {
            spans: Vec::new(),
            counters: vec![("c".to_string(), 1)],
        }
    }

    #[test]
    fn keeps_last_n() {
        let ring = TraceRing::new(2);
        for id in 1..=3 {
            ring.push(id, report());
        }
        assert_eq!(ring.ids(), vec![2, 3]);
        assert!(ring.get(1).is_none());
        assert!(ring.get(3).is_some());
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn zero_keep_retains_nothing() {
        let ring = TraceRing::new(0);
        ring.push(1, report());
        ring.push_shared(2, Arc::new(report()), true);
        assert!(ring.is_empty());
        assert!(ring.get(1).is_none());
        assert!(ring.get(2).is_none());
    }

    #[test]
    fn pinned_traces_survive_fast_request_churn() {
        let ring = TraceRing::new(2);
        ring.push_shared(1, Arc::new(report()), true);
        for id in 2..=10 {
            ring.push(id, report()); // evicts the main ring many times
        }
        // The slow request outlived the churn; only the newest two fast
        // ones remain in the main ring.
        assert!(ring.get(1).is_some());
        assert!(ring.get(9).is_some());
        assert!(ring.get(2).is_none());
        assert_eq!(ring.ids(), vec![1, 9, 10]);
        // Only another pinned trace evicts a pinned trace.
        ring.push_shared(11, Arc::new(report()), true);
        ring.push_shared(12, Arc::new(report()), true);
        assert!(ring.get(1).is_none());
        assert!(ring.get(11).is_some() && ring.get(12).is_some());
    }
}
