//! A bounded ring of the last N per-request span trees.
//!
//! Every request records into its own [`jedule_core::obs::Collector`];
//! the finished [`ObsReport`] lands here keyed by the request id so
//! `GET /debug/trace/<id>` can replay any recent request as Chrome
//! trace-event JSON. Old traces fall off the back once the ring is
//! full — operational memory stays bounded no matter how long the
//! process lives.

use jedule_core::obs::ObsReport;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

pub struct TraceRing {
    keep: usize,
    inner: Mutex<VecDeque<(u64, Arc<ObsReport>)>>,
}

impl TraceRing {
    pub fn new(keep: usize) -> TraceRing {
        TraceRing {
            keep,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Retains `report` under `request_id`, evicting the oldest entry
    /// when full. A `keep` of 0 retains nothing.
    pub fn push(&self, request_id: u64, report: ObsReport) {
        if self.keep == 0 {
            return;
        }
        let mut ring = self.inner.lock().unwrap();
        if ring.len() == self.keep {
            ring.pop_front();
        }
        ring.push_back((request_id, Arc::new(report)));
    }

    /// The retained report for `request_id`, if it has not been evicted.
    pub fn get(&self, request_id: u64) -> Option<Arc<ObsReport>> {
        let ring = self.inner.lock().unwrap();
        ring.iter()
            .rev()
            .find(|(id, _)| *id == request_id)
            .map(|(_, r)| Arc::clone(r))
    }

    /// Ids currently retained, oldest first.
    pub fn ids(&self) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(id, _)| *id)
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ObsReport {
        ObsReport {
            spans: Vec::new(),
            counters: vec![("c".to_string(), 1)],
        }
    }

    #[test]
    fn keeps_last_n() {
        let ring = TraceRing::new(2);
        for id in 1..=3 {
            ring.push(id, report());
        }
        assert_eq!(ring.ids(), vec![2, 3]);
        assert!(ring.get(1).is_none());
        assert!(ring.get(3).is_some());
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn zero_keep_retains_nothing() {
        let ring = TraceRing::new(0);
        ring.push(1, report());
        assert!(ring.is_empty());
        assert!(ring.get(1).is_none());
    }
}
