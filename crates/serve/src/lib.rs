//! # jedule-serve
//!
//! `jedule serve` — a resident render service over the batch pipeline
//! (DESIGN.md §6b/§6c). Where the CLI's observability is post-mortem
//! (one run, one span tree, one export), a long-lived process needs
//! *live* operational telemetry; this crate pairs a std-only HTTP/1.1
//! server with the continuous [`Registry`] in `jedule_core::obs`:
//!
//! * `GET /healthz` — liveness probe;
//! * `GET /render?file=…&fmt=svg|png&window=t0:t1&lod=…&width=…` —
//!   renders a schedule from the allow-listed root directory. Requests
//!   flow through a stack of caches: a stat-validated input digest
//!   cache, `ETag`/`If-None-Match` revalidation (304, no body), a
//!   rendered-body cache keyed on (digest, options), a
//!   [`PreparedSchedule`] cache, and the tile cache ([`tile`]) that
//!   reassembles figures from cached shards when the body cache
//!   misses;
//! * `GET /metrics` — Prometheus text exposition: request counters by
//!   route/status, latency histograms, cache hit/miss counters, and
//!   per-stage duration histograms aggregated from every request's
//!   span tree;
//! * `GET /debug/trace/<request-id>` — the Chrome trace-event JSON of
//!   one of the last `trace_keep` requests (ids are echoed on every
//!   response in `X-Jedule-Request-Id`), loadable in Perfetto.
//!
//! On Linux the socket layer is the epoll event loop in
//! [`event_loop`]: one thread multiplexes every connection
//! (keep-alive, pipelining, idle sweep) and a worker pool only
//! renders. Elsewhere a threaded keep-alive fallback serves one
//! connection per worker. Shutdown is graceful either way:
//! SIGTERM/SIGINT (or a programmatic flag) stops accepting, in-flight
//! requests drain, workers join, and the CLI then flushes a final
//! metrics snapshot.

pub mod cache;
#[cfg(target_os = "linux")]
pub mod epoll;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod http;
pub mod ingest;
pub mod signal;
pub mod tile;
pub mod trace_ring;

use cache::{fnv1a64, LruCache};
use http::{Request, Response};
use jedule_core::obs::{self, AccessLog, AccessRecord, Collector, ObsReport, Registry};
use jedule_core::PreparedSchedule;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tile::TileStore;
use trace_ring::TraceRing;

/// Server configuration (the `jedule serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8017` (port 0 picks a free one).
    pub addr: String,
    /// Directory inputs are restricted to; `file=` parameters resolve
    /// inside it and may not escape it.
    pub root: PathBuf,
    /// Render worker threads (0 = one per core, at least 4).
    pub workers: usize,
    /// Maximum cached prepared schedules (LRU). Also the default for
    /// the rendered-body cache when `body_cache_cap` is unset.
    pub cache_cap: usize,
    /// Maximum cached rendered bodies (LRU); `None` follows
    /// `cache_cap`. Bodies and prepared schedules have very different
    /// footprints (an encoded PNG vs. a fully indexed million-task
    /// trace), so deployments can size the two independently.
    pub body_cache_cap: Option<usize>,
    /// Maximum cached figure shards in the tile cache (LRU). Sized in
    /// *tiles*, not figures — a window series cycling more views than
    /// `cache_cap` bodies stays warm here.
    pub tile_cache_cap: usize,
    /// Retained per-request span trees for `/debug/trace/<id>`.
    pub trace_keep: usize,
    /// Streams one JSONL access record per request to this path
    /// (`-` = stdout). `None` disables streaming; the in-memory ring
    /// behind `/debug/log` is always on.
    pub access_log: Option<String>,
    /// Retained records in the in-memory access-log ring
    /// (`/debug/log`).
    pub access_log_keep: usize,
    /// Requests slower than this many milliseconds are flagged `slow`
    /// in the access log and their full span tree is pinned in the
    /// trace ring (only other slow requests can evict it).
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8017".to_string(),
            root: PathBuf::from("."),
            workers: 0,
            cache_cap: 64,
            body_cache_cap: None,
            tile_cache_cap: 1024,
            trace_keep: 32,
            access_log: None,
            access_log_keep: 512,
            slow_ms: None,
        }
    }
}

/// A cached rendered response body (shared — hits never copy).
struct Body {
    bytes: Arc<Vec<u8>>,
    content_type: &'static str,
}

/// A stat-validated content digest: as long as `(mtime, len)` match
/// the file on disk the digest is reused without re-reading, which is
/// what keeps 304 revalidations sub-millisecond on large traces.
struct FileDigest {
    mtime: std::time::SystemTime,
    len: u64,
    digest: u64,
}

struct State {
    root: PathBuf,
    registry: Registry,
    traces: TraceRing,
    prepared: LruCache<u64, PreparedSchedule>,
    bodies: LruCache<(u64, String), Body>,
    tiles: TileStore,
    digests: LruCache<PathBuf, FileDigest>,
    next_id: Arc<AtomicU64>,
    started: Instant,
    /// Bounded ring of per-request access records (`/debug/log`).
    access: AccessLog,
    /// Optional JSONL stream (`--access-log <file|->`), line-buffered
    /// per record so a tailing consumer sees requests as they finish.
    access_sink: Option<Mutex<Box<dyn std::io::Write + Send>>>,
    /// `--slow-ms` threshold, in microseconds.
    slow_us: Option<f64>,
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread; [`Server::spawn`] runs it on a background thread and hands
/// back a [`ServerHandle`] (the shape tests and the bench use).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    state: Arc<State>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and prepares shared state. The root directory
    /// must exist (it is canonicalized once here; per-request paths are
    /// canonicalized against it to stop traversal escapes).
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let root = config
            .root
            .canonicalize()
            .map_err(|e| format!("serve root {}: {e}", config.root.display()))?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let registry = Registry::new();
        describe_metrics(&registry);
        let workers = if config.workers == 0 {
            jedule_core::parallel::effective_threads(0).max(4)
        } else {
            config.workers
        };
        // Build/identity metrics exist from the first scrape on, not
        // only after the first request.
        registry.gauge_set(
            "jedule_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "profile",
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ),
            ],
            1.0,
        );
        registry.gauge_set("jedule_uptime_seconds", &[], 0.0);
        registry.gauge_set("jedule_render_workers", &[], workers as f64);
        let access_sink: Option<Mutex<Box<dyn std::io::Write + Send>>> = match &config.access_log {
            None => None,
            Some(s) if s == "-" => Some(Mutex::new(Box::new(std::io::stdout()))),
            Some(p) => {
                let f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(|e| format!("access log {p}: {e}"))?;
                Some(Mutex::new(Box::new(f)))
            }
        };
        Ok(Server {
            listener,
            addr,
            workers,
            state: Arc::new(State {
                root,
                registry,
                traces: TraceRing::new(config.trace_keep),
                prepared: LruCache::new(config.cache_cap),
                bodies: LruCache::new(config.body_cache_cap.unwrap_or(config.cache_cap)),
                tiles: TileStore::new(config.tile_cache_cap),
                digests: LruCache::new(config.cache_cap.max(64)),
                next_id: Arc::new(AtomicU64::new(0)),
                started: Instant::now(),
                access: AccessLog::new(config.access_log_keep),
                access_sink,
                slow_us: config.slow_ms.map(|ms| ms as f64 * 1e3),
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-lifetime metrics registry (shared clone).
    pub fn registry(&self) -> Registry {
        self.state.registry.clone()
    }

    /// The flag that stops [`Server::run`]; hand it to
    /// [`signal::install_term_handler`] for SIGTERM wiring.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until the shutdown flag is set, then drains: in-flight
    /// requests finish, workers join, and the method returns for the
    /// caller's final flush. On Linux this is the epoll event loop;
    /// elsewhere, a threaded keep-alive accept loop.
    pub fn run(self) -> Result<(), String> {
        #[cfg(target_os = "linux")]
        {
            let state = Arc::clone(&self.state);
            let handler: event_loop::Handler =
                Arc::new(move |id, req| handle_request(&state, id, req));
            let loop_state = Arc::clone(&self.state);
            let telemetry = event_loop::LoopTelemetry {
                registry: self.state.registry.clone(),
                on_loop_response: Arc::new(move |id, status, detail| {
                    record_loop_response(&loop_state, id, status, detail)
                }),
            };
            event_loop::run(
                self.listener,
                self.workers,
                self.shutdown,
                Arc::clone(&self.state.next_id),
                handler,
                Some(telemetry),
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            run_threaded(self.listener, self.workers, self.shutdown, self.state)
        }
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let registry = self.registry();
        let shutdown = self.shutdown_flag();
        let join = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            registry,
            shutdown,
            join,
        }
    }
}

/// Handle to a running background server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Registry,
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<Result<(), String>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// Requests graceful shutdown and waits for the drain to finish.
    pub fn shutdown(self) -> Result<(), String> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join
            .join()
            .map_err(|_| "server thread panicked".to_string())?
    }
}

/// The non-Linux fallback: a worker pool of blocking keep-alive
/// connection loops behind a polling accept loop.
#[cfg(not(target_os = "linux"))]
fn run_threaded(
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    state: Arc<State>,
) -> Result<(), String> {
    use std::sync::{mpsc, Mutex};
    let (tx, rx) = mpsc::channel::<std::net::TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut joins = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        joins.push(std::thread::spawn(move || loop {
            let next = rx.lock().unwrap().recv();
            match next {
                Ok(stream) => handle_connection(&state, stream),
                Err(_) => break, // sender dropped: drained, shut down
            }
        }));
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    drop(tx);
    for j in joins {
        let _ = j.join();
    }
    Ok(())
}

/// Serves one blocking connection until the peer closes or opts out of
/// keep-alive (the non-Linux path).
#[cfg(not(target_os = "linux"))]
fn handle_connection(state: &State, mut stream: std::net::TcpStream) {
    use std::io::Write;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    loop {
        let req = match http::read_request(&mut stream) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                let id = state.next_id.fetch_add(1, Ordering::SeqCst) + 1;
                let _ = stream.write_all(&Response::text(400, e + "\n").encode(id, false));
                record_loop_response(state, id, 400, "head-parse");
                return;
            }
        };
        let id = state.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let resp = handle_request(state, id, &req);
        let keep_alive = req.keep_alive;
        if stream.write_all(&resp.encode(id, keep_alive)).is_err() || !keep_alive {
            return;
        }
    }
}

fn describe_metrics(r: &Registry) {
    r.describe(
        "jedule_http_requests_total",
        "HTTP requests served, by route and status code",
    );
    r.describe(
        "jedule_http_request_duration_seconds",
        "End-to-end request latency, by route",
    );
    r.describe(
        "jedule_render_cache_hits_total",
        "Render requests answered from the rendered-body cache",
    );
    r.describe(
        "jedule_render_cache_misses_total",
        "Render requests that had to assemble or render output",
    );
    r.describe(
        "jedule_render_not_modified_total",
        "Render revalidations answered 304 from the ETag alone",
    );
    r.describe(
        "jedule_prepared_cache_hits_total",
        "Render requests that reused a cached PreparedSchedule",
    );
    r.describe(
        "jedule_prepared_cache_misses_total",
        "Render requests that ingested and prepared a schedule",
    );
    r.describe(
        "jedule_pack_sidecar_total",
        "Prepared-cache misses that probed a .jpack sidecar, by result",
    );
    r.describe(
        "jedule_tile_cache_hits_total",
        "Figure shards served from the tile cache, by format",
    );
    r.describe(
        "jedule_tile_cache_misses_total",
        "Figure shards rendered on a tile-cache miss, by format",
    );
    r.describe(
        "jedule_tile_lookups_total",
        "Tile-cache lookups (exactly hits + misses), by format",
    );
    r.describe(
        "jedule_plan_cache_hits_total",
        "Assemblies that reused a cached render plan (no layout)",
    );
    r.describe(
        "jedule_plan_cache_misses_total",
        "Assemblies that laid the scene out to build a plan",
    );
    r.describe(
        "jedule_stage_duration_seconds",
        "Per-stage durations aggregated from request span trees",
    );
    r.describe(
        "jedule_inflight_requests",
        "Requests currently being handled",
    );
    r.describe("jedule_uptime_seconds", "Seconds since the server started");
    r.describe(
        "jedule_render_cache_entries",
        "Rendered bodies currently cached",
    );
    r.describe(
        "jedule_prepared_cache_entries",
        "Prepared schedules currently cached",
    );
    r.describe(
        "jedule_tile_cache_entries",
        "Figure shards currently cached",
    );
    r.describe("jedule_plan_cache_entries", "Render plans currently cached");
    r.describe(
        "jedule_build_info",
        "Constant 1, with the build identity in the labels",
    );
    r.describe("jedule_render_workers", "Render worker threads in the pool");
    r.describe(
        "jedule_busy_workers",
        "Workers currently inside the request handler",
    );
    r.describe(
        "jedule_render_queue_depth",
        "Parsed requests queued for a worker",
    );
    r.describe(
        "jedule_render_queue_wait_seconds",
        "Time a parsed request waited in the render queue",
    );
    r.describe(
        "jedule_wake_dispatch_seconds",
        "Worker eventfd signal to event-loop response dispatch",
    );
    r.describe(
        "jedule_worker_job_seconds",
        "Handler time per job (sum/uptime*workers = busy fraction)",
    );
    r.describe(
        "jedule_connections",
        "Open connections by state (reading/busy/writing)",
    );
    r.describe(
        "jedule_connections_accepted_total",
        "Connections accepted since start",
    );
    r.describe(
        "jedule_connection_requests",
        "Responses served per connection (keep-alive reuse depth)",
    );
    r.describe(
        "jedule_idle_closed_total",
        "Connections closed by the idle sweep",
    );
    r.describe(
        "jedule_access_log_records_total",
        "Access records pushed into the /debug/log ring",
    );
}

/// Bounded-cardinality route label for metrics.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/metrics.json" => "/metrics.json",
        "/render" => "/render",
        "/explore" => "/explore",
        "/meta" => "/meta",
        "/" => "/",
        "/debug/dash" => "/debug/dash",
        "/debug/log" => "/debug/log",
        p if p.starts_with("/debug/trace/") => "/debug/trace",
        _ => "other",
    }
}

/// The worker-side request handler: routing wrapped in per-request
/// instrumentation (span tree, counters, latency, trace retention).
/// Socket IO happens elsewhere — the event loop on Linux, the
/// connection loop otherwise.
fn handle_request(state: &State, request_id: u64, req: &Request) -> Response {
    state
        .registry
        .gauge_add("jedule_inflight_requests", &[], 1.0);
    let started = Instant::now();

    let col = Collector::new();
    let resp = {
        let _g = col.install();
        let _root = col.span_with("serve.request", format!("{} {}", req.method, req.path));
        // A panicking handler must cost one 500, not a worker thread.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(state, req)))
            .unwrap_or_else(|_| Response::text(500, "internal error (see server log)\n"))
    };

    let label = route_label(&req.path);
    let status = resp.status.to_string();
    state.registry.counter_add(
        "jedule_http_requests_total",
        &[("route", label), ("status", &status)],
        1,
    );
    let dur = started.elapsed();
    state.registry.observe(
        "jedule_http_request_duration_seconds",
        &[("route", label)],
        dur.as_secs_f64(),
    );
    let report = col.report();
    state.registry.absorb(&report);

    // Distill the request into one access record: per-stage micros from
    // the span tree, the canonical option key from the figure span's
    // detail, and the cache disposition from the one-shot counters.
    let dur_us = dur.as_secs_f64() * 1e6;
    let slow = state.slow_us.is_some_and(|t| dur_us >= t);
    let mut stages: BTreeMap<&str, f64> = BTreeMap::new();
    for s in &report.spans {
        *stages.entry(s.name).or_insert(0.0) += s.dur_us;
    }
    let opt_key = report
        .spans
        .iter()
        .find(|s| s.name == "serve.figure")
        .and_then(|s| s.detail.clone())
        .unwrap_or_default();
    emit_access(
        state,
        AccessRecord {
            id: request_id,
            unix_ms: unix_ms_now(),
            method: req.method.clone(),
            path: request_target(req),
            opt_key,
            status: resp.status,
            disposition: disposition(resp.status, &report).to_string(),
            dur_us,
            bytes: resp.body.len() as u64,
            stages_us: stages
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            slow,
        },
    );
    // A slow request's span tree is pinned: a burst of fast requests
    // cannot evict the trace the operator will actually ask for.
    state.traces.push_shared(request_id, Arc::new(report), slow);
    state
        .registry
        .gauge_add("jedule_inflight_requests", &[], -1.0);
    resp
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Classifies a finished request for the access log. For 200 figure
/// responses the categories partition exactly against the registry
/// counters: `hit` ↔ `jedule_render_cache_hits_total`, `revalidated` ↔
/// `jedule_render_not_modified_total`, and `miss` + `tile` ↔
/// `jedule_render_cache_misses_total` (`tile` = the body was assembled
/// with at least one warm shard). Errors are `error`; endpoints that
/// produce no figure are `none`.
/// The request line's target rebuilt from the decoded path and query —
/// `Request` does not keep the raw form, and the access log wants the
/// whole thing so `/debug/log?path=` can filter on inputs.
fn request_target(req: &Request) -> String {
    let mut target = req.path.clone();
    for (i, (k, v)) in req.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        if !v.is_empty() {
            target.push('=');
            target.push_str(v);
        }
    }
    target
}

fn disposition(status: u16, report: &ObsReport) -> &'static str {
    if status >= 400 {
        "error"
    } else if report.counter("serve.not_modified") > 0 {
        "revalidated"
    } else if report.counter("serve.body_cache_hit") > 0 {
        "hit"
    } else if report.counter("serve.body_cache_miss") > 0 {
        if report.counter("serve.tile_hit") > 0 {
            "tile"
        } else {
            "miss"
        }
    } else {
        "none"
    }
}

/// Pushes a record into the ring and streams it as one JSONL line when
/// `--access-log` is set.
fn emit_access(state: &State, record: AccessRecord) {
    if let Some(sink) = &state.access_sink {
        let line = record.to_jsonl();
        let mut w = sink.lock().unwrap();
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
    state.access.push(record);
    state
        .registry
        .counter_add("jedule_access_log_records_total", &[], 1);
}

/// Records a loop-generated response (head-parse 400, oversize 400,
/// idle-sweep 408) that never reached [`handle_request`]: it is counted
/// under the `loop` route, access-logged with disposition `error`, and
/// given a minimal trace so `X-Jedule-Request-Id` still correlates with
/// `/debug/trace/<id>` and `/debug/log`.
fn record_loop_response(state: &State, request_id: u64, status: u16, detail: &'static str) {
    let status_str = status.to_string();
    state.registry.counter_add(
        "jedule_http_requests_total",
        &[("route", "loop"), ("status", &status_str)],
        1,
    );
    let col = Collector::new();
    {
        let _g = col.install();
        let _s = col.span_with("serve.loop_error", detail);
    }
    emit_access(
        state,
        AccessRecord {
            id: request_id,
            unix_ms: unix_ms_now(),
            method: "-".to_string(),
            path: format!("({detail})"),
            opt_key: String::new(),
            status,
            disposition: "error".to_string(),
            dur_us: 0.0,
            bytes: 0,
            stages_us: Vec::new(),
            slow: false,
        },
    );
    state.traces.push(request_id, col.report());
}

const INDEX: &str = "\
jedule serve — render service

  GET /healthz                         liveness probe
  GET /render?file=F&fmt=svg|png       render a schedule under the root
        [&window=t0:t1][&lod=auto|off|force][&width=px]
        responses carry an ETag; revalidate with If-None-Match for 304
  GET /explore?file=F[&width=px]       interactive HTML explorer shell
        with &tile=1 (+ the /render params): one window/LOD SVG tile,
        byte-identical to /render for the same parameters
  GET /meta?file=F[&width=px]          figure metadata JSON (extents,
        clusters/hosts, task count, kinds) the explorer boots from
  GET /metrics                         Prometheus text exposition
  GET /metrics.json                    the same snapshot as key-sorted JSON
  GET /debug/dash                      self-contained live dashboard (polls
        /metrics.json; qps, latency percentiles, cache tiers, queue depth)
  GET /debug/log[?n=N][&status=S][&path=substr]
        recent access records as JSONL, newest first
  GET /debug/trace/<request-id>        Chrome trace JSON of a recent request

Connections are persistent (HTTP/1.1 keep-alive, pipelining allowed).
";

fn route(state: &State, req: &Request) -> Response {
    if req.method != "GET" {
        return Response::text(405, "only GET is supported\n");
    }
    match req.path.as_str() {
        "/" => Response::text(200, INDEX),
        "/healthz" => Response::text(200, "ok\n"),
        "/metrics" => handle_metrics(state),
        "/metrics.json" => handle_metrics_json(state),
        "/debug/dash" => handle_dash(),
        "/debug/log" => handle_log(state, req),
        "/render" => match handle_render(state, req) {
            Ok(resp) => resp,
            Err(resp) => resp,
        },
        "/explore" => match handle_explore(state, req) {
            Ok(resp) => resp,
            Err(resp) => resp,
        },
        "/meta" => match handle_meta(state, req) {
            Ok(resp) => resp,
            Err(resp) => resp,
        },
        p => match p.strip_prefix("/debug/trace/") {
            Some(id) => handle_trace(state, id),
            None => Response::text(404, "not found; see / for the route list\n"),
        },
    }
}

/// Refreshes the point-in-time gauges both metrics endpoints snapshot,
/// so `/metrics` and `/metrics.json` always expose the same families.
fn set_runtime_gauges(state: &State) {
    let r = &state.registry;
    r.gauge_set(
        "jedule_uptime_seconds",
        &[],
        state.started.elapsed().as_secs_f64(),
    );
    r.gauge_set(
        "jedule_render_cache_entries",
        &[],
        state.bodies.len() as f64,
    );
    r.gauge_set(
        "jedule_prepared_cache_entries",
        &[],
        state.prepared.len() as f64,
    );
    r.gauge_set(
        "jedule_tile_cache_entries",
        &[],
        state.tiles.tiles_len() as f64,
    );
    r.gauge_set(
        "jedule_plan_cache_entries",
        &[],
        state.tiles.plans_len() as f64,
    );
}

fn handle_metrics(state: &State) -> Response {
    let _s = obs::span("serve.metrics_encode");
    set_runtime_gauges(state);
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: Arc::new(state.registry.render_prometheus().into_bytes()),
        etag: None,
    }
}

/// `/metrics.json` — the registry snapshot as key-sorted JSON, same
/// families and series as the text exposition (the dash polls this).
fn handle_metrics_json(state: &State) -> Response {
    let _s = obs::span("serve.metrics_encode");
    set_runtime_gauges(state);
    Response {
        status: 200,
        content_type: "application/json",
        body: Arc::new(state.registry.render_json().into_bytes()),
        etag: None,
    }
}

/// `/debug/dash` — a single compiled-in, dependency-free HTML page
/// (same discipline as the explorer template: zero external requests).
/// All live data arrives by polling `/metrics.json` from the page.
fn handle_dash() -> Response {
    const DASH: &str = include_str!("dash.html");
    Response::bytes(200, "text/html; charset=utf-8", DASH.as_bytes().to_vec())
}

/// `/debug/log?n=&status=&path=` — tails the access-record ring as
/// JSONL, newest first.
fn handle_log(state: &State, req: &Request) -> Response {
    let n = match req.param("n") {
        None => 100,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::text(400, format!("n: cannot parse {v:?}\n")),
        },
    };
    let status = match req.param("status") {
        None => None,
        Some(v) => match v.parse::<u16>() {
            Ok(s) => Some(s),
            Err(_) => return Response::text(400, format!("status: cannot parse {v:?}\n")),
        },
    };
    let mut out = String::new();
    for rec in state.access.tail(n, status, req.param("path")) {
        out.push_str(&rec.to_jsonl());
        out.push('\n');
    }
    Response::bytes(200, "application/x-ndjson", out.into_bytes())
}

fn handle_trace(state: &State, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::text(400, "trace id must be a decimal request id\n");
    };
    match state.traces.get(id) {
        Some(report) => Response {
            status: 200,
            content_type: "application/json",
            body: Arc::new(report.to_chrome_trace().into_bytes()),
            etag: None,
        },
        None => Response::text(
            404,
            format!(
                "no retained trace for request {id}; retained ids: {:?}\n",
                state.traces.ids()
            ),
        ),
    }
}

/// Parses and bounds a `width` query parameter (shared by `/render`,
/// `/explore` and `/meta`, so every endpoint accepts the same range).
fn parse_width(width: Option<&str>) -> Result<f64, String> {
    let width: f64 = match width {
        None => 800.0,
        Some(w) => w
            .parse()
            .map_err(|_| format!("width: cannot parse {w:?}"))?,
    };
    if !(64.0..=8192.0).contains(&width) {
        return Err(format!("width {width} outside 64..=8192"));
    }
    Ok(width)
}

/// The parsed, canonicalized render parameters: the options to render
/// with plus the canonical cache-key string they serialize to.
pub fn render_options_from_params(
    fmt: Option<&str>,
    width: Option<&str>,
    window: Option<&str>,
    lod: Option<&str>,
) -> Result<(jedule_render::RenderOptions, String), String> {
    use jedule_render::{LodMode, OutputFormat, RenderOptions};
    let fmt = fmt.unwrap_or("svg");
    let format = match fmt.to_ascii_lowercase().as_str() {
        "svg" => OutputFormat::Svg,
        "png" => OutputFormat::Png,
        other => return Err(format!("fmt must be svg or png, got {other:?}")),
    };
    let width = parse_width(width)?;
    let time_window = match window {
        None => None,
        Some(w) => {
            let (a, b) = w
                .split_once(':')
                .or_else(|| w.split_once(','))
                .ok_or_else(|| format!("window must be t0:t1, got {w:?}"))?;
            let t0: f64 = a.parse().map_err(|_| format!("window t0: {a:?}"))?;
            let t1: f64 = b.parse().map_err(|_| format!("window t1: {b:?}"))?;
            if t1.partial_cmp(&t0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("window end {t1} must exceed start {t0}"));
            }
            Some((t0, t1))
        }
    };
    let lod = match lod {
        None => LodMode::Auto,
        Some(l) => LodMode::parse(l).ok_or_else(|| format!("lod must be auto|off|force: {l:?}"))?,
    };
    // One request = one deterministic sequential render (threads: 1);
    // service parallelism comes from concurrent requests, and pinning
    // the encoder keeps bodies byte-identical across worker counts.
    let opts = RenderOptions {
        format,
        width,
        time_window,
        lod,
        threads: 1,
        ..RenderOptions::default()
    };
    let key = format!(
        "fmt={};w={width};lod={lod:?};window={}",
        if format == jedule_render::OutputFormat::Png {
            "png"
        } else {
            "svg"
        },
        match time_window {
            Some((a, b)) => format!("{a}:{b}"),
            None => "full".to_string(),
        }
    );
    Ok((opts, key))
}

/// Resolves `file` strictly inside `root`. Rejects absolute paths and
/// parent components before touching the filesystem, then double-checks
/// the canonicalized result still lives under the canonicalized root
/// (symlinks cannot escape either).
pub fn resolve_under_root(root: &Path, file: &str) -> Result<PathBuf, String> {
    let rel = Path::new(file);
    if rel.is_absolute()
        || rel
            .components()
            .any(|c| matches!(c, Component::ParentDir | Component::Prefix(_)))
    {
        return Err(format!(
            "file {file:?} must be a relative path inside the serve root"
        ));
    }
    let joined = root.join(rel);
    let canon = joined
        .canonicalize()
        .map_err(|e| format!("file {file:?}: {e}"))?;
    if !canon.starts_with(root) {
        return Err(format!("file {file:?} escapes the serve root"));
    }
    Ok(canon)
}

/// The strong validator for a render response:
/// `"<content digest>-<option-key digest>"`. Same input bytes + same
/// canonical options ⇒ same body ⇒ same ETag.
fn etag_for(digest: u64, opt_key: &str) -> String {
    format!("\"{digest:016x}-{:016x}\"", fnv1a64(opt_key.as_bytes()))
}

/// The input's content digest, re-reading the file only when its
/// `(mtime, len)` stat changed since the cached digest was computed.
/// Returns the source text too when the validation forced a read, so
/// the caller can parse without a second read.
fn digest_for(state: &State, path: &Path) -> Result<(u64, Option<String>), Response> {
    let meta = std::fs::metadata(path)
        .map_err(|e| Response::text(404, format!("{}: {e}\n", path.display())))?;
    let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
    let len = meta.len();
    let key = path.to_path_buf();
    if let Some(d) = state.digests.get(&key) {
        if d.mtime == mtime && d.len == len {
            obs::count("serve.digest_cache_hit", 1);
            return Ok((d.digest, None));
        }
    }
    let src = {
        let _s = obs::span("serve.read");
        std::fs::read_to_string(path)
            .map_err(|e| Response::text(404, format!("{}: {e}\n", path.display())))?
    };
    obs::count("serve.bytes_read", src.len() as u64);
    let digest = fnv1a64(src.as_bytes());
    state
        .digests
        .insert(key, Arc::new(FileDigest { mtime, len, digest }));
    Ok((digest, Some(src)))
}

/// Probes the input's `.jpack` sidecar on a prepared-cache miss.
/// `Some` only for a well-formed pack whose stored source digest
/// matches the current content digest. A stale sidecar (the input
/// changed since it was packed) is skipped silently; a corrupt one is
/// skipped too — the server only ever *reads* sidecars, so rebuilding
/// is the operator's move (`jedule pack`). Every outcome is counted.
fn load_pack_sidecar(
    state: &State,
    path: &Path,
    digest: u64,
) -> Option<jedule_core::snap::PackedSchedule> {
    let sidecar = jedule_core::snap::sidecar_path(path);
    if !sidecar.exists() {
        return None;
    }
    let (result, packed) = match jedule_core::snap::load_if_fresh(&sidecar, digest) {
        Ok(Some(p)) => ("hit", Some(p)),
        Ok(None) => ("stale", None),
        Err(_) => ("error", None),
    };
    state
        .registry
        .counter_add("jedule_pack_sidecar_total", &[("result", result)], 1);
    obs::count(
        match result {
            "hit" => "serve.pack_sidecar_hit",
            "stale" => "serve.pack_sidecar_stale",
            _ => "serve.pack_sidecar_error",
        },
        1,
    );
    packed
}

/// The prepared bundle for an input: prepared-cache hit, fresh `.jpack`
/// sidecar, or cold text ingest — the one acquisition path every
/// figure- or metadata-producing endpoint shares. `src` carries the
/// source text when the digest validation already read the file.
fn prepared_for(
    state: &State,
    path: &Path,
    digest: u64,
    mut src: Option<String>,
) -> Result<Arc<PreparedSchedule>, Response> {
    match state.prepared.get(&digest) {
        Some(p) => {
            state
                .registry
                .counter_add("jedule_prepared_cache_hits_total", &[], 1);
            Ok(p)
        }
        None => {
            state
                .registry
                .counter_add("jedule_prepared_cache_misses_total", &[], 1);
            // A fresh `.jpack` sidecar beats the text cold path: the
            // content digest just computed is exactly what the pack
            // header stores, so a digest match maps the snapshot
            // instead of parsing + preparing the text.
            match load_pack_sidecar(state, path, digest) {
                Some(packed) => Ok(state
                    .prepared
                    .insert(digest, Arc::new(PreparedSchedule::from_pack(packed)))),
                None => {
                    let src = match src.take() {
                        Some(s) => s,
                        None => {
                            let _s = obs::span("serve.read");
                            std::fs::read_to_string(path).map_err(|e| {
                                Response::text(404, format!("{}: {e}\n", path.display()))
                            })?
                        }
                    };
                    let schedule = ingest::parse_schedule(&src, path)
                        .map_err(|e| Response::text(400, e + "\n"))?;
                    Ok(state
                        .prepared
                        .insert(digest, Arc::new(PreparedSchedule::new(schedule))))
                }
            }
        }
    }
}

/// The one figure pipeline behind `/render` and `/explore?tile=1`:
/// digest → ETag revalidation → body cache → prepared schedule → tile
/// assembly. Both endpoints call exactly this with the same canonical
/// option key, so a tile fetched by the explorer is byte-identical to
/// the `/render` response for the same (fmt, width, window, lod) — and
/// warms the same caches.
fn figure_response(
    state: &State,
    req: &Request,
    path: &Path,
    opts: &jedule_render::RenderOptions,
    opt_key: &str,
) -> Result<Response, Response> {
    // The span detail carries the canonical option key up to the
    // access log (and times the whole figure pipeline as one stage).
    let _fig = obs::span_with("serve.figure", || opt_key.to_string());
    let content_type: &'static str = match opts.format {
        jedule_render::OutputFormat::Png => "image/png",
        _ => "image/svg+xml",
    };

    let (digest, src) = digest_for(state, path)?;
    let etag = etag_for(digest, opt_key);

    // Revalidation first: a matching ETag needs no body, no cache
    // lookup, not even a file read (the digest cache is stat-validated)
    // — this is the sub-millisecond 304 path. 304s sit outside the
    // hit/miss partition, which covers 200 responses only.
    if req.if_none_match(&etag) {
        state
            .registry
            .counter_add("jedule_render_not_modified_total", &[], 1);
        obs::count("serve.not_modified", 1);
        return Ok(Response::not_modified(content_type, etag));
    }

    // Exactly one of hits/misses per 200 render — the pair partitions
    // the figure-producing 200 responses minus revalidations, even when
    // concurrent misses race on the same key.
    if let Some(body) = state.bodies.get(&(digest, opt_key.to_string())) {
        state
            .registry
            .counter_add("jedule_render_cache_hits_total", &[], 1);
        obs::count("serve.body_cache_hit", 1);
        return Ok(
            Response::shared(200, body.content_type, Arc::clone(&body.bytes)).with_etag(etag),
        );
    }
    state
        .registry
        .counter_add("jedule_render_cache_misses_total", &[], 1);
    obs::count("serve.body_cache_miss", 1);

    let prepared = prepared_for(state, path, digest, src)?;

    // Body-cache miss ⇒ assemble from tiles. Warm shards skip layout
    // (SVG: pure concatenation; PNG: concatenate pixels + sequential
    // encode); only missing shards touch the scene, which is laid out
    // at most once, lazily.
    let (bytes, ct) = {
        let _s = obs::span("serve.render");
        state
            .tiles
            .render(&state.registry, digest, opts, opt_key, &mut |scratch| {
                let _s = obs::span("render.layout");
                jedule_render::layout_prepared_scratch(&prepared, opts, scratch)
            })
    };
    obs::count("serve.bytes_rendered", bytes.len() as u64);
    let bytes = Arc::new(bytes);
    state.bodies.insert(
        (digest, opt_key.to_string()),
        Arc::new(Body {
            bytes: Arc::clone(&bytes),
            content_type: ct,
        }),
    );
    Ok(Response::shared(200, ct, bytes).with_etag(etag))
}

/// Extracts the required `file` parameter and resolves it under the
/// serve root (shared by every figure endpoint).
fn resolve_file_param<'a>(
    state: &State,
    req: &'a Request,
    what: &str,
) -> Result<(&'a str, PathBuf), Response> {
    let file = req.param("file").ok_or_else(|| {
        Response::text(
            400,
            format!("{what} needs ?file=<path under the serve root>\n"),
        )
    })?;
    let path = resolve_under_root(&state.root, file).map_err(|e| Response::text(404, e + "\n"))?;
    Ok((file, path))
}

fn handle_render(state: &State, req: &Request) -> Result<Response, Response> {
    let (_, path) = resolve_file_param(state, req, "render")?;
    let (opts, opt_key) = render_options_from_params(
        req.param("fmt"),
        req.param("width"),
        req.param("window"),
        req.param("lod"),
    )
    .map_err(|msg| Response::text(400, msg + "\n"))?;
    figure_response(state, req, &path, &opts, &opt_key)
}

/// `/explore?file=F[&width=px]` — the interactive explorer. Without
/// `tile`, responds with the shared HTML shell (same template as
/// `--fmt html`, serve boot mode); with `&tile=1` plus the `/render`
/// parameters it is a figure fetch through [`figure_response`] — same
/// caches, same ETags, byte-identical bodies.
fn handle_explore(state: &State, req: &Request) -> Result<Response, Response> {
    let (file, path) = resolve_file_param(state, req, "explore")?;
    if req.param("tile").is_some() {
        let (opts, opt_key) = render_options_from_params(
            req.param("fmt"),
            req.param("width"),
            req.param("window"),
            req.param("lod"),
        )
        .map_err(|msg| Response::text(400, msg + "\n"))?;
        return figure_response(state, req, &path, &opts, &opt_key);
    }
    let width = parse_width(req.param("width")).map_err(|msg| Response::text(400, msg + "\n"))?;
    let shell = jedule_render::html::explore_shell(file, width);
    Ok(Response::bytes(
        200,
        "text/html; charset=utf-8",
        shell.into_bytes(),
    ))
}

/// `/meta?file=F[&width=px]` — the figure-metadata JSON the explorer
/// shell boots from: canvas + panel geometry at `width`, clusters,
/// extents, task count, kind legend, and (small schedules) the task
/// list for tooltips. Flows through the same digest/ETag/body-cache
/// stack as figures, keyed `meta;w=<width>`.
fn handle_meta(state: &State, req: &Request) -> Result<Response, Response> {
    let (_, path) = resolve_file_param(state, req, "meta")?;
    let width = parse_width(req.param("width")).map_err(|msg| Response::text(400, msg + "\n"))?;
    let opt_key = format!("meta;w={width}");
    let _fig = obs::span_with("serve.figure", || opt_key.clone());

    let (digest, src) = digest_for(state, &path)?;
    let etag = etag_for(digest, &opt_key);
    if req.if_none_match(&etag) {
        state
            .registry
            .counter_add("jedule_render_not_modified_total", &[], 1);
        obs::count("serve.not_modified", 1);
        return Ok(Response::not_modified("application/json", etag));
    }
    if let Some(body) = state.bodies.get(&(digest, opt_key.clone())) {
        state
            .registry
            .counter_add("jedule_render_cache_hits_total", &[], 1);
        obs::count("serve.body_cache_hit", 1);
        return Ok(
            Response::shared(200, body.content_type, Arc::clone(&body.bytes)).with_etag(etag),
        );
    }
    state
        .registry
        .counter_add("jedule_render_cache_misses_total", &[], 1);
    obs::count("serve.body_cache_miss", 1);

    let prepared = prepared_for(state, &path, digest, src)?;
    let opts = jedule_render::RenderOptions {
        width,
        threads: 1,
        ..jedule_render::RenderOptions::default()
    };
    let json = {
        let _s = obs::span("serve.meta_encode");
        jedule_render::html::meta_json_prepared(&prepared, &opts)
    };
    let bytes = Arc::new(json.into_bytes());
    state.bodies.insert(
        (digest, opt_key),
        Arc::new(Body {
            bytes: Arc::clone(&bytes),
            content_type: "application/json",
        }),
    );
    Ok(Response::shared(200, "application/json", bytes).with_etag(etag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_are_bounded() {
        assert_eq!(route_label("/render"), "/render");
        assert_eq!(route_label("/debug/trace/17"), "/debug/trace");
        assert_eq!(route_label("/anything/else"), "other");
    }

    #[test]
    fn render_params_defaults_and_errors() {
        let (opts, key) = render_options_from_params(None, None, None, None).unwrap();
        assert_eq!(opts.format, jedule_render::OutputFormat::Svg);
        assert_eq!(opts.width, 800.0);
        assert_eq!(opts.threads, 1);
        assert!(key.contains("fmt=svg") && key.contains("window=full"));
        assert!(render_options_from_params(Some("pdf"), None, None, None).is_err());
        assert!(render_options_from_params(None, Some("10"), None, None).is_err());
        assert!(render_options_from_params(None, None, Some("5:5"), None).is_err());
        assert!(render_options_from_params(None, None, Some("junk"), None).is_err());
        assert!(render_options_from_params(None, None, None, Some("bogus")).is_err());
        let (opts, key) =
            render_options_from_params(Some("png"), Some("640"), Some("1:2"), Some("off")).unwrap();
        assert_eq!(opts.format, jedule_render::OutputFormat::Png);
        assert_eq!(opts.time_window, Some((1.0, 2.0)));
        assert!(key.contains("window=1:2"));
    }

    #[test]
    fn root_resolution_blocks_traversal() {
        let dir = std::env::temp_dir().join("jedule_serve_root_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ok.csv"), "x").unwrap();
        let root = dir.canonicalize().unwrap();
        assert!(resolve_under_root(&root, "ok.csv").is_ok());
        assert!(resolve_under_root(&root, "../etc/passwd").is_err());
        assert!(resolve_under_root(&root, "/etc/passwd").is_err());
        assert!(resolve_under_root(&root, "missing.csv").is_err());
    }

    #[test]
    fn etags_are_strong_and_option_sensitive() {
        let a = etag_for(1, "fmt=svg");
        assert!(a.starts_with('"') && a.ends_with('"'));
        assert_eq!(a, etag_for(1, "fmt=svg"));
        assert_ne!(a, etag_for(1, "fmt=png"));
        assert_ne!(a, etag_for(2, "fmt=svg"));
    }
}
