//! The Linux socket engine: one epoll thread owns every connection,
//! workers only render (DESIGN.md §6c).
//!
//! The previous server burned one thread per in-flight *connection* and
//! closed it after a single exchange; under keep-alive load most worker
//! time went to blocking reads. Here a single event-loop thread
//! multiplexes all sockets through [`crate::epoll`]: it accepts, feeds
//! bytes into per-connection [`RecvBuf`]s, and hands complete parsed
//! requests to a small worker pool over a channel. Workers never touch
//! sockets — they produce a serialized response head plus a shared body
//! (`Arc`, so cached bytes are not copied per request), signal an
//! eventfd, and the loop streams the buffer out, arming `EPOLLOUT` only
//! while a write is actually short.
//!
//! Connection lifecycle: `Reading` (accumulating a head) → `Busy` (one
//! request in flight; pipelined bytes stay buffered and request order
//! is preserved per connection) → `Writing` (draining head + body) →
//! back to `Reading` under keep-alive, or closed. Idle connections are
//! swept after [`IDLE_TIMEOUT`]; half-written heads get a best-effort
//! `408`. Shutdown is graceful: the listener is dropped first, reading
//! connections close, busy/writing ones finish, then the job channel
//! closes and the workers join.

#![cfg(target_os = "linux")]

use crate::epoll::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::http::{self, RecvBuf, Request, Response};
use jedule_core::obs::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Produces the response for one parsed request (the worker-side half;
/// [`crate`] passes the routing/metrics/trace closure).
pub type Handler = Arc<dyn Fn(u64, &Request) -> Response + Send + Sync>;

/// The loop's telemetry sink. The loop and the workers poke gauges and
/// histograms straight into the process [`Registry`], and loop-generated
/// responses (head-parse 400s, oversize 400s, idle-sweep 408s) — which
/// never reach the worker-side handler — are reported through
/// `on_loop_response` so the serve layer can still count, access-log
/// and trace-correlate them.
#[derive(Clone)]
pub struct LoopTelemetry {
    /// Process-lifetime metrics registry.
    pub registry: Registry,
    /// `(request_id, status, detail)` for every loop-generated response.
    pub on_loop_response: Arc<dyn Fn(u64, u16, &'static str) + Send + Sync>,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Reading connections with no progress for this long are swept.
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// epoll_wait tick; bounds shutdown-flag and idle-sweep latency.
const TICK_MS: i32 = 250;

/// Connection-census/queue-depth gauges refresh at most this often, so
/// a hot loop does not pay an O(connections) walk per event batch.
const CENSUS_EVERY: Duration = Duration::from_millis(100);

/// Dispatch-path latency buckets: eventfd wake-to-dispatch and render
/// queue wait sit in the tens of microseconds when healthy; what needs
/// resolving is the tail when the queue backs up.
const DISPATCH_BUCKETS_S: [f64; 10] = [
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5,
];

/// Keep-alive reuse-depth buckets (requests answered per connection).
const REUSE_BUCKETS: [f64; 7] = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0];

/// A parsed request on its way to a worker.
struct Job {
    token: u64,
    request_id: u64,
    req: Request,
    /// When the loop queued the job (render-queue wait telemetry).
    enqueued: Instant,
}

/// A finished response on its way back to the loop.
struct Done {
    token: u64,
    head: Vec<u8>,
    body: Arc<Vec<u8>>,
    keep_alive: bool,
    /// When the worker signaled the eventfd (wake-to-dispatch latency).
    finished: Instant,
}

/// A partially written response. `pos` indexes the virtual
/// concatenation head ++ body; the body is never copied.
struct OutBuf {
    head: Vec<u8>,
    body: Arc<Vec<u8>>,
    pos: usize,
}

impl OutBuf {
    fn new(head: Vec<u8>, body: Arc<Vec<u8>>) -> OutBuf {
        OutBuf { head, body, pos: 0 }
    }

    /// Writes as much as the socket accepts. `Ok(true)` = fully sent.
    fn write_some(&mut self, stream: &mut TcpStream) -> io::Result<bool> {
        loop {
            let chunk: &[u8] = if self.pos < self.head.len() {
                &self.head[self.pos..]
            } else {
                let off = self.pos - self.head.len();
                if off >= self.body.len() {
                    return Ok(true);
                }
                &self.body[off..]
            };
            match stream.write(chunk) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

enum Phase {
    /// Accumulating a request head.
    Reading,
    /// One request dispatched to the pool; awaiting its `Done`.
    Busy,
    /// Draining a response.
    Writing(OutBuf),
}

struct Conn {
    stream: TcpStream,
    rb: RecvBuf,
    phase: Phase,
    /// Close once the current write completes (`Connection: close`,
    /// parse error, or peer half-closed while we were busy).
    close_after: bool,
    last_activity: Instant,
    /// Responses fully handed to this connection (keep-alive reuse
    /// depth, observed into a histogram when the connection closes).
    served: u64,
}

struct EventLoop {
    ep: Epoll,
    conns: HashMap<u64, Conn>,
    job_tx: mpsc::Sender<Job>,
    next_id: Arc<AtomicU64>,
    next_token: u64,
    telemetry: Option<LoopTelemetry>,
    /// Jobs sent to the pool but not yet picked up by a worker.
    queue_depth: Arc<AtomicI64>,
    /// Workers currently inside the handler.
    busy_workers: Arc<AtomicI64>,
    last_census: Instant,
}

/// Runs the epoll server until `shutdown`, then drains. Blocks the
/// calling thread; worker threads are joined before returning.
pub fn run(
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    next_id: Arc<AtomicU64>,
    handler: Handler,
    telemetry: Option<LoopTelemetry>,
) -> Result<(), String> {
    let ep = Epoll::new().map_err(|e| format!("epoll_create1: {e}"))?;
    let wake = Arc::new(EventFd::new().map_err(|e| format!("eventfd: {e}"))?);
    ep.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)
        .map_err(|e| format!("epoll add listener: {e}"))?;
    ep.add(wake.as_raw_fd(), TOKEN_WAKE, EPOLLIN)
        .map_err(|e| format!("epoll add eventfd: {e}"))?;

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let queue_depth = Arc::new(AtomicI64::new(0));
    let busy_workers = Arc::new(AtomicI64::new(0));
    let mut joins = Vec::with_capacity(workers);
    for _ in 0..workers.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let done_tx = done_tx.clone();
        let wake = Arc::clone(&wake);
        let handler = Arc::clone(&handler);
        let telemetry = telemetry.clone();
        let queue_depth = Arc::clone(&queue_depth);
        let busy_workers = Arc::clone(&busy_workers);
        joins.push(std::thread::spawn(move || loop {
            let job = match job_rx.lock().unwrap().recv() {
                Ok(j) => j,
                Err(_) => break, // sender dropped: drained, shut down
            };
            queue_depth.fetch_sub(1, Ordering::AcqRel);
            busy_workers.fetch_add(1, Ordering::AcqRel);
            if let Some(t) = &telemetry {
                t.registry.observe_with(
                    "jedule_render_queue_wait_seconds",
                    &[],
                    &DISPATCH_BUCKETS_S,
                    job.enqueued.elapsed().as_secs_f64(),
                );
            }
            let job_start = Instant::now();
            let resp = handler(job.request_id, &job.req);
            if let Some(t) = &telemetry {
                t.registry.observe(
                    "jedule_worker_job_seconds",
                    &[],
                    job_start.elapsed().as_secs_f64(),
                );
            }
            busy_workers.fetch_sub(1, Ordering::AcqRel);
            let keep_alive = job.req.keep_alive;
            let done = Done {
                token: job.token,
                head: resp.encode_head(job.request_id, keep_alive),
                body: resp.body,
                keep_alive,
                finished: Instant::now(),
            };
            if done_tx.send(done).is_err() {
                break;
            }
            wake.signal();
        }));
    }
    drop(done_tx);

    let mut el = EventLoop {
        ep,
        conns: HashMap::new(),
        job_tx,
        next_id,
        next_token: FIRST_CONN_TOKEN,
        telemetry,
        queue_depth,
        busy_workers,
        last_census: Instant::now(),
    };
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
    let mut listener = Some(listener);

    loop {
        if shutdown.load(Ordering::SeqCst) {
            if listener.take().is_some() {
                // Dropping the listener closes its fd, which also
                // removes the epoll registration: no new connections.
            }
            // Reading connections have nothing owed to them; close.
            let idle: Vec<u64> = el
                .conns
                .iter()
                .filter(|(_, c)| matches!(c.phase, Phase::Reading))
                .map(|(t, _)| *t)
                .collect();
            for t in idle {
                el.close_conn(t);
            }
            if el.conns.is_empty() {
                break; // busy + writing all drained
            }
        }

        let n = match el.ep.wait(&mut events, TICK_MS) {
            Ok(n) => n,
            Err(e) => {
                drop(el.job_tx);
                for j in joins {
                    let _ = j.join();
                }
                return Err(format!("epoll_wait: {e}"));
            }
        };
        for ev in &events[..n] {
            let (token, bits) = (ev.data, ev.events);
            match token {
                TOKEN_LISTENER => {
                    if let Some(l) = &listener {
                        el.accept_ready(l);
                    }
                }
                TOKEN_WAKE => wake.drain(),
                _ => el.conn_event(token, bits),
            }
        }
        // Responses can be ready whether or not the eventfd edge was in
        // this batch; always drain the channel.
        while let Ok(done) = done_rx.try_recv() {
            el.on_done(done);
        }
        el.sweep_idle();
        el.publish_census();
    }

    drop(el.job_tx);
    for j in joins {
        let _ = j.join();
    }
    Ok(())
}

impl EventLoop {
    /// Removes a connection, observing its keep-alive reuse depth on
    /// the way out — the one funnel every close path goes through.
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if let Some(t) = &self.telemetry {
                if conn.served > 0 {
                    t.registry.observe_with(
                        "jedule_connection_requests",
                        &[],
                        &REUSE_BUCKETS,
                        conn.served as f64,
                    );
                }
            }
        }
    }

    /// Publishes the connection-state census and queue-depth gauges,
    /// rate-limited to [`CENSUS_EVERY`].
    fn publish_census(&mut self) {
        let Some(t) = &self.telemetry else { return };
        if self.last_census.elapsed() < CENSUS_EVERY {
            return;
        }
        self.last_census = Instant::now();
        let (mut reading, mut busy, mut writing) = (0u64, 0u64, 0u64);
        for c in self.conns.values() {
            match c.phase {
                Phase::Reading => reading += 1,
                Phase::Busy => busy += 1,
                Phase::Writing(_) => writing += 1,
            }
        }
        let r = &t.registry;
        r.gauge_set(
            "jedule_connections",
            &[("state", "reading")],
            reading as f64,
        );
        r.gauge_set("jedule_connections", &[("state", "busy")], busy as f64);
        r.gauge_set(
            "jedule_connections",
            &[("state", "writing")],
            writing as f64,
        );
        r.gauge_set(
            "jedule_render_queue_depth",
            &[],
            self.queue_depth.load(Ordering::Acquire).max(0) as f64,
        );
        r.gauge_set(
            "jedule_busy_workers",
            &[],
            self.busy_workers.load(Ordering::Acquire).max(0) as f64,
        );
    }

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Head and body go out as separate writes; without
                    // NODELAY, Nagle holds the small second write for
                    // the peer's delayed ACK (~40 ms per response).
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .ep
                        .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
                        .is_err()
                    {
                        continue;
                    }
                    if let Some(t) = &self.telemetry {
                        t.registry
                            .counter_add("jedule_connections_accepted_total", &[], 1);
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            rb: RecvBuf::new(),
                            phase: Phase::Reading,
                            close_after: false,
                            last_activity: Instant::now(),
                            served: 0,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // closed earlier in this batch
        };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        conn.last_activity = Instant::now();
        match conn.phase {
            Phase::Writing(_) if bits & EPOLLOUT != 0 => self.advance_write(token),
            Phase::Reading if bits & (EPOLLIN | EPOLLRDHUP) != 0 => self.advance_read(token),
            Phase::Busy if bits & EPOLLRDHUP != 0 => {
                // Peer half-closed while we render; still deliver the
                // response, then close instead of re-arming.
                conn.close_after = true;
            }
            _ => {}
        }
    }

    /// Reads whatever the socket has, then tries to produce a request.
    fn advance_read(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 4096];
        let mut peer_closed = false;
        loop {
            // Never buffer past the head cap: take at most up to it and
            // let `next_request` reject the oversize before more reads.
            let want = chunk
                .len()
                .min(http::MAX_HEAD.saturating_sub(conn.rb.len()));
            if want == 0 {
                break;
            }
            match conn.stream.read(&mut chunk[..want]) {
                Ok(0) => {
                    peer_closed = true;
                    break;
                }
                Ok(n) => conn.rb.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if peer_closed && self.conns.get(&token).map(|c| c.rb.is_empty()) == Some(true) {
            self.close_conn(token); // clean close between requests
            return;
        }
        self.next_request(token, peer_closed);
    }

    /// Drives a `Reading` connection forward: dispatches a buffered
    /// head, rejects an oversized or truncated one, or (re-)arms
    /// `EPOLLIN` to wait for more bytes.
    fn next_request(&mut self, token: u64, peer_closed: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some(head) = conn.rb.take_head() {
            match http::parse_head(&head) {
                Ok(req) => {
                    let request_id = self.next_id.fetch_add(1, Ordering::SeqCst) + 1;
                    conn.phase = Phase::Busy;
                    // Only peer-close detection while a job is in
                    // flight; pipelined bytes stay queued in `rb`.
                    let _ = self.ep.modify(conn.stream.as_raw_fd(), token, EPOLLRDHUP);
                    self.queue_depth.fetch_add(1, Ordering::AcqRel);
                    if self
                        .job_tx
                        .send(Job {
                            token,
                            request_id,
                            req,
                            enqueued: Instant::now(),
                        })
                        .is_err()
                    {
                        self.queue_depth.fetch_sub(1, Ordering::AcqRel);
                        self.close_conn(token);
                    }
                }
                Err(e) => self.respond_inline(token, Response::text(400, e + "\n"), "head-parse"),
            }
            return;
        }
        if conn.rb.over_cap() {
            self.respond_inline(
                token,
                Response::text(400, "request head exceeds 16 KiB\n"),
                "head-oversize",
            );
        } else if peer_closed {
            self.close_conn(token); // truncated head: nothing to answer
        } else {
            let _ = self
                .ep
                .modify(conn.stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP);
        }
    }

    /// Sends a loop-generated response (parse failures, oversize) and
    /// closes afterwards — the framing is unrecoverable. Reported via
    /// `on_loop_response` so the failure is still counted, access-logged
    /// and trace-correlatable even though no worker ever saw it.
    fn respond_inline(&mut self, token: u64, resp: Response, detail: &'static str) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let request_id = self.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let status = resp.status;
        conn.close_after = true;
        conn.served += 1;
        conn.phase = Phase::Writing(OutBuf::new(resp.encode_head(request_id, false), resp.body));
        if let Some(t) = &self.telemetry {
            (t.on_loop_response)(request_id, status, detail);
        }
        self.advance_write(token);
    }

    fn on_done(&mut self, done: Done) {
        if let Some(t) = &self.telemetry {
            t.registry.observe_with(
                "jedule_wake_dispatch_seconds",
                &[],
                &DISPATCH_BUCKETS_S,
                done.finished.elapsed().as_secs_f64(),
            );
        }
        let Some(conn) = self.conns.get_mut(&done.token) else {
            return; // connection died while rendering
        };
        conn.close_after |= !done.keep_alive;
        conn.served += 1;
        conn.phase = Phase::Writing(OutBuf::new(done.head, done.body));
        conn.last_activity = Instant::now();
        self.advance_write(done.token);
    }

    fn advance_write(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let Phase::Writing(out) = &mut conn.phase else {
            return;
        };
        match out.write_some(&mut conn.stream) {
            Ok(true) => {
                if conn.close_after {
                    self.close_conn(token);
                    return;
                }
                conn.phase = Phase::Reading;
                // A pipelined request may already be buffered; serve it
                // without waiting for another readiness edge.
                self.next_request(token, false);
            }
            Ok(false) => {
                let _ = self
                    .ep
                    .modify(conn.stream.as_raw_fd(), token, EPOLLOUT | EPOLLRDHUP);
            }
            Err(_) => {
                self.close_conn(token);
            }
        }
    }

    /// Closes `Reading` connections idle past [`IDLE_TIMEOUT`]; a
    /// half-sent head gets a best-effort `408` on the way out.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                matches!(c.phase, Phase::Reading)
                    && now.duration_since(c.last_activity) > IDLE_TIMEOUT
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            let had_partial = self.conns.get(&token).is_some_and(|c| !c.rb.is_empty());
            if had_partial {
                let id = self.next_id.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(conn) = self.conns.get_mut(&token) {
                    let resp = Response::text(408, "timed out waiting for a complete head\n");
                    let _ = conn.stream.write_all(&resp.encode(id, false));
                    conn.served += 1;
                }
                if let Some(t) = &self.telemetry {
                    (t.on_loop_response)(id, 408, "idle-timeout");
                }
            }
            if let Some(t) = &self.telemetry {
                t.registry.counter_add("jedule_idle_closed_total", &[], 1);
            }
            self.close_conn(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn start(
        handler: Handler,
    ) -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<Result<(), String>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = std::thread::spawn(move || {
            run(
                listener,
                2,
                flag,
                Arc::new(AtomicU64::new(0)),
                handler,
                None,
            )
        });
        (addr, shutdown, join)
    }

    fn echo_handler() -> Handler {
        Arc::new(|_id, req: &Request| Response::text(200, format!("path={}\n", req.path)))
    }

    /// Reads one Content-Length-framed response off a buffered stream.
    fn read_response(r: &mut BufReader<TcpStream>) -> (String, Vec<u8>) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            assert!(r.read_line(&mut line).unwrap() > 0, "peer closed mid-head");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(r, &mut body).unwrap();
        (head, body)
    }

    #[test]
    fn keep_alive_serves_sequential_and_pipelined_requests() {
        let (addr, shutdown, join) = start(echo_handler());
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;

        // Two sequential requests on one connection.
        w.write_all(b"GET /a HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (head, body) = read_response(&mut r);
        assert!(head.contains("Connection: keep-alive"));
        assert_eq!(body, b"path=/a\n");
        w.write_all(b"GET /b HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (_, body) = read_response(&mut r);
        assert_eq!(body, b"path=/b\n");

        // Two pipelined requests in one write; responses in order.
        w.write_all(b"GET /p1 HTTP/1.1\r\n\r\nGET /p2 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (_, body) = read_response(&mut r);
        assert_eq!(body, b"path=/p1\n");
        let (head, body) = read_response(&mut r);
        assert_eq!(body, b"path=/p2\n");
        assert!(head.contains("Connection: close"));

        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_head_gets_400_and_close() {
        let (addr, shutdown, join) = start(echo_handler());
        let mut w = TcpStream::connect(addr).unwrap();
        w.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        let filler = vec![b'x'; 64 * 1024];
        let _ = w.write_all(&filler); // may fail once the 400 is queued
        let mut r = BufReader::new(w);
        let (head, _) = read_response(&mut r);
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap().unwrap();
    }

    #[test]
    fn telemetry_counts_connections_and_loop_errors() {
        let registry = Registry::new();
        type LoopError = (u64, u16, &'static str);
        let loop_errors: Arc<Mutex<Vec<LoopError>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&loop_errors);
        let telemetry = LoopTelemetry {
            registry: registry.clone(),
            on_loop_response: Arc::new(move |id, status, detail| {
                sink.lock().unwrap().push((id, status, detail));
            }),
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = std::thread::spawn(move || {
            run(
                listener,
                2,
                flag,
                Arc::new(AtomicU64::new(0)),
                echo_handler(),
                Some(telemetry),
            )
        });

        // One keep-alive connection serving two requests, then closing.
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        w.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        let _ = read_response(&mut r);
        w.write_all(b"GET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let _ = read_response(&mut r);
        drop((r, w));

        // One malformed head: loop-generated 400, reported via callback.
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut rb = BufReader::new(bad);
        let (head, _) = read_response(&mut rb);
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        drop(rb);

        // Both connections must be fully closed (reuse depth recorded)
        // before shutdown snapshots the registry.
        let deadline = Instant::now() + Duration::from_secs(5);
        while registry
            .histogram("jedule_connection_requests", &[])
            .map_or(0, |h| h.count)
            < 2
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        shutdown.store(true, Ordering::SeqCst);
        join.join().unwrap().unwrap();

        assert_eq!(
            registry.counter_value("jedule_connections_accepted_total", &[]),
            2
        );
        // The keep-alive connection served 2, the malformed one 1.
        let reuse = registry
            .histogram("jedule_connection_requests", &[])
            .unwrap();
        assert_eq!(reuse.count, 2);
        assert!((reuse.sum - 3.0).abs() < 1e-9);
        // Two handled jobs flowed through the queue + workers.
        let wait = registry
            .histogram("jedule_render_queue_wait_seconds", &[])
            .unwrap();
        assert_eq!(wait.count, 2);
        let jobs = registry
            .histogram("jedule_worker_job_seconds", &[])
            .unwrap();
        assert_eq!(jobs.count, 2);
        let wake = registry
            .histogram("jedule_wake_dispatch_seconds", &[])
            .unwrap();
        assert_eq!(wake.count, 2);
        // The loop error surfaced exactly once with its detail tag.
        let errs = loop_errors.lock().unwrap();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].1, 400);
        assert_eq!(errs[0].2, "head-parse");
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let handler: Handler = Arc::new(move |_id, _req| {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
            Response::text(200, "drained\n")
        });
        let (addr, shutdown, join) = start(handler);
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        w.write_all(b"GET /slow HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100)); // request reaches a worker
        shutdown.store(true, Ordering::SeqCst);
        gate.store(true, Ordering::SeqCst);
        let mut r = BufReader::new(stream);
        let (_, body) = read_response(&mut r);
        assert_eq!(body, b"drained\n");
        join.join().unwrap().unwrap();
    }
}
