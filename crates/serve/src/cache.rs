//! Serving caches: input digests, a prepared-schedule cache, a
//! rendered-body cache and the per-tile cache, all LRU-bounded.
//!
//! Keying follows DESIGN.md §6b/§6c: the **prepared cache** maps an
//! input's content digest to its [`PreparedSchedule`] (index/extents/
//! kinds built once, shared by every view of that input), the **body
//! cache** maps `(digest, canonical option string)` to finished output
//! bytes so repeated identical requests skip layout and encoding
//! entirely, and the **tile cache** maps `(digest, window-bucket,
//! row-band, lod, fmt)` to one shard of a figure so a body-cache miss
//! assembles mostly-cached tiles. All hand out `Arc`s — a hit never
//! copies the cached value.
//!
//! [`PreparedSchedule`]: jedule_core::PreparedSchedule

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// FNV-1a 64 — the same digest the golden-figure gate uses: tiny,
/// dependency-free, stable across platforms. Doubles as the content
/// half of `/render` ETags.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A small thread-safe LRU map. `get` refreshes recency; `insert`
/// evicts the least-recently-used entries down to `cap`. A `cap` of 0
/// disables caching entirely (every `get` misses).
///
/// Recency is a monotone tick; alongside the key map an inverse
/// tick→key index is maintained, so finding the eviction victim is a
/// `pop_first` — O(log n) per insert instead of the full-map
/// `min_by_key` scan this cache used to do on the hot path.
pub struct LruCache<K: Ord + Clone, V> {
    cap: usize,
    inner: Mutex<LruInner<K, V>>,
}

struct LruInner<K: Ord + Clone, V> {
    tick: u64,
    map: BTreeMap<K, (u64, Arc<V>)>,
    /// Inverse index: recency tick → key. Ticks are unique (one per
    /// touch), so this is a bijection with `map`'s tick column.
    by_tick: BTreeMap<u64, K>,
}

impl<K: Ord + Clone, V> LruCache<K, V> {
    pub fn new(cap: usize) -> LruCache<K, V> {
        LruCache {
            cap,
            inner: Mutex::new(LruInner {
                tick: 0,
                map: BTreeMap::new(),
                by_tick: BTreeMap::new(),
            }),
        }
    }

    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        let old_tick = std::mem::replace(&mut entry.0, tick);
        let value = Arc::clone(&entry.1);
        inner.by_tick.remove(&old_tick);
        inner.by_tick.insert(tick, key.clone());
        Some(value)
    }

    /// Inserts (or refreshes) a value, returning the shared handle.
    pub fn insert(&self, key: K, value: Arc<V>) -> Arc<V> {
        if self.cap == 0 {
            return value;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((old_tick, _)) = inner.map.insert(key.clone(), (tick, Arc::clone(&value))) {
            inner.by_tick.remove(&old_tick);
        }
        inner.by_tick.insert(tick, key);
        while inner.map.len() > self.cap {
            match inner.by_tick.pop_first() {
                Some((_, oldest)) => inner.map.remove(&oldest),
                None => break,
            };
        }
        value
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"jedule"), fnv1a64(b"jedule"));
        assert_ne!(fnv1a64(b"jedule"), fnv1a64(b"jedulf"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        assert_eq!(c.get(&1).as_deref(), Some(&10)); // refresh 1
        c.insert(3, Arc::new(30)); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1).as_deref(), Some(&10));
        assert_eq!(c.get(&3).as_deref(), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_cap_disables_caching() {
        let c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, Arc::new(10));
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        c.insert(1, Arc::new(11)); // refresh + replace value
        c.insert(3, Arc::new(30)); // must evict 2, not 1
        assert_eq!(c.get(&1).as_deref(), Some(&11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3).as_deref(), Some(&30));
    }

    /// The tick index and the key map must stay a bijection through an
    /// arbitrary interleaving of gets, inserts and evictions — the
    /// invariant that makes `pop_first` a correct victim choice.
    #[test]
    fn tick_index_stays_consistent_under_churn() {
        let c: LruCache<u32, u32> = LruCache::new(8);
        let mut state = 0x243f6a8885a308d3u64; // deterministic LCG
        for step in 0..10_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) as u32 % 24;
            if state % 3 == 0 {
                c.insert(key, Arc::new(step));
            } else {
                let _ = c.get(&key);
            }
            let inner = c.inner.lock().unwrap();
            assert!(inner.map.len() <= 8);
            assert_eq!(inner.map.len(), inner.by_tick.len(), "step {step}");
            for (k, (t, _)) in &inner.map {
                assert_eq!(inner.by_tick.get(t), Some(k), "step {step}");
            }
        }
    }

    /// LRU order survives the reverse-index implementation: a sweep
    /// over more keys than the cap keeps exactly the most recent ones.
    #[test]
    fn eviction_order_is_exact_lru() {
        let c: LruCache<u32, u32> = LruCache::new(4);
        for k in 0..10 {
            c.insert(k, Arc::new(k));
        }
        for k in 0..6 {
            assert_eq!(c.get(&k), None, "key {k} must be evicted");
        }
        for k in 6..10 {
            assert_eq!(c.get(&k).as_deref(), Some(&k));
        }
    }
}
