//! Serving caches: input digests, a prepared-schedule cache and a
//! rendered-body cache, both LRU-bounded.
//!
//! Keying follows DESIGN.md §6b: the **prepared cache** maps an input's
//! content digest to its [`PreparedSchedule`] (index/extents/kinds built
//! once, shared by every view of that input), and the **body cache**
//! maps `(digest, canonical option string)` to finished output bytes so
//! repeated identical requests skip layout and encoding entirely. Both
//! hand out `Arc`s — a hit never copies the cached value.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// FNV-1a 64 — the same digest the golden-figure gate uses: tiny,
/// dependency-free, stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A small thread-safe LRU map. `get` refreshes recency; `insert`
/// evicts the least-recently-used entries down to `cap`. A `cap` of 0
/// disables caching entirely (every `get` misses).
pub struct LruCache<K: Ord + Clone, V> {
    cap: usize,
    inner: Mutex<LruInner<K, V>>,
}

struct LruInner<K: Ord + Clone, V> {
    tick: u64,
    map: BTreeMap<K, (u64, Arc<V>)>,
}

impl<K: Ord + Clone, V> LruCache<K, V> {
    pub fn new(cap: usize) -> LruCache<K, V> {
        LruCache {
            cap,
            inner: Mutex::new(LruInner {
                tick: 0,
                map: BTreeMap::new(),
            }),
        }
    }

    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        entry.0 = tick;
        Some(Arc::clone(&entry.1))
    }

    /// Inserts (or refreshes) a value, returning the shared handle.
    pub fn insert(&self, key: K, value: Arc<V>) -> Arc<V> {
        if self.cap == 0 {
            return value;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, Arc::clone(&value)));
        while inner.map.len() > self.cap {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => inner.map.remove(&k),
                None => break,
            };
        }
        value
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"jedule"), fnv1a64(b"jedule"));
        assert_ne!(fnv1a64(b"jedule"), fnv1a64(b"jedulf"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        assert_eq!(c.get(&1).as_deref(), Some(&10)); // refresh 1
        c.insert(3, Arc::new(30)); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1).as_deref(), Some(&10));
        assert_eq!(c.get(&3).as_deref(), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_cap_disables_caching() {
        let c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, Arc::new(10));
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }
}
