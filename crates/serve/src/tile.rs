//! The tile-sharded render path (DESIGN.md §6c): a body-cache miss
//! assembles mostly-cached shards instead of re-rendering the figure.
//!
//! A figure's output is deterministic in `(input digest, options)`, so
//! its shards are too. Each shard is cached under a [`TileKey`] —
//! `(digest, window-bucket, row-band, lod, fmt)` — in one LRU that is
//! deliberately *larger-grained* than the body cache: when a window
//! series cycles more distinct views than the body cache holds, the
//! tile cache still retains every view's shards, and a revisit
//! reassembles them without laying the scene out again.
//!
//! Two shard kinds, both byte-identity-preserving (the contract
//! `jedule_render::tile` property-tests):
//!
//! * **SVG** tiles are serialized fragments of painter's-order
//!   primitive ranges; assembly is `header + fragments + footer`, so an
//!   all-warm request is pure concatenation — no layout, no
//!   serialization.
//! * **PNG** tiles are raw RGB row-bands; assembly concatenates pixels
//!   and re-runs the *sequential* encoder (the same single-deflate
//!   stream a cold `threads = 1` render produces), so warm requests
//!   skip layout and rasterization but still pay the encode.
//!
//! Alongside the tiles sits a **plan cache** `(digest, option key) →`
//! [`RenderPlan`]: the few bytes of geometry (canvas dims, primitive
//! count, SVG header) needed to enumerate a figure's tile keys without
//! building its scene. Plan hit + all tiles warm ⇒ zero layout work.
//!
//! Every tile lookup increments exactly one of
//! `jedule_tile_cache_{hits,misses}_total{fmt=…}` plus
//! `jedule_tile_lookups_total{fmt=…}` — hits + misses == lookups is an
//! exact partition the tests and the bench assert.

use crate::cache::{fnv1a64, LruCache};
use jedule_core::obs::{self, Registry};
use jedule_render::{svg, tile as rtile, LayoutScratch, OutputFormat, RenderOptions, Scene};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Per-worker layout scratch handed to `make_scene`, reused across
    /// tile misses and across requests: steady-state misses stop
    /// allocating candidate/classification buffers per render.
    static SCRATCH: RefCell<LayoutScratch> = RefCell::new(LayoutScratch::new());
}

/// Identity of one cached shard of one figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TileKey {
    /// FNV-1a 64 of the input bytes.
    pub digest: u64,
    /// FNV-1a 64 of the canonical `width × time-window` view string —
    /// distinct views never share tiles (layout scales to the window).
    pub window_bucket: u64,
    /// Shard index: pixel row-band for rasters, primitive range for SVG.
    pub row_band: u32,
    /// Level-of-detail mode (`LodMode` as a small code).
    pub lod: u8,
    /// Output format code (0 = svg, 1 = png).
    pub fmt: u8,
}

/// The view half of a [`TileKey`].
pub fn window_bucket(width: f64, window: Option<(f64, f64)>) -> u64 {
    let canon = match window {
        Some((a, b)) => format!("w={width};win={a}:{b}"),
        None => format!("w={width};win=full"),
    };
    fnv1a64(canon.as_bytes())
}

/// What assembly needs to know about a figure without its scene.
pub struct RenderPlan {
    pub content_type: &'static str,
    pub kind: PlanKind,
}

pub enum PlanKind {
    Svg {
        /// The document prologue ([`svg::svg_header`]).
        header: String,
        /// Painter's-order primitive count (determines the shard list).
        prims: usize,
    },
    Raster {
        /// Canvas pixel dimensions (determine the row-band list).
        width: usize,
        height: usize,
    },
}

/// The shared tile + plan caches and the assembly logic over them.
pub struct TileStore {
    plans: LruCache<(u64, String), RenderPlan>,
    tiles: LruCache<TileKey, Vec<u8>>,
}

impl TileStore {
    /// `cap` bounds the tile LRU (shards, not figures). Plans are tiny;
    /// their cache is bounded separately but generously.
    pub fn new(cap: usize) -> TileStore {
        TileStore {
            plans: LruCache::new(if cap == 0 { 0 } else { cap.max(64) }),
            tiles: LruCache::new(cap),
        }
    }

    pub fn tiles_len(&self) -> usize {
        self.tiles.len()
    }

    pub fn plans_len(&self) -> usize {
        self.plans.len()
    }

    /// Renders `opts` through the tile cache. `make_scene` is invoked
    /// at most once, and only when a plan or tile is missing — the
    /// all-warm path never lays out. The closure receives this worker
    /// thread's reusable [`LayoutScratch`] so misses can run the
    /// zero-churn `layout_prepared_scratch` path. Returns the exact
    /// bytes a cold sequential whole-figure render would produce, plus
    /// the content type.
    pub fn render(
        &self,
        registry: &Registry,
        digest: u64,
        opts: &RenderOptions,
        opt_key: &str,
        make_scene: &mut dyn FnMut(&mut LayoutScratch) -> Scene,
    ) -> (Vec<u8>, &'static str) {
        let fmt_code: u8 = match opts.format {
            OutputFormat::Png => 1,
            _ => 0,
        };
        let fmt_label = if fmt_code == 1 { "png" } else { "svg" };
        let lod_code = opts.lod as u8;
        let bucket = window_bucket(opts.width, opts.time_window);
        let mut scene_memo: Option<Scene> = None;
        // Lend the worker-local scratch to the (at most one) layout call.
        let mut build = || SCRATCH.with_borrow_mut(|sc| make_scene(sc));

        let plan_key = (digest, opt_key.to_string());
        let plan = match self.plans.get(&plan_key) {
            Some(p) => {
                registry.counter_add("jedule_plan_cache_hits_total", &[], 1);
                p
            }
            None => {
                registry.counter_add("jedule_plan_cache_misses_total", &[], 1);
                let s = scene_memo.get_or_insert_with(&mut build);
                let plan = match opts.format {
                    OutputFormat::Png => RenderPlan {
                        content_type: "image/png",
                        kind: PlanKind::Raster {
                            width: s.width.round().max(1.0) as usize,
                            height: s.height.round().max(1.0) as usize,
                        },
                    },
                    _ => RenderPlan {
                        content_type: "image/svg+xml",
                        kind: PlanKind::Svg {
                            header: svg::svg_header(s),
                            prims: s.len(),
                        },
                    },
                };
                self.plans.insert(plan_key, Arc::new(plan))
            }
        };

        let key = |row_band: u32| TileKey {
            digest,
            window_bucket: bucket,
            row_band,
            lod: lod_code,
            fmt: fmt_code,
        };
        let bytes = match &plan.kind {
            PlanKind::Svg { header, prims } => {
                let mut out = Vec::with_capacity(header.len() + prims * 64);
                out.extend_from_slice(header.as_bytes());
                for (band, (a, b)) in rtile::svg_ranges(*prims).into_iter().enumerate() {
                    let frag = self.tile(registry, fmt_label, key(band as u32), || {
                        let s = scene_memo.get_or_insert_with(&mut build);
                        svg::svg_fragment(s, a..b).into_bytes()
                    });
                    out.extend_from_slice(&frag);
                }
                out.extend_from_slice(svg::SVG_FOOTER.as_bytes());
                out
            }
            PlanKind::Raster { width, height } => {
                let mut bands = Vec::new();
                for (band, (r0, r1)) in rtile::raster_bands(*height).into_iter().enumerate() {
                    bands.push(self.tile(registry, fmt_label, key(band as u32), || {
                        let s = scene_memo.get_or_insert_with(&mut build);
                        rtile::raster_tile_pixels(s, r0, r1)
                    }));
                }
                let shared: Vec<&[u8]> = bands.iter().map(|b| b.as_slice()).collect();
                rtile::png_from_row_tiles(*width, *height, &shared)
            }
        };
        (bytes, plan.content_type)
    }

    /// One tile lookup: exactly one of hit/miss fires per call.
    fn tile(
        &self,
        registry: &Registry,
        fmt: &str,
        key: TileKey,
        make: impl FnOnce() -> Vec<u8>,
    ) -> Arc<Vec<u8>> {
        registry.counter_add("jedule_tile_lookups_total", &[("fmt", fmt)], 1);
        if let Some(t) = self.tiles.get(&key) {
            registry.counter_add("jedule_tile_cache_hits_total", &[("fmt", fmt)], 1);
            // Per-request visibility too: the access log classifies a
            // body-cache miss as "tile" when warm shards helped.
            obs::count("serve.tile_hit", 1);
            return t;
        }
        registry.counter_add("jedule_tile_cache_misses_total", &[("fmt", fmt)], 1);
        obs::count("serve.tile_miss", 1);
        self.tiles.insert(key, Arc::new(make()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_render::LodMode;

    fn scene() -> Scene {
        let mut s = Scene::new(120.0, 90.0);
        s.rect(2.0, 3.0, 100.0, 30.0, jedule_core::Color::new(0, 0, 200));
        s.line(0.0, 0.0, 120.0, 90.0, jedule_core::Color::BLACK);
        s
    }

    fn opts(format: OutputFormat) -> RenderOptions {
        RenderOptions {
            format,
            threads: 1,
            ..RenderOptions::default()
        }
    }

    #[test]
    fn window_bucket_separates_views() {
        assert_ne!(
            window_bucket(800.0, None),
            window_bucket(800.0, Some((0.0, 1.0)))
        );
        assert_ne!(
            window_bucket(800.0, Some((0.0, 1.0))),
            window_bucket(640.0, Some((0.0, 1.0)))
        );
        assert_eq!(
            window_bucket(800.0, Some((0.0, 1.0))),
            window_bucket(800.0, Some((0.0, 1.0)))
        );
    }

    #[test]
    fn svg_assembly_matches_direct_serialization_warm_and_cold() {
        let store = TileStore::new(256);
        let reg = Registry::new();
        let want = svg::to_svg(&scene()).into_bytes();
        for pass in 0..2 {
            let mut calls = 0;
            let (got, ct) = store.render(
                &reg,
                1,
                &opts(OutputFormat::Svg),
                "k",
                &mut |_: &mut LayoutScratch| {
                    calls += 1;
                    scene()
                },
            );
            assert_eq!(got, want, "pass {pass}");
            assert_eq!(ct, "image/svg+xml");
            // Cold pass lays out once; warm pass not at all.
            assert_eq!(calls, if pass == 0 { 1 } else { 0 });
        }
        assert_eq!(reg.counter_total("jedule_plan_cache_hits_total"), 1);
        assert_eq!(reg.counter_total("jedule_plan_cache_misses_total"), 1);
    }

    #[test]
    fn png_assembly_matches_sequential_whole_figure_encode() {
        let store = TileStore::new(256);
        let reg = Registry::new();
        let s = scene();
        let canvas = jedule_render::raster::rasterize(&s);
        let want = jedule_render::png::encode(&canvas);
        for _ in 0..2 {
            let (got, ct) = store.render(
                &reg,
                2,
                &opts(OutputFormat::Png),
                "k",
                &mut |_: &mut LayoutScratch| scene(),
            );
            assert_eq!(got, want);
            assert_eq!(ct, "image/png");
        }
        // 90 rows → 2 bands; second pass all-warm.
        assert_eq!(reg.counter_total("jedule_tile_cache_misses_total"), 2);
        assert_eq!(reg.counter_total("jedule_tile_cache_hits_total"), 2);
        assert_eq!(reg.counter_total("jedule_tile_lookups_total"), 4);
    }

    #[test]
    fn lod_and_fmt_keep_tiles_apart() {
        let store = TileStore::new(256);
        let reg = Registry::new();
        let mut o = opts(OutputFormat::Svg);
        store.render(&reg, 3, &o, "k-auto", &mut |_: &mut LayoutScratch| scene());
        o.lod = LodMode::Force;
        store.render(&reg, 3, &o, "k-force", &mut |_: &mut LayoutScratch| scene());
        // Same digest, different lod: no tile sharing.
        assert_eq!(reg.counter_total("jedule_tile_cache_hits_total"), 0);
        assert_eq!(
            reg.counter_total("jedule_tile_cache_misses_total"),
            reg.counter_total("jedule_tile_lookups_total")
        );
    }
}
