//! epoll(7) + eventfd(2) bindings, declared by hand in the style of the
//! [`crate::signal`] module — the workspace is offline and std-only, and
//! libc is linked into every Rust binary on Linux anyway.
//!
//! Only what the event loop needs is bound: create an epoll instance,
//! register/modify/remove interest, wait, and an eventfd the worker pool
//! pokes to wake the loop when a response is ready. Everything here is
//! Linux-only; [`crate::Server::run`] falls back to the threaded
//! keep-alive loop elsewhere.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

pub const EPOLLIN: u32 = 0x1;
pub const EPOLLOUT: u32 = 0x4;
pub const EPOLLERR: u32 = 0x8;
pub const EPOLLHUP: u32 = 0x10;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (no padding between `events` and `data`); other architectures use
/// natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// Opaque per-registration token (we store connection ids).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// Registers `fd` with interest `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Blocks up to `timeout_ms` (−1 = forever) and fills `events` with
    /// ready registrations, returning how many. `Interrupted` (a signal
    /// landed) is reported as zero events rather than an error so the
    /// caller's shutdown-flag check runs.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        match cvt(n) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// A nonblocking eventfd: worker threads [`EventFd::signal`] it when a
/// response is ready and the event loop [`EventFd::drain`]s it once
/// woken. Reads and writes go through std's `File` over the owned fd.
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Adds 1 to the counter, waking any epoll waiting on it. Safe from
    /// any thread; a full counter (EAGAIN) still leaves a wake pending.
    pub fn signal(&self) {
        use std::io::Write;
        let mut f =
            std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(self.fd.as_raw_fd()) });
        let _ = f.write_all(&1u64.to_ne_bytes());
    }

    /// Resets the counter so the next [`EventFd::signal`] re-arms the
    /// level-triggered readiness.
    pub fn drain(&self) {
        use std::io::Read;
        let mut f =
            std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(self.fd.as_raw_fd()) });
        let mut buf = [0u8; 8];
        let _ = f.read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ef = EventFd::new().unwrap();
        ep.add(ef.as_raw_fd(), 42, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];

        // Nothing signaled yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ef.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42);

        // Draining clears readiness; signaling again re-arms it.
        ef.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ef.signal();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        ef.drain();
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd as _;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP)
            .unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, evs) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(evs & EPOLLIN, 0);

        // A writable socket reports EPOLLOUT once we ask for it.
        ep.modify(server_side.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let evs = events[0].events;
        assert_ne!(evs & EPOLLOUT, 0);

        ep.delete(server_side.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
