//! Input loading for the render service.
//!
//! Mirrors the CLI's auto-detecting loader: `.swf` workload traces are
//! converted through the bird's-eye pipeline (cluster geometry from the
//! trace header), everything else goes through `parse_any`'s format
//! sniffing. Parsing is pinned sequential — service concurrency comes
//! from parallel requests, and a deterministic single-threaded parse
//! keeps per-request span trees comparable across requests.

use jedule_core::{obs, Schedule};
use std::path::Path;

/// Parses already-read input bytes into a schedule. `path` only steers
/// format detection (extension hints); the bytes are the source of
/// truth, so the caller can digest them for cache keying first.
pub fn parse_schedule(src: &str, path: &Path) -> Result<Schedule, String> {
    let _s = obs::span("serve.ingest");
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("swf"))
    {
        return swf_to_schedule(src).map_err(|e| format!("{}: {e}", path.display()));
    }
    jedule_xmlio::parse_any_parallel(src, Some(path), 1)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn swf_to_schedule(src: &str) -> Result<Schedule, String> {
    let (header, jobs) = jedule_workloads::parse_swf(src).map_err(|e| e.to_string())?;
    let total_nodes = header
        .max_nodes
        .or(header.max_procs)
        .unwrap_or_else(|| jobs.iter().map(|j| j.procs).max().unwrap_or(1));
    let opts = jedule_workloads::ConvertOptions {
        cluster_name: header.computer.unwrap_or_else(|| "swf".to_string()),
        total_nodes: total_nodes.max(1),
        reserved: 0,
        highlight_user: None,
        task_attrs: false,
    };
    let _s = obs::span("serve.ingest.convert");
    Ok(jedule_workloads::jobs_to_schedule(&jobs, &opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_core::{Allocation, ScheduleBuilder, Task};

    #[test]
    fn parses_csv_by_content() {
        let s = ScheduleBuilder::new()
            .cluster(0, "c", 4)
            .task(Task::new("t", "computation", 0.0, 1.0).on(Allocation::contiguous(0, 0, 2)))
            .build()
            .unwrap();
        let csv = jedule_xmlio::write_schedule_csv(&s);
        let parsed = parse_schedule(&csv, Path::new("x.csv")).unwrap();
        assert_eq!(parsed.tasks.len(), 1);
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        assert!(parse_schedule("not a schedule at all", Path::new("x.jed")).is_err());
    }
}
