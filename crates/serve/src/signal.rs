//! SIGTERM/SIGINT → graceful-shutdown flag, with no libc crate.
//!
//! The workspace is offline and std-only, so the handler is registered
//! through a hand-declared `signal(2)` FFI binding (libc is linked into
//! every Rust binary on Unix anyway). The handler body is
//! async-signal-safe: it performs a single atomic store into a flag the
//! accept loop polls. On non-Unix targets installation is a no-op and
//! shutdown happens programmatically via [`crate::ServerHandle`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static SHUTDOWN_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// Wires SIGTERM and SIGINT to `flag`. Only the first installed flag
/// wins (one resident server per process); later calls are no-ops.
#[cfg(unix)]
pub fn install_term_handler(flag: Arc<AtomicBool>) {
    let _ = SHUTDOWN_FLAG.set(flag);
    extern "C" fn on_signal(_signum: i32) {
        if let Some(f) = SHUTDOWN_FLAG.get() {
            f.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install_term_handler(flag: Arc<AtomicBool>) {
    let _ = SHUTDOWN_FLAG.set(flag);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn handler_sets_the_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        install_term_handler(Arc::clone(&flag));
        let installed = SHUTDOWN_FLAG.get().expect("flag installed");
        assert!(!installed.load(Ordering::SeqCst));
        // Raise SIGTERM at ourselves through the same FFI surface the
        // installer uses; the handler must flip the installed flag.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe {
            raise(15);
        }
        assert!(installed.load(Ordering::SeqCst));
    }
}
