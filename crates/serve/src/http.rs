//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! The service speaks just enough of the protocol for `curl`, browsers
//! and Prometheus scrapers: `GET` requests with persistent (keep-alive)
//! connections, request heads capped at 16 KiB, paths and query strings
//! percent-decoded under their respective rules, `ETag`/`If-None-Match`
//! revalidation. Parsing is incremental — [`RecvBuf`] accumulates bytes
//! as the event loop reads them and scans only the tail overlap for the
//! head terminator, so a 16 KiB head costs one pass, not O(n²)
//! rescans. Anything fancier (chunked bodies, TLS) is out of scope for
//! an std-only sidecar service.

use std::io::Read;
use std::sync::Arc;

/// Maximum accepted request-head size; larger heads get a 400. The cap
/// is enforced *before* reading past it, so a hostile peer cannot make
/// the server buffer more than one chunk beyond the limit.
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed request line plus headers (body ignored — GET only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw headers in order of appearance (names as sent).
    pub headers: Vec<(String, String)>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 only with
    /// an explicit `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True when `If-None-Match` lists `etag` (or `*`) — the request is
    /// a revalidation that can be answered with 304.
    pub fn if_none_match(&self, etag: &str) -> bool {
        match self.header("If-None-Match") {
            None => false,
            Some(v) => v
                .split(',')
                .map(|t| t.trim().trim_start_matches("W/"))
                .any(|t| t == etag || t == "*"),
        }
    }
}

/// An incremental head accumulator: the event loop feeds it whatever
/// the socket yields and asks for complete heads. The terminator scan
/// resumes where the previous one stopped (minus the 3-byte overlap a
/// `\r\n\r\n` split across reads can need), so total scan work is
/// linear in the head size regardless of how many reads delivered it.
#[derive(Debug, Default)]
pub struct RecvBuf {
    buf: Vec<u8>,
    /// Bytes known to contain no head terminator *ending* at or before
    /// this offset.
    scanned: usize,
}

impl RecvBuf {
    pub fn new() -> RecvBuf {
        RecvBuf::default()
    }

    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the buffer holds a full head cap with no terminator —
    /// the request is oversized and must be rejected without reading
    /// further.
    pub fn over_cap(&mut self) -> bool {
        self.take_head_end().is_none() && self.buf.len() >= MAX_HEAD
    }

    /// Index one past the head terminator, if a complete head is
    /// buffered. Only scans bytes not covered by previous calls.
    fn take_head_end(&mut self) -> Option<usize> {
        let start = self.scanned.saturating_sub(3);
        for i in start..self.buf.len() {
            if self.buf[i] == b'\n' {
                if i >= 3 && &self.buf[i - 3..=i] == b"\r\n\r\n" {
                    return Some(i + 1);
                }
                if i >= 1 && self.buf[i - 1] == b'\n' {
                    return Some(i + 1);
                }
            }
        }
        self.scanned = self.buf.len();
        None
    }

    /// Removes and returns one complete head (including its
    /// terminator); pipelined bytes after it stay buffered for the next
    /// request.
    pub fn take_head(&mut self) -> Option<Vec<u8>> {
        let end = self.take_head_end()?;
        let rest = self.buf.split_off(end);
        let head = std::mem::replace(&mut self.buf, rest);
        self.scanned = 0;
        Some(head)
    }
}

/// Parses one complete request head (as returned by
/// [`RecvBuf::take_head`]).
pub fn parse_head(head: &[u8]) -> Result<Request, String> {
    let head = String::from_utf8_lossy(head);
    let mut lines = head.lines();
    let line = lines.next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line missing target")?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let headers: Vec<(String, String)> = lines
        .take_while(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let connection = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("Connection"))
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version != "HTTP/1.0", // 1.1+ default persistent
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method,
        path: decode_path(raw_path),
        query: parse_query(raw_query),
        headers,
        keep_alive,
    })
}

/// Parses a raw query string (`a=1&b=x%20y&flag`) into decoded
/// key/value pairs in order of appearance.
///
/// This is the ONLY query parser in the service — every endpoint
/// (`/render`, `/explore`, `/meta`, …) sees parameters through
/// [`Request::param`] on this output, so the query-vs-path decoding
/// split (`+`→space applies to queries only) is decided exactly once
/// and a new endpoint cannot re-introduce the old path-decoding bug.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (decode_query(k), decode_query(v)),
            None => (decode_query(kv), String::new()),
        })
        .collect()
}

/// Reads one request head from a blocking stream (the non-epoll
/// fallback path and tests). `Ok(None)` means the peer closed before
/// sending anything (a clean no-op); `Err` carries a human-readable
/// parse failure for a 400 response. The head cap is enforced before
/// reading past it.
pub fn read_request(stream: &mut impl Read) -> Result<Option<Request>, String> {
    let mut rb = RecvBuf::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(head) = rb.take_head() {
            return parse_head(&head).map(Some);
        }
        if rb.len() >= MAX_HEAD {
            return Err("request head exceeds 16 KiB".to_string());
        }
        let want = chunk.len().min(MAX_HEAD - rb.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                if rb.is_empty() {
                    return Ok(None);
                }
                return Err("connection closed mid-head".to_string());
            }
            Ok(n) => rb.extend(&chunk[..n]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
}

fn decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Decodes `%XX` escapes under *path* rules: `+` is a literal plus.
/// (The `+`→space convention is a query-string-only artifact of form
/// encoding; applying it to paths would 404 any file named `a+b.jed`.)
pub fn decode_path(s: &str) -> String {
    decode(s, false)
}

/// Decodes `%XX` escapes and `+`-as-space under query-string rules.
pub fn decode_query(s: &str) -> String {
    decode(s, true)
}

/// A response ready to serialize. Bodies are shared (`Arc`) so cached
/// bytes are never copied per request — the writer streams straight
/// from the cache entry.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Arc<Vec<u8>>,
    /// Emitted as an `ETag` header when present; 304 responses carry it
    /// with an empty body.
    pub etag: Option<String>,
}

impl Response {
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Arc::new(body.into().into_bytes()),
            etag: None,
        }
    }

    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response::shared(status, content_type, Arc::new(body))
    }

    /// A response over an already-shared (cached) body.
    pub fn shared(status: u16, content_type: &'static str, body: Arc<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body,
            etag: None,
        }
    }

    /// An empty-bodied `304 Not Modified` revalidation answer.
    pub fn not_modified(content_type: &'static str, etag: String) -> Response {
        Response {
            status: 304,
            content_type,
            body: Arc::new(Vec::new()),
            etag: Some(etag),
        }
    }

    pub fn with_etag(mut self, etag: String) -> Response {
        self.etag = Some(etag);
        self
    }

    /// Serializes the response head with the standard service headers,
    /// including the per-request id echo and the keep-alive decision.
    pub fn encode_head(&self, request_id: u64, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nX-Jedule-Request-Id: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            request_id
        );
        if let Some(etag) = &self.etag {
            head.push_str("ETag: ");
            head.push_str(etag);
            head.push_str("\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        head.into_bytes()
    }

    /// Head plus body as one buffer (the blocking fallback path).
    pub fn encode(&self, request_id: u64, keep_alive: bool) -> Vec<u8> {
        let mut out = self.encode_head(request_id, keep_alive);
        out.extend_from_slice(&self.body);
        out
    }
}

pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        416 => "Range Not Satisfiable",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_decoding_keeps_literal_plus() {
        // The regression the `+`→space split exists for: a file named
        // `a+b.jed` must survive path decoding.
        assert_eq!(decode_path("/render/a+b.jed"), "/render/a+b.jed");
        assert_eq!(decode_path("a%20b+c"), "a b+c");
        assert_eq!(decode_path("%2e%2E/x"), "../x");
    }

    #[test]
    fn query_decoding_translates_plus() {
        assert_eq!(decode_query("a%20b+c"), "a b c");
        assert_eq!(decode_query("100%"), "100%");
        assert_eq!(decode_query("%zz"), "%zz");
        assert_eq!(decode_query("plain"), "plain");
    }

    #[test]
    fn malformed_escapes_pass_through() {
        assert_eq!(decode_path("%"), "%");
        assert_eq!(decode_path("%2"), "%2");
        assert_eq!(decode_path("%g1x"), "%g1x");
        // A stray % followed by a valid escape: the stray passes
        // through literally, the escape still decodes.
        assert_eq!(decode_query("%%41"), "%A");
        // Truncated escape at end-of-string is literal even with one
        // hex digit following.
        assert_eq!(decode_query("ok%4"), "ok%4");
    }

    #[test]
    fn parse_query_edge_cases_centrally() {
        // The one shared parser every endpoint goes through: `+` is a
        // space in values AND keys, %-escapes decode, malformed escapes
        // pass through, valueless and empty segments behave.
        assert_eq!(
            parse_query("file=a+b.jed&fmt=svg"),
            vec![
                ("file".into(), "a b.jed".into()),
                ("fmt".into(), "svg".into())
            ]
        );
        assert_eq!(
            parse_query("a+key=v%20w"),
            vec![("a key".into(), "v w".into())]
        );
        assert_eq!(
            parse_query("window=0%3A5"),
            vec![("window".into(), "0:5".into())]
        );
        assert_eq!(parse_query("pct=100%"), vec![("pct".into(), "100%".into())]);
        assert_eq!(parse_query("bad=%zz"), vec![("bad".into(), "%zz".into())]);
        assert_eq!(parse_query("flag"), vec![("flag".into(), String::new())]);
        assert_eq!(parse_query(""), Vec::<(String, String)>::new());
        assert_eq!(parse_query("&&a=1&"), vec![("a".into(), "1".into())]);
        // Duplicate keys are preserved in order (param() takes the first).
        assert_eq!(
            parse_query("x=1&x=2"),
            vec![("x".into(), "1".into()), ("x".into(), "2".into())]
        );
    }

    #[test]
    fn request_param_and_header_lookup() {
        let req = parse_head(
            b"GET /render?file=a+b.jed&fmt=png&file=second HTTP/1.1\r\n\
              Host: t\r\nIf-None-Match: \"abc\"\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.path, "/render");
        // Query values do translate + (form convention)…
        assert_eq!(req.param("file"), Some("a b.jed"));
        // …and duplicate params resolve to the first occurrence.
        assert_eq!(req.param("fmt"), Some("png"));
        assert_eq!(req.header("if-none-match"), Some("\"abc\""));
        assert!(req.if_none_match("\"abc\""));
        assert!(req.if_none_match("*") || req.if_none_match("\"abc\""));
        assert!(!req.if_none_match("\"other\""));
        assert_eq!(req.param("absent"), None);
    }

    #[test]
    fn path_plus_survives_request_parsing() {
        let req = parse_head(b"GET /files/a+b.jed HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/files/a+b.jed");
    }

    #[test]
    fn keep_alive_defaults_by_version() {
        let r11 = parse_head(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(r11.keep_alive);
        let r11c = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r11c.keep_alive);
        let r10 = parse_head(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r10.keep_alive);
        let r10k = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r10k.keep_alive);
    }

    #[test]
    fn recv_buf_finds_heads_across_chunk_boundaries() {
        // Split the terminator at every possible boundary.
        let msg = b"GET /x HTTP/1.1\r\nHost: t\r\n\r\nGET /pipelined".to_vec();
        for split in 1..msg.len() {
            let mut rb = RecvBuf::new();
            rb.extend(&msg[..split]);
            let early = rb.take_head();
            rb.extend(&msg[split..]);
            let head = match early {
                Some(h) => h,
                None => rb.take_head().expect("head completes after 2nd chunk"),
            };
            assert!(head.ends_with(b"\r\n\r\n"), "split at {split}");
            assert_eq!(parse_head(&head).unwrap().path, "/x");
        }
    }

    #[test]
    fn recv_buf_keeps_pipelined_bytes() {
        let mut rb = RecvBuf::new();
        rb.extend(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let a = rb.take_head().unwrap();
        assert_eq!(parse_head(&a).unwrap().path, "/a");
        let b = rb.take_head().unwrap();
        assert_eq!(parse_head(&b).unwrap().path, "/b");
        assert!(rb.take_head().is_none());
        assert!(rb.is_empty());
    }

    #[test]
    fn recv_buf_accepts_bare_lf_terminators() {
        let mut rb = RecvBuf::new();
        rb.extend(b"GET /lf HTTP/1.1\n\n");
        let head = rb.take_head().unwrap();
        assert_eq!(parse_head(&head).unwrap().path, "/lf");
    }

    #[test]
    fn recv_buf_scan_is_incremental_not_quadratic() {
        // 15 KiB of header bytes fed 1 KiB at a time: the tail-overlap
        // scan touches each byte a bounded number of times. (The old
        // windows(4).any rescan was O(n²); this is a behavioral proxy —
        // over_cap must trip exactly at the cap, never after it.)
        let mut rb = RecvBuf::new();
        rb.extend(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; 1024];
        while rb.len() + filler.len() <= MAX_HEAD {
            rb.extend(&filler);
            assert!(rb.take_head().is_none());
        }
        assert!(!rb.over_cap());
        rb.extend(&filler[..MAX_HEAD - rb.len()]);
        assert!(rb.over_cap());
    }

    #[test]
    fn read_request_caps_before_overshooting() {
        // A head that never terminates: read_request must stop at the
        // cap, not buffer the whole 1 MiB.
        let huge = vec![b'x'; 1024 * 1024];
        let mut cursor = std::io::Cursor::new(huge);
        let err = read_request(&mut cursor).unwrap_err();
        assert!(err.contains("16 KiB"), "{err}");
        assert!(cursor.position() <= MAX_HEAD as u64 + 1024);
    }

    #[test]
    fn read_request_truncated_head_is_an_error() {
        let mut cursor = std::io::Cursor::new(b"GET / HTTP/1.1\r\nHost".to_vec());
        let err = read_request(&mut cursor).unwrap_err();
        assert!(err.contains("mid-head"), "{err}");
        // …while an immediately-closed connection is a clean no-op.
        let mut empty = std::io::Cursor::new(Vec::new());
        assert_eq!(read_request(&mut empty).unwrap(), None);
    }

    #[test]
    fn reason_phrases_cover_the_revalidation_path() {
        assert_eq!(reason(304), "Not Modified");
        assert_eq!(reason(416), "Range Not Satisfiable");
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(599), "Unknown");
    }

    #[test]
    fn response_encoding_carries_etag_and_connection() {
        let resp = Response::text(200, "hi").with_etag("\"t1\"".to_string());
        let head = String::from_utf8(resp.encode_head(7, true)).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("ETag: \"t1\"\r\n"));
        assert!(head.contains("Connection: keep-alive\r\n"));
        assert!(head.contains("X-Jedule-Request-Id: 7\r\n"));
        let closed = String::from_utf8(resp.encode(7, false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
        assert!(closed.ends_with("hi"));
        let nm = Response::not_modified("image/svg+xml", "\"t1\"".into());
        let head = String::from_utf8(nm.encode(9, true)).unwrap();
        assert!(head.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(head.contains("Content-Length: 0\r\n"));
    }
}
