//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! The service speaks just enough of the protocol for `curl`, browsers
//! and Prometheus scrapers: one `GET` request per connection (responses
//! carry `Connection: close`), request heads capped at 16 KiB, query
//! strings percent-decoded. Anything fancier (chunked bodies, pipelining,
//! TLS) is out of scope for an std-only sidecar service.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted request-head size; larger heads get a 400.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request line plus headers (body ignored — GET only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request head from the stream. `Ok(None)` means the peer
/// closed before sending anything (a clean no-op); `Err` carries a
/// human-readable parse failure for a 400 response.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, String> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head exceeds 16 KiB".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line missing target")?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Ok(Some(Request {
        method,
        path: percent_decode(raw_path),
        query,
    }))
}

/// Decodes `%XX` escapes and `+`-as-space (query-string convention;
/// harmless in paths, which never legitimately contain `+` here).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type,
            body,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Serializes a response with the standard service headers, including
/// the per-request id echo.
pub fn write_response(
    stream: &mut TcpStream,
    request_id: u64,
    resp: &Response,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nX-Jedule-Request-Id: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        request_id
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2e%2E/x"), "../x");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("plain"), "plain");
    }

    #[test]
    fn request_param_lookup() {
        let r = Request {
            method: "GET".into(),
            path: "/render".into(),
            query: vec![
                ("file".into(), "a.jed".into()),
                ("fmt".into(), "png".into()),
            ],
        };
        assert_eq!(r.param("file"), Some("a.jed"));
        assert_eq!(r.param("fmt"), Some("png"));
        assert_eq!(r.param("absent"), None);
    }
}
