//! Property tests of the chunked parallel SWF ingest: for any input —
//! CRLF line endings, interleaved `;` header lines, dirty records,
//! missing trailing newline — and any worker count, the parallel parse
//! is result-identical to the sequential one, and parse errors carry
//! the same global line number.

use jedule_workloads::{parse_swf, parse_swf_parallel};
use proptest::prelude::*;

/// One line of a well-formed (error-free) SWF document: blank lines,
/// header comments (including repeats of the tracked keys, to exercise
/// last-write-wins merging across chunk boundaries), free-form
/// comments, clean job records and dirty records the parser skips.
fn arb_clean_line() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        (
            prop_oneof![
                Just("Computer"),
                Just("MaxNodes"),
                Just("MaxProcs"),
                Just("Note"),
            ],
            proptest::string::string_regex("[A-Za-z0-9 ]{0,10}").unwrap(),
        )
            .prop_map(|(k, v)| format!("; {k}: {v}")),
        Just("; free-form comment without a colon".to_string()),
        (0i64..10_000, 0.0f64..1e5, 0.0f64..1e4, 1u32..64).prop_map(|(id, submit, run, procs)| {
            format!(
                "{id} {submit:.2} 0 {run:.2} {procs} -1 -1 {procs} \
                     -1 -1 1 1 1 -1 -1 -1 -1 -1"
            )
        }),
        // Dirty record: zero processors → silently skipped, not an error.
        (0i64..10_000, 0.0f64..1e5).prop_map(|(id, submit)| format!(
            "{id} {submit:.2} 0 5 0 -1 -1 0 -1 -1 1 1 1 -1 -1 -1 -1 -1"
        )),
    ]
    .boxed()
}

/// Joins lines into a document with the given separator and optional
/// trailing newline.
fn join(lines: &[String], crlf: bool, trailing: bool) -> String {
    let sep = if crlf { "\r\n" } else { "\n" };
    let mut src = lines.join(sep);
    if trailing && !src.is_empty() {
        src.push_str(sep);
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel parse == sequential parse for any chunking.
    #[test]
    fn parallel_matches_sequential(
        lines in proptest::collection::vec(arb_clean_line(), 0..120),
        crlf in any::<bool>(),
        trailing in any::<bool>(),
        threads in 1usize..9,
    ) {
        let src = join(&lines, crlf, trailing);
        let seq = parse_swf(&src).expect("clean input parses");
        let par = parse_swf_parallel(&src, threads).expect("clean input parses");
        prop_assert_eq!(par.0, seq.0);
        prop_assert_eq!(par.1, seq.1);
    }

    /// A malformed record reports the same global line number no matter
    /// which chunk it lands in.
    #[test]
    fn parallel_error_line_is_global(
        mut lines in proptest::collection::vec(arb_clean_line(), 1..80),
        pos_seed in 0usize..80,
        crlf in any::<bool>(),
        threads in 2usize..9,
    ) {
        let pos = pos_seed % (lines.len() + 1);
        lines.insert(pos, "oops 1".to_string());
        let src = join(&lines, crlf, true);
        let seq = parse_swf(&src).expect_err("malformed record errors");
        let par = parse_swf_parallel(&src, threads).expect_err("malformed record errors");
        prop_assert_eq!(par.to_string(), seq.to_string());
    }
}
