//! Workload statistics.
//!
//! "Studying the workload of parallel systems is important to improve the
//! job scheduler decisions and therefore to increase the throughput and
//! efficiency of these systems" (paper, §VII). These summaries turn a job
//! list into the numbers an analyst reads next to the Fig. 13 chart:
//! per-user activity, job-size distribution and an hourly load profile.

use crate::swf::Job;

/// Per-user aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct UserStats {
    pub user: i64,
    pub jobs: usize,
    /// Σ procs · runtime, in processor-seconds.
    pub proc_seconds: f64,
}

/// Summary of a workload (typically one day).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    pub jobs: usize,
    pub users: Vec<UserStats>,
    /// Histogram over power-of-two size buckets: `buckets[k]` counts jobs
    /// with `2^k ≤ procs < 2^(k+1)`.
    pub size_histogram: Vec<usize>,
    /// Processor-seconds demanded per hour-of-day bucket (24 entries),
    /// folding multi-day spans by wall-clock hour.
    pub hourly_load: [f64; 24],
    /// Mean runtime in seconds.
    pub mean_runtime: f64,
    /// Mean processor count.
    pub mean_procs: f64,
}

/// Computes workload statistics.
pub fn workload_stats(jobs: &[Job]) -> WorkloadStats {
    let mut users: Vec<UserStats> = Vec::new();
    let mut size_histogram: Vec<usize> = Vec::new();
    let mut hourly_load = [0.0f64; 24];
    let mut runtime_sum = 0.0;
    let mut procs_sum = 0.0;

    for j in jobs {
        runtime_sum += j.run;
        procs_sum += f64::from(j.procs);

        match users.iter_mut().find(|u| u.user == j.user) {
            Some(u) => {
                u.jobs += 1;
                u.proc_seconds += f64::from(j.procs) * j.run;
            }
            None => users.push(UserStats {
                user: j.user,
                jobs: 1,
                proc_seconds: f64::from(j.procs) * j.run,
            }),
        }

        let bucket = (32 - j.procs.max(1).leading_zeros() - 1) as usize;
        if size_histogram.len() <= bucket {
            size_histogram.resize(bucket + 1, 0);
        }
        size_histogram[bucket] += 1;

        // Spread the job's demand over the wall-clock hours it spans.
        let (mut t, end) = (j.start(), j.end());
        while t < end {
            let hour_end = (t / 3600.0).floor() * 3600.0 + 3600.0;
            let seg = hour_end.min(end) - t;
            let hour = (((t / 3600.0).floor() as i64 % 24) + 24) % 24;
            hourly_load[hour as usize] += seg * f64::from(j.procs);
            t = hour_end;
        }
    }

    users.sort_by(|a, b| b.proc_seconds.total_cmp(&a.proc_seconds));
    let n = jobs.len().max(1) as f64;
    WorkloadStats {
        jobs: jobs.len(),
        users,
        size_histogram,
        hourly_load,
        mean_runtime: runtime_sum / n,
        mean_procs: procs_sum / n,
    }
}

/// The `k` heaviest users by processor-seconds — candidates for the
/// Fig. 13 highlighting.
pub fn top_users(jobs: &[Job], k: usize) -> Vec<UserStats> {
    let mut stats = workload_stats(jobs).users;
    stats.truncate(k);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_thunder_day, ThunderParams};

    fn job(user: i64, submit: f64, run: f64, procs: u32) -> Job {
        Job {
            id: 0,
            submit,
            wait: 0.0,
            run,
            procs,
            user,
            group: 0,
            queue: 0,
            status: 1,
        }
    }

    #[test]
    fn per_user_aggregation() {
        let jobs = vec![
            job(1, 0.0, 100.0, 4),
            job(1, 200.0, 50.0, 2),
            job(2, 0.0, 1000.0, 1),
        ];
        let s = workload_stats(&jobs);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.users.len(), 2);
        // User 2: 1000 proc-s; user 1: 400 + 100 = 500 proc-s → user 2 first? No:
        // 1000 > 500, so user 2 leads.
        assert_eq!(s.users[0].user, 2);
        assert_eq!(s.users[0].proc_seconds, 1000.0);
        assert_eq!(s.users[1].jobs, 2);
        assert_eq!(s.users[1].proc_seconds, 500.0);
    }

    #[test]
    fn size_histogram_buckets() {
        let jobs = vec![
            job(1, 0.0, 1.0, 1),  // bucket 0
            job(1, 0.0, 1.0, 2),  // bucket 1
            job(1, 0.0, 1.0, 3),  // bucket 1
            job(1, 0.0, 1.0, 4),  // bucket 2
            job(1, 0.0, 1.0, 64), // bucket 6
        ];
        let s = workload_stats(&jobs);
        assert_eq!(s.size_histogram[0], 1);
        assert_eq!(s.size_histogram[1], 2);
        assert_eq!(s.size_histogram[2], 1);
        assert_eq!(s.size_histogram[6], 1);
        assert_eq!(s.size_histogram.iter().sum::<usize>(), 5);
    }

    #[test]
    fn hourly_load_spreads_over_hours() {
        // 2 procs for 2 hours starting at 00:30 → 0.5 h in hour 0,
        // 1 h in hour 1, 0.5 h in hour 2.
        let jobs = vec![job(1, 1800.0, 7200.0, 2)];
        let s = workload_stats(&jobs);
        assert!((s.hourly_load[0] - 1800.0 * 2.0).abs() < 1e-6);
        assert!((s.hourly_load[1] - 3600.0 * 2.0).abs() < 1e-6);
        assert!((s.hourly_load[2] - 1800.0 * 2.0).abs() < 1e-6);
        assert_eq!(s.hourly_load[3], 0.0);
        // Total demand conserved.
        let total: f64 = s.hourly_load.iter().sum();
        assert!((total - 7200.0 * 2.0).abs() < 1e-6);
    }

    #[test]
    fn hourly_wraps_across_midnight() {
        // Job spanning 23:00..01:00.
        let jobs = vec![job(1, 23.0 * 3600.0, 7200.0, 1)];
        let s = workload_stats(&jobs);
        assert!(s.hourly_load[23] > 0.0);
        assert!(s.hourly_load[0] > 0.0);
    }

    #[test]
    fn means() {
        let jobs = vec![job(1, 0.0, 10.0, 2), job(1, 0.0, 30.0, 6)];
        let s = workload_stats(&jobs);
        assert_eq!(s.mean_runtime, 20.0);
        assert_eq!(s.mean_procs, 4.0);
    }

    #[test]
    fn top_users_of_thunder_day() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        let top = top_users(&jobs, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].proc_seconds >= w[1].proc_seconds);
        }
        // The Zipf head (the highlight user) should do real work.
        assert!(top.iter().any(|u| u.user == 6447));
    }

    #[test]
    fn empty_workload() {
        let s = workload_stats(&[]);
        assert_eq!(s.jobs, 0);
        assert!(s.users.is_empty());
        assert_eq!(s.mean_runtime, 0.0);
    }
}
