//! # jedule-workloads
//!
//! Parallel production workloads (paper, §VII).
//!
//! The paper's last case study renders a bird's-eye view of one day of
//! the LLNL Thunder cluster (1024 nodes, 834 jobs finishing on
//! 2007-02-02, nodes 0–19 reserved for login/debug, jobs of user 6447
//! highlighted in yellow), taken from the Parallel Workloads Archive.
//!
//! * [`swf`] parses the archive's Standard Workload Format, so any real
//!   PWA trace the user downloads works directly;
//! * [`assign`] reconstructs per-job node sets (SWF records only
//!   processor *counts*) with an event-driven first-fit allocator;
//! * [`synth`] generates a calibrated synthetic Thunder-like day — the
//!   real trace is not redistributable in this repository (see
//!   DESIGN.md);
//! * [`convert`] turns jobs into a Jedule schedule with per-user
//!   highlighting.

pub mod assign;
pub mod convert;
pub mod stats;
pub mod swf;
pub mod synth;

pub use assign::{assign_nodes, AssignedJob};
pub use convert::{jobs_to_schedule, ConvertOptions};
pub use stats::{top_users, workload_stats, UserStats, WorkloadStats};
pub use swf::{parse_swf, parse_swf_file, parse_swf_parallel, parse_swf_reader, Job, SwfHeader};
pub use synth::{synth_scale_trace, synth_thunder_day, ThunderParams};
