//! Conversion of workloads to Jedule schedules (the Fig. 13 view).

use crate::assign::{assign_nodes, AssignedJob};
use crate::swf::Job;
use jedule_core::{Allocation, Color, ColorMap, ColorPair, Schedule, ScheduleBuilder, Task};

/// Conversion options.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    pub cluster_name: String,
    pub total_nodes: u32,
    /// First nodes reserved for login/debug (drawn empty).
    pub reserved: u32,
    /// Jobs of this user get the task type `"highlight"` ("we also
    /// highlighted in yellow the jobs of user 6447").
    pub highlight_user: Option<i64>,
    /// Attach per-task `user`/`procs` attributes (for the interactive
    /// task-info popup). Disable for bird's-eye ingest of very large
    /// traces: a million tasks otherwise materialize two extra strings
    /// and a vector each — hundreds of megabytes that the renderer never
    /// reads, interleaved between the fields it does read.
    pub task_attrs: bool,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            cluster_name: "thunder".into(),
            total_nodes: 1024,
            reserved: 20,
            highlight_user: Some(6447),
            task_attrs: true,
        }
    }
}

/// Assigns nodes and converts to a Jedule schedule.
pub fn jobs_to_schedule(jobs: &[Job], opts: &ConvertOptions) -> Schedule {
    let assigned = assign_nodes(jobs, opts.total_nodes, opts.reserved);
    assigned_to_schedule(&assigned, opts)
}

/// Converts pre-assigned jobs.
pub fn assigned_to_schedule(assigned: &[AssignedJob], opts: &ConvertOptions) -> Schedule {
    let mut b = ScheduleBuilder::new()
        .cluster(0, opts.cluster_name.clone(), opts.total_nodes)
        .reserve_tasks(assigned.len())
        .meta("jobs", assigned.len().to_string())
        .meta("reserved_nodes", opts.reserved.to_string());
    if let Some(u) = opts.highlight_user {
        b = b.meta("highlight_user", u.to_string());
    }
    for a in assigned {
        if a.nodes.is_empty() {
            continue;
        }
        let kind = match opts.highlight_user {
            Some(u) if a.job.user == u => "highlight",
            _ => "job",
        };
        let mut task = Task::new(a.job.id.to_string(), kind, a.job.start(), a.job.end())
            .on(Allocation::new(0, a.nodes.clone()));
        if opts.task_attrs {
            task = task
                .with_attr("user", a.job.user.to_string())
                .with_attr("procs", a.job.procs.to_string());
        }
        b = b.task(task);
    }
    b.build_unchecked()
}

/// The Fig. 13 color map: regular jobs muted, the highlighted user's
/// jobs yellow.
pub fn workload_colormap() -> ColorMap {
    let mut m = ColorMap::new("workload");
    m.set(
        "job",
        ColorPair::new(Color::WHITE, Color::parse("4682b4").unwrap()),
    );
    m.set(
        "highlight",
        ColorPair::new(Color::BLACK, Color::parse("ffd700").unwrap()),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_thunder_day, ThunderParams};
    use jedule_core::validate;

    #[test]
    fn thunder_day_schedule_is_valid() {
        let p = ThunderParams::default();
        let jobs = synth_thunder_day(&p);
        let s = jobs_to_schedule(&jobs, &ConvertOptions::default());
        assert!(validate(&s).is_empty());
        assert_eq!(s.total_hosts(), 1024);
        assert!(s.tasks.len() > 700, "{} tasks", s.tasks.len());
    }

    #[test]
    fn reserved_nodes_stay_empty() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        let s = jobs_to_schedule(&jobs, &ConvertOptions::default());
        for host in 0..20 {
            assert!(
                s.tasks_on_host(0, host).is_empty(),
                "reserved node {host} was used"
            );
        }
    }

    #[test]
    fn highlight_user_typed_separately() {
        let p = ThunderParams::default();
        let jobs = synth_thunder_day(&p);
        let s = jobs_to_schedule(&jobs, &ConvertOptions::default());
        let highlighted = s.tasks.iter().filter(|t| t.kind == "highlight").count();
        assert!(highlighted > 0);
        assert!(s.tasks.iter().any(|t| t.kind == "job"));
        // Highlighted tasks all belong to the user.
        for t in s.tasks.iter().filter(|t| t.kind == "highlight") {
            let user = t.attrs.iter().find(|(k, _)| k == "user").unwrap();
            assert_eq!(user.1, "6447");
        }
    }

    #[test]
    fn no_highlighting_when_disabled() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        let opts = ConvertOptions {
            highlight_user: None,
            ..Default::default()
        };
        let s = jobs_to_schedule(&jobs, &opts);
        assert!(s.tasks.iter().all(|t| t.kind == "job"));
    }

    #[test]
    fn colormap_has_yellow_highlight() {
        let m = workload_colormap();
        assert_eq!(m.get("highlight").unwrap().bg, Color::new(0xff, 0xd7, 0));
    }

    #[test]
    fn meta_records_the_setup() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        let s = jobs_to_schedule(&jobs, &ConvertOptions::default());
        assert_eq!(s.meta.get("reserved_nodes"), Some("20"));
        assert_eq!(s.meta.get("highlight_user"), Some("6447"));
    }
}
