//! Node-assignment reconstruction.
//!
//! SWF traces record how many processors each job used, but not *which*
//! nodes — yet the Fig. 13 bird's-eye view needs rectangles on concrete
//! rows. This module replays the trace through an event-driven allocator:
//! jobs grab nodes at their start time (first-fit contiguous, falling
//! back to the lowest free indices when fragmented — producing the
//! multi-rectangle tasks Jedule exists to draw) and release them at their
//! end time. The first `reserved` nodes are never allocated, matching
//! "20 nodes of this cluster were reserved as login and debug nodes …
//! jobs get only executed by nodes with a number greater than 20".

use crate::swf::Job;
use jedule_core::{HostRange, HostSet};

/// A job with reconstructed nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignedJob {
    pub job: Job,
    pub nodes: HostSet,
    /// True when the allocator could not find enough free nodes and the
    /// job was truncated to what was available (dirty traces only).
    pub truncated: bool,
}

/// Free-node pool over `[reserved, total)`.
struct FreePool {
    free: HostSet,
}

impl FreePool {
    fn new(total: u32, reserved: u32) -> Self {
        FreePool {
            free: HostSet::contiguous(reserved, total.saturating_sub(reserved)),
        }
    }

    /// Takes `n` nodes: a contiguous run if one exists, else the lowest
    /// free indices.
    fn take(&mut self, n: u32) -> HostSet {
        if n == 0 {
            return HostSet::new();
        }
        // First fit: smallest-start contiguous range that holds n.
        if let Some(r) = self.free.ranges().iter().find(|r| r.nb >= n).copied() {
            let taken = HostSet::contiguous(r.start, n);
            self.remove(&taken);
            return taken;
        }
        // Scatter: lowest free indices.
        let picked: Vec<u32> = self.free.iter().take(n as usize).collect();
        let taken = HostSet::from_hosts(picked);
        self.remove(&taken);
        taken
    }

    fn remove(&mut self, set: &HostSet) {
        // Set difference via ranges.
        let mut out = HostSet::new();
        for r in self.free.ranges() {
            let mut cursor = r.start;
            for t in set.ranges() {
                let lo = t.start.max(r.start);
                let hi = t.end().min(r.end());
                if lo >= hi {
                    continue;
                }
                if lo > cursor {
                    out.insert_range(HostRange::new(cursor, lo - cursor));
                }
                cursor = cursor.max(hi);
            }
            if cursor < r.end() {
                out.insert_range(HostRange::new(cursor, r.end() - cursor));
            }
        }
        self.free = out;
    }

    fn give_back(&mut self, set: &HostSet) {
        self.free = self.free.union(set);
    }

    fn free_count(&self) -> u32 {
        self.free.count()
    }
}

/// Replays `jobs` over a machine of `total_nodes`, the first `reserved`
/// of which are never used. Jobs are processed in event order (releases
/// before grabs at equal times). Jobs asking for more nodes than exist
/// outside the reservation are truncated.
pub fn assign_nodes(jobs: &[Job], total_nodes: u32, reserved: u32) -> Vec<AssignedJob> {
    #[derive(Clone, Copy, PartialEq)]
    enum Ev {
        End(usize),
        Start(usize),
    }
    let mut events: Vec<(f64, u8, Ev)> = Vec::with_capacity(jobs.len() * 2);
    for (i, j) in jobs.iter().enumerate() {
        events.push((j.start(), 1, Ev::Start(i)));
        events.push((j.end(), 0, Ev::End(i)));
    }
    // Ends (tag 0) before starts (tag 1) at equal times.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut pool = FreePool::new(total_nodes, reserved);
    let mut out: Vec<Option<AssignedJob>> = vec![None; jobs.len()];

    for (_, _, ev) in events {
        match ev {
            Ev::End(i) => {
                if let Some(a) = &out[i] {
                    let nodes = a.nodes.clone();
                    pool.give_back(&nodes);
                }
            }
            Ev::Start(i) => {
                let want = jobs[i].procs;
                let available = pool.free_count();
                let take = want.min(available);
                let nodes = pool.take(take);
                out[i] = Some(AssignedJob {
                    job: jobs[i].clone(),
                    nodes,
                    truncated: take < want,
                });
            }
        }
    }

    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: i64, submit: f64, run: f64, procs: u32) -> Job {
        Job {
            id,
            submit,
            wait: 0.0,
            run,
            procs,
            user: 0,
            group: 0,
            queue: 0,
            status: 1,
        }
    }

    #[test]
    fn reserved_nodes_never_used() {
        let jobs = vec![job(1, 0.0, 10.0, 8)];
        let a = assign_nodes(&jobs, 32, 20);
        assert_eq!(a[0].nodes.min_host(), Some(20));
        assert_eq!(a[0].nodes.count(), 8);
        assert!(!a[0].truncated);
    }

    #[test]
    fn concurrent_jobs_get_disjoint_nodes() {
        let jobs = vec![job(1, 0.0, 10.0, 8), job(2, 1.0, 10.0, 8)];
        let a = assign_nodes(&jobs, 32, 0);
        assert!(!a[0].nodes.intersects(&a[1].nodes));
        assert_eq!(a[0].nodes.count() + a[1].nodes.count(), 16);
    }

    #[test]
    fn nodes_reused_after_release() {
        let jobs = vec![job(1, 0.0, 10.0, 16), job(2, 10.0, 10.0, 16)];
        let a = assign_nodes(&jobs, 16, 0);
        // Release at t=10 happens before the grab at t=10.
        assert_eq!(a[1].nodes.count(), 16);
        assert!(!a[1].truncated);
        assert_eq!(a[0].nodes, a[1].nodes);
    }

    #[test]
    fn fragmentation_produces_noncontiguous_sets() {
        // j1 [0..4), j2 [4..8), j3 [8..12); j2 releases; j4 wants 6 →
        // must scatter across the [4..8) hole and [12..16).
        let jobs = vec![
            job(1, 0.0, 100.0, 4),
            job(2, 0.0, 10.0, 4),
            job(3, 0.0, 100.0, 4),
            job(4, 20.0, 10.0, 6),
        ];
        let a = assign_nodes(&jobs, 16, 0);
        let j4 = a.iter().find(|x| x.job.id == 4).unwrap();
        assert_eq!(j4.nodes.count(), 6);
        assert!(!j4.nodes.is_contiguous(), "nodes {}", j4.nodes);
    }

    #[test]
    fn oversized_jobs_truncated() {
        let jobs = vec![job(1, 0.0, 10.0, 64)];
        let a = assign_nodes(&jobs, 32, 20);
        assert!(a[0].truncated);
        assert_eq!(a[0].nodes.count(), 12);
    }

    #[test]
    fn no_overlap_invariant_on_dense_trace() {
        // Many random-ish jobs; verify the fundamental invariant: at any
        // time, node sets of running jobs are pairwise disjoint.
        let mut jobs = Vec::new();
        for i in 0..60i64 {
            jobs.push(job(
                i,
                (i % 17) as f64,
                5.0 + (i % 7) as f64,
                1 + (i % 9) as u32,
            ));
        }
        let a = assign_nodes(&jobs, 48, 4);
        for (x, ja) in a.iter().enumerate() {
            assert!(ja.nodes.min_host().is_none_or(|m| m >= 4));
            for jb in &a[x + 1..] {
                let overlap_time = ja.job.start() < jb.job.end() && jb.job.start() < ja.job.end();
                if overlap_time {
                    assert!(
                        !ja.nodes.intersects(&jb.nodes),
                        "jobs {} and {} share nodes",
                        ja.job.id,
                        jb.job.id
                    );
                }
            }
        }
    }

    #[test]
    fn zero_proc_job_gets_nothing() {
        let jobs = vec![job(1, 0.0, 10.0, 0)];
        let a = assign_nodes(&jobs, 8, 0);
        assert!(a[0].nodes.is_empty());
    }
}
