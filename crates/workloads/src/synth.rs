//! Synthetic Thunder-like day generator.
//!
//! The real `LLNL-Thunder-2007` trace is not redistributable inside this
//! repository, so Fig. 13 is regenerated from a calibrated synthetic
//! workload matching the figure's published characteristics: a 1024-node
//! cluster, the first 20 nodes reserved, 834 jobs finishing within one
//! day, power-of-two-heavy job sizes, a heavy-tailed runtime mix and a
//! small population of users of which one is highlighted. Real traces
//! can be substituted at any time via [`crate::swf::parse_swf`].

use crate::assign::AssignedJob;
use crate::swf::Job;
use jedule_core::HostSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters, defaulting to the Fig. 13 setting.
#[derive(Debug, Clone)]
pub struct ThunderParams {
    pub nodes: u32,
    pub reserved: u32,
    /// Jobs finishing within the day.
    pub jobs: usize,
    /// Day length in seconds.
    pub day: f64,
    /// Number of distinct users.
    pub users: usize,
    /// The user whose jobs the figure highlights.
    pub highlight_user: i64,
    pub seed: u64,
}

impl Default for ThunderParams {
    fn default() -> Self {
        ThunderParams {
            nodes: 1024,
            reserved: 20,
            jobs: 834,
            day: 86_400.0,
            users: 40,
            highlight_user: 6447,
            seed: 20070202,
        }
    }
}

/// Samples a job size: mostly powers of two (dominant on Thunder), with
/// occasional odd sizes, capped by the non-reserved node count.
fn sample_size(rng: &mut StdRng, max: u32) -> u32 {
    let r: f64 = rng.gen();
    let size = if r < 0.85 {
        // Power of two, geometric-ish: small sizes common, big rare.
        let exp: u32 = rng.gen_range(0..=9); // 1..512
        let bias: u32 = rng.gen_range(0..=2);
        1u32 << exp.saturating_sub(bias)
    } else if r < 0.97 {
        rng.gen_range(1..=64)
    } else {
        // The occasional very large job that dominates the picture.
        rng.gen_range(256..=768)
    };
    size.clamp(1, max)
}

/// Samples a runtime: log-uniform between 30 s and 8 h, with a bump of
/// short debug jobs.
fn sample_runtime(rng: &mut StdRng) -> f64 {
    if rng.gen_bool(0.25) {
        rng.gen_range(20.0..300.0)
    } else {
        let lo: f64 = 30.0;
        let hi: f64 = 8.0 * 3600.0;
        (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
    }
}

/// Generates the synthetic day. All jobs *finish* within `[0, day)` (the
/// paper plots "all jobs that finished on 02/02"), so some start before
/// time zero — exactly like the real day view, where long jobs reach
/// back into the previous day.
pub fn synth_thunder_day(params: &ThunderParams) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let usable = params.nodes - params.reserved;
    // Zipf-ish user weights.
    let user_ids: Vec<i64> = (0..params.users)
        .map(|u| {
            if u == 0 {
                params.highlight_user
            } else {
                1000 + u as i64 * 13
            }
        })
        .collect();

    // Peak concurrent node usage of the accepted jobs inside [start, end)
    // — the generator is capacity-aware so the trace never oversubscribes
    // the machine (real traces cannot, either).
    let peak_usage = |accepted: &[Job], start: f64, end: f64| -> u32 {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for j in accepted {
            let s = j.start().max(start);
            let e = j.end().min(end);
            if s < e {
                events.push((s, i64::from(j.procs)));
                events.push((e, -i64::from(j.procs)));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as u32
    };

    let mut jobs: Vec<Job> = Vec::with_capacity(params.jobs);
    for i in 0..params.jobs {
        let mut run = sample_runtime(&mut rng);
        let mut end: f64 = rng.gen_range(0.0..params.day);
        let mut procs = sample_size(&mut rng, usable);
        // Resample until the job fits; as a last resort shrink it.
        for attempt in 0..24 {
            let free = usable.saturating_sub(peak_usage(&jobs, end - run, end));
            if procs <= free {
                break;
            }
            if attempt >= 16 && free >= 1 {
                procs = free;
                break;
            }
            run = sample_runtime(&mut rng);
            end = rng.gen_range(0.0..params.day);
            procs = sample_size(&mut rng, usable.max(1) / 2);
        }
        let start = end - run;
        // Zipf rank selection: user k with weight 1/(k+1).
        let total_w: f64 = (0..params.users).map(|k| 1.0 / (k + 1) as f64).sum();
        let mut pick = rng.gen::<f64>() * total_w;
        let mut user = user_ids[0];
        for (k, &uid) in user_ids.iter().enumerate() {
            pick -= 1.0 / (k + 1) as f64;
            if pick <= 0.0 {
                user = uid;
                break;
            }
        }
        jobs.push(Job {
            id: i as i64 + 1,
            submit: start.min(end - 1.0),
            wait: 0.0,
            run,
            procs,
            user,
            group: user % 10,
            queue: i64::from(procs > 64),
            status: 1,
        });
    }
    // Present jobs in start order, like a real trace.
    jobs.sort_by(|a, b| a.start().total_cmp(&b.start()));
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = i as i64 + 1;
    }
    jobs
}

/// O(n) pre-assigned trace generator for scale benchmarks.
///
/// [`synth_thunder_day`]'s capacity check rescans every accepted job per
/// candidate, which is quadratic and unusable at 10⁶ jobs. This
/// generator instead packs jobs into fixed contiguous node *lanes* with a
/// per-lane time cursor: a job lands on lane `i % lanes`, occupies the
/// whole lane, starts where the lane's cursor sits and advances it by the
/// job's runtime, so lanes never oversubscribe their nodes and generation
/// is linear in the job count. Jobs abut back-to-back, modelling the
/// saturated production day a bird's-eye chart targets; the result is
/// deterministic per seed, and at large counts most jobs end up narrower
/// than one pixel.
pub fn synth_scale_trace(jobs: usize, nodes: u32, seed: u64) -> Vec<AssignedJob> {
    const LANE_W: u32 = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let lanes = (nodes.max(LANE_W) / LANE_W) as usize;
    let mut cursor = vec![0.0f64; lanes];

    let mut out = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let lane = i % lanes;
        let run = 30.0 + rng.gen::<f64>() * 570.0; // 30 s – 10 min
        let procs = LANE_W;
        let start = cursor[lane];
        cursor[lane] = start + run;
        let first = lane as u32 * LANE_W;
        out.push(AssignedJob {
            job: Job {
                id: i as i64 + 1,
                submit: start,
                wait: 0.0,
                run,
                procs,
                user: 1000 + (i % 37) as i64,
                group: (i % 7) as i64,
                queue: 0,
                status: 1,
            },
            nodes: HostSet::contiguous(first, procs),
            truncated: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swf::filter_finished_on_day;

    #[test]
    fn default_matches_fig13_shape() {
        let p = ThunderParams::default();
        let jobs = synth_thunder_day(&p);
        assert_eq!(jobs.len(), 834);
        // All jobs finish within the day.
        assert_eq!(filter_finished_on_day(jobs.clone(), 0.0).len(), 834);
        // Sizes respect the usable node count.
        assert!(jobs.iter().all(|j| j.procs >= 1 && j.procs <= 1004));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ThunderParams::default();
        assert_eq!(synth_thunder_day(&p), synth_thunder_day(&p));
        let q = ThunderParams {
            seed: 7,
            ..ThunderParams::default()
        };
        assert_ne!(synth_thunder_day(&p), synth_thunder_day(&q));
    }

    #[test]
    fn highlight_user_present() {
        let p = ThunderParams::default();
        let jobs = synth_thunder_day(&p);
        let mine = jobs.iter().filter(|j| j.user == p.highlight_user).count();
        // User 0 has the largest Zipf weight; expect a healthy share.
        assert!(mine > 20, "highlight user has only {mine} jobs");
        assert!(mine < 834);
    }

    #[test]
    fn power_of_two_sizes_dominate() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        let pow2 = jobs.iter().filter(|j| j.procs.is_power_of_two()).count();
        assert!(
            pow2 * 2 > jobs.len(),
            "{pow2}/{} power-of-two sizes",
            jobs.len()
        );
    }

    #[test]
    fn some_jobs_started_the_previous_day() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        assert!(jobs.iter().any(|j| j.start() < 0.0));
    }

    #[test]
    fn ids_follow_start_order() {
        let jobs = synth_thunder_day(&ThunderParams::default());
        for w in jobs.windows(2) {
            assert!(w[0].start() <= w[1].start());
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn scale_trace_is_deterministic_and_disjoint() {
        let a = synth_scale_trace(2000, 256, 42);
        let b = synth_scale_trace(2000, 256, 42);
        assert_eq!(a.len(), 2000);
        assert_eq!(a, b);
        assert_ne!(a, synth_scale_trace(2000, 256, 43));
        // Jobs on the same lane never overlap in time; different lanes
        // never share nodes — so the trace is oversubscription-free.
        for (i, x) in a.iter().enumerate() {
            assert!(x.job.run > 0.0);
            assert!(!x.nodes.is_empty());
            assert!(x.nodes.max_host().unwrap() < 256);
            for y in a.iter().skip(i + 1) {
                if x.nodes.intersects(&y.nodes) {
                    assert!(x.job.end() <= y.job.start() || y.job.end() <= x.job.start());
                }
            }
        }
    }

    #[test]
    fn scale_trace_converts_to_a_valid_schedule() {
        use crate::convert::{assigned_to_schedule, ConvertOptions};
        let assigned = synth_scale_trace(5000, 1024, 7);
        let opts = ConvertOptions {
            highlight_user: None,
            reserved: 0,
            ..ConvertOptions::default()
        };
        let s = assigned_to_schedule(&assigned, &opts);
        assert_eq!(s.tasks.len(), 5000);
        assert!(jedule_core::validate(&s).is_empty());
    }

    #[test]
    fn small_configurations_work() {
        let p = ThunderParams {
            nodes: 64,
            reserved: 4,
            jobs: 50,
            users: 3,
            ..ThunderParams::default()
        };
        let jobs = synth_thunder_day(&p);
        assert_eq!(jobs.len(), 50);
        assert!(jobs.iter().all(|j| j.procs <= 60));
    }
}
