//! Standard Workload Format (SWF) parsing.
//!
//! The Parallel Workloads Archive stores traces as one line per job with
//! 18 whitespace-separated fields; header lines start with `;`. Missing
//! values are `-1`. Fields (1-based, per the PWA definition):
//!
//! ```text
//!  1 job number          7 used memory        13 group id
//!  2 submit time         8 requested procs    14 executable
//!  3 wait time           9 requested time     15 queue
//!  4 run time           10 requested memory   16 partition
//!  5 allocated procs    11 status             17 preceding job
//!  6 avg cpu time       12 user id            18 think time
//! ```

use jedule_core::{effective_threads, line_chunks, obs};
use std::fmt;
use std::io::BufRead;

/// One job record.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    pub id: i64,
    /// Seconds since trace start.
    pub submit: f64,
    pub wait: f64,
    pub run: f64,
    /// Allocated processors (falls back to requested when missing).
    pub procs: u32,
    pub user: i64,
    pub group: i64,
    pub queue: i64,
    pub status: i64,
}

impl Job {
    /// Start of execution.
    pub fn start(&self) -> f64 {
        self.submit + self.wait.max(0.0)
    }

    /// End of execution.
    pub fn end(&self) -> f64 {
        self.start() + self.run.max(0.0)
    }
}

/// Selected header metadata (`; Key: Value` lines).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SwfHeader {
    pub computer: Option<String>,
    pub max_nodes: Option<u32>,
    pub max_procs: Option<u32>,
    pub raw: Vec<(String, String)>,
}

/// Parse error with line number.
#[derive(Debug)]
pub struct SwfError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SwfError {}

/// Parses one numeric SWF field. The `-1` missing marker and plain
/// unsigned integers — the overwhelming majority of SWF fields — skip
/// the general float machinery; everything else (decimals, exponents,
/// junk) falls through to `str::parse`. Up to 15 digits the integer fits
/// in 53 bits, so the `u64 → f64` conversion is exact and the result is
/// bit-identical to `tok.parse::<f64>().unwrap_or(-1.0)`.
fn parse_field(tok: &str) -> f64 {
    if tok == "-1" {
        return -1.0;
    }
    let b = tok.as_bytes();
    if !b.is_empty() && b.len() <= 15 && b.iter().all(u8::is_ascii_digit) {
        let mut v: u64 = 0;
        for &c in b {
            v = v * 10 + u64::from(c - b'0');
        }
        return v as f64;
    }
    tok.parse().unwrap_or(-1.0)
}

/// Parses one SWF line (header comment or job record) into the
/// accumulators. Tokenizes into a fixed-size buffer — no per-line heap
/// allocation on the job path.
fn parse_swf_line(
    raw: &str,
    ln: usize,
    header: &mut SwfHeader,
    jobs: &mut Vec<Job>,
) -> Result<(), SwfError> {
    let line = raw.trim();
    if line.is_empty() {
        return Ok(());
    }
    if let Some(comment) = line.strip_prefix(';') {
        if let Some((k, v)) = comment.split_once(':') {
            let key = k.trim().to_string();
            let value = v.trim().to_string();
            match key.as_str() {
                "Computer" => header.computer = Some(value.clone()),
                "MaxNodes" => header.max_nodes = value.parse().ok(),
                "MaxProcs" => header.max_procs = value.parse().ok(),
                _ => {}
            }
            header.raw.push((key, value));
        }
        return Ok(());
    }

    // The PWA definition has 18 fields; tolerate (and ignore) extras.
    let mut f: [&str; 18] = [""; 18];
    let mut n = 0usize;
    for tok in line.split_whitespace() {
        if n == f.len() {
            break;
        }
        f[n] = tok;
        n += 1;
    }
    if n < 5 {
        return Err(SwfError {
            line: ln,
            msg: format!("expected ≥5 fields, found {n}"),
        });
    }
    let get = |i: usize| -> f64 {
        if i < n {
            parse_field(f[i])
        } else {
            -1.0
        }
    };
    let id = get(0) as i64;
    let submit = get(1);
    let wait = get(2);
    let run = get(3);
    let mut procs = get(4);
    if procs <= 0.0 {
        procs = get(7); // fall back to requested processors
    }
    if procs <= 0.0 || run < 0.0 || submit < 0.0 {
        return Ok(()); // unusable record, skipped like other PWA consumers
    }
    jobs.push(Job {
        id,
        submit,
        wait: wait.max(0.0),
        run,
        procs: procs as u32,
        user: get(11) as i64,
        group: get(12) as i64,
        queue: get(14) as i64,
        status: get(10) as i64,
    });
    Ok(())
}

/// Parses SWF text into header metadata and jobs. Jobs with unusable
/// essential fields (no processors, negative run time with no wait) are
/// skipped rather than failing the whole trace, mirroring how PWA
/// consumers treat dirty records.
pub fn parse_swf(src: &str) -> Result<(SwfHeader, Vec<Job>), SwfError> {
    let _s = obs::span("ingest.swf");
    obs::count("ingest.bytes", src.len() as u64);
    let parsed = parse_swf_chunk(src, 1)?;
    obs::count("ingest.swf_jobs", parsed.1.len() as u64);
    Ok(parsed)
}

/// Parses one line-aligned chunk of an SWF document whose first line has
/// the given 1-based global line number. [`parse_swf`] is the
/// whole-document special case (`first_line == 1`).
fn parse_swf_chunk(text: &str, first_line: usize) -> Result<(SwfHeader, Vec<Job>), SwfError> {
    let mut header = SwfHeader::default();
    // A job line is ~60 bytes; pre-size to avoid regrowth on big traces.
    let mut jobs = Vec::with_capacity(text.len() / 60);
    for (off, raw) in text.lines().enumerate() {
        parse_swf_line(raw, first_line + off, &mut header, &mut jobs)?;
    }
    Ok((header, jobs))
}

/// Below this size the chunk/spawn/splice overhead outweighs the win, so
/// auto mode (`threads == 0`) stays sequential. An explicit `threads ≥ 2`
/// always chunks, which keeps the parallel path testable on tiny inputs.
const PARALLEL_MIN_BYTES: usize = 1 << 20;

/// Parallel [`parse_swf`]: splits `src` at line boundaries into
/// ~`threads` chunks, parses them concurrently, and splices the results
/// in order. Output is identical to the sequential parser — job order,
/// header-line handling (later `; Key: Value` lines overwrite earlier
/// ones, exactly as a sequential scan applies them), skipped dirty
/// records, and the global line number of the first error all match.
///
/// `threads` follows the workspace knob convention: `0` = auto (all
/// cores, falling back to sequential for small inputs), `1` = the
/// sequential code path, `n` = exactly `n` workers.
pub fn parse_swf_parallel(src: &str, threads: usize) -> Result<(SwfHeader, Vec<Job>), SwfError> {
    let workers = effective_threads(threads);
    if workers <= 1 || (threads == 0 && src.len() < PARALLEL_MIN_BYTES) {
        return parse_swf(src);
    }
    let _s = obs::span("ingest.swf");
    obs::count("ingest.bytes", src.len() as u64);
    let chunks = line_chunks(src, workers);
    let obs_handle = obs::handle();
    let parts = crossbeam::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let (text, first_line) = (c.text, c.first_line);
                let obs_handle = obs_handle.clone();
                s.spawn(move |_| {
                    let _att = obs_handle.attach();
                    let _sp = obs::span_with("ingest.chunk", || {
                        format!("chunk {ci} @ line {first_line}")
                    });
                    parse_swf_chunk(text, first_line)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SWF parser worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("SWF parser scope failed");

    // Splice in chunk order. Workers stop at their first bad line, and
    // chunks are ordered by line, so the first error seen here is the
    // error a sequential scan would have reported.
    let mut merged = SwfHeader::default();
    let mut jobs: Vec<Job> = Vec::new();
    for part in parts {
        let (h, j) = part?;
        // Replay raw header entries through the same per-line logic so
        // last-write-wins (and unparseable values resetting MaxNodes /
        // MaxProcs to None) behave exactly as in a sequential scan.
        for (k, v) in h.raw {
            match k.as_str() {
                "Computer" => merged.computer = Some(v.clone()),
                "MaxNodes" => merged.max_nodes = v.parse().ok(),
                "MaxProcs" => merged.max_procs = v.parse().ok(),
                _ => {}
            }
            merged.raw.push((k, v));
        }
        if jobs.is_empty() {
            jobs = j; // keep the (pre-sized) first chunk's buffer
        } else {
            jobs.extend(j);
        }
    }
    obs::count("ingest.swf_jobs", jobs.len() as u64);
    Ok((merged, jobs))
}

/// Streaming variant of [`parse_swf`]: reads line by line from any
/// buffered source, reusing one line buffer, so a million-job trace never
/// needs the whole file in memory at once.
pub fn parse_swf_reader<R: BufRead>(mut src: R) -> Result<(SwfHeader, Vec<Job>), SwfError> {
    let mut header = SwfHeader::default();
    let mut jobs = Vec::new();
    let mut buf = String::new();
    let mut ln = 0usize;
    loop {
        buf.clear();
        ln += 1;
        let n = src.read_line(&mut buf).map_err(|e| SwfError {
            line: ln,
            msg: format!("read error: {e}"),
        })?;
        if n == 0 {
            return Ok((header, jobs));
        }
        parse_swf_line(&buf, ln, &mut header, &mut jobs)?;
    }
}

/// Opens and streams an SWF trace from disk (see [`parse_swf_reader`]).
pub fn parse_swf_file(
    path: impl AsRef<std::path::Path>,
) -> Result<(SwfHeader, Vec<Job>), SwfError> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| SwfError {
        line: 0,
        msg: format!("cannot open {}: {e}", path.as_ref().display()),
    })?;
    parse_swf_reader(std::io::BufReader::new(file))
}

/// Keeps the jobs that *finished* within `[day_start, day_start + 86400)`
/// — the paper's "all jobs that finished on 02/02" selection. Takes the
/// vector by value and filters in place: on the million-job bird's-eye
/// path this drops the per-job clone the old `&[Job]` signature paid.
pub fn filter_finished_on_day(mut jobs: Vec<Job>, day_start: f64) -> Vec<Job> {
    jobs.retain(|j| {
        let e = j.end();
        e >= day_start && e < day_start + 86_400.0
    });
    jobs
}

/// Serializes jobs back to SWF (for round-trip tests and export).
///
/// Every header line the parser recorded (`SwfHeader.raw`) is emitted in
/// original order, so `; Note:`-style metadata survives a round-trip.
/// The Computer / MaxNodes / MaxProcs conveniences are written explicitly
/// only when set programmatically (i.e. absent from `raw`).
pub fn write_swf(header: &SwfHeader, jobs: &[Job]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let has = |key: &str| header.raw.iter().any(|(k, _)| k == key);
    if let Some(c) = &header.computer {
        if !has("Computer") {
            let _ = writeln!(out, "; Computer: {c}");
        }
    }
    if let Some(n) = header.max_nodes {
        if !has("MaxNodes") {
            let _ = writeln!(out, "; MaxNodes: {n}");
        }
    }
    if let Some(p) = header.max_procs {
        if !has("MaxProcs") {
            let _ = writeln!(out, "; MaxProcs: {p}");
        }
    }
    for (k, v) in &header.raw {
        let _ = writeln!(out, "; {k}: {v}");
    }
    for j in jobs {
        let _ = writeln!(
            out,
            "{} {} {} {} {} -1 -1 {} -1 -1 {} {} {} -1 {} -1 -1 -1",
            j.id, j.submit, j.wait, j.run, j.procs, j.procs, j.status, j.user, j.group, j.queue
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: LLNL Thunder
; MaxNodes: 1024
; MaxProcs: 4096
; Note: demo extract
1 0 10 3600 64 -1 -1 64 7200 -1 1 6447 5 -1 2 -1 -1 -1
2 100 0 1800 128 -1 -1 128 3600 -1 1 1234 5 -1 2 -1 -1 -1
3 200 50 -1 32 -1 -1 32 100 -1 0 9 9 -1 1 -1 -1 -1
4 300 0 60 -1 -1 -1 16 100 -1 1 7 7 -1 1 -1 -1 -1
";

    #[test]
    fn parses_header() {
        let (h, _) = parse_swf(SAMPLE).unwrap();
        assert_eq!(h.computer.as_deref(), Some("LLNL Thunder"));
        assert_eq!(h.max_nodes, Some(1024));
        assert_eq!(h.max_procs, Some(4096));
        assert!(h.raw.iter().any(|(k, _)| k == "Note"));
    }

    #[test]
    fn parses_jobs_and_skips_dirty() {
        let (_, jobs) = parse_swf(SAMPLE).unwrap();
        // Job 3 has run = -1 → skipped; job 4 falls back to requested 16.
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].procs, 64);
        assert_eq!(jobs[0].user, 6447);
        assert_eq!(jobs[2].procs, 16);
    }

    #[test]
    fn start_end_math() {
        let (_, jobs) = parse_swf(SAMPLE).unwrap();
        assert_eq!(jobs[0].start(), 10.0);
        assert_eq!(jobs[0].end(), 3610.0);
    }

    #[test]
    fn malformed_line_errors_with_position() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn day_filter() {
        let mk = |submit: f64, run: f64| Job {
            id: 0,
            submit,
            wait: 0.0,
            run,
            procs: 1,
            user: 0,
            group: 0,
            queue: 0,
            status: 1,
        };
        let jobs = vec![
            mk(0.0, 100.0),       // ends day 0
            mk(86_000.0, 1000.0), // ends day 1
            mk(172_700.0, 200.0), // ends day 2
        ];
        assert_eq!(filter_finished_on_day(jobs.clone(), 0.0).len(), 1);
        assert_eq!(filter_finished_on_day(jobs.clone(), 86_400.0).len(), 1);
        let d1 = filter_finished_on_day(jobs, 86_400.0);
        assert_eq!(d1[0].submit, 86_000.0);
    }

    #[test]
    fn roundtrip_via_writer() {
        let (h, jobs) = parse_swf(SAMPLE).unwrap();
        let text = write_swf(&h, &jobs);
        let (h2, jobs2) = parse_swf(&text).unwrap();
        // The full header — including `; Note:`-style lines the old writer
        // dropped — must survive the round-trip, in order.
        assert_eq!(h2, h);
        assert_eq!(
            h2.raw.iter().find(|(k, _)| k == "Note"),
            Some(&("Note".to_string(), "demo extract".to_string()))
        );
        assert_eq!(jobs2, jobs);
    }

    #[test]
    fn writer_emits_programmatic_header_once() {
        // Parsed headers: big-3 come from raw, no duplicate lines.
        let (h, _) = parse_swf(SAMPLE).unwrap();
        let text = write_swf(&h, &[]);
        assert_eq!(text.matches("; Computer:").count(), 1);
        // Programmatic headers (empty raw) still serialize the big 3.
        let h = SwfHeader {
            computer: Some("X".into()),
            max_nodes: Some(4),
            max_procs: None,
            raw: Vec::new(),
        };
        let text = write_swf(&h, &[]);
        assert_eq!(text, "; Computer: X\n; MaxNodes: 4\n");
    }

    #[test]
    fn empty_input() {
        let (h, jobs) = parse_swf("").unwrap();
        assert!(jobs.is_empty());
        assert!(h.computer.is_none());
    }

    #[test]
    fn reader_matches_string_parser() {
        let (h_str, j_str) = parse_swf(SAMPLE).unwrap();
        let (h_rd, j_rd) = parse_swf_reader(SAMPLE.as_bytes()).unwrap();
        assert_eq!(h_rd, h_str);
        assert_eq!(j_rd, j_str);
    }

    #[test]
    fn reader_reports_line_numbers() {
        let err = parse_swf_reader("; ok: header\n1 2 3\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn reader_handles_crlf_and_no_trailing_newline() {
        let src = "; Computer: X\r\n1 0 10 3600 64\r\n2 100 0 1800 128";
        let (h, jobs) = parse_swf_reader(src.as_bytes()).unwrap();
        assert_eq!(h.computer.as_deref(), Some("X"));
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].procs, 128);
    }

    #[test]
    fn extra_fields_tolerated() {
        let src = "1 0 10 3600 64 -1 -1 64 7200 -1 1 6447 5 -1 2 -1 -1 -1 99 99\n";
        let (_, jobs) = parse_swf(src).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].procs, 64);
    }

    #[test]
    fn fast_field_path_matches_parse() {
        for tok in [
            "-1",
            "0",
            "1",
            "42",
            "999999999999999",
            "1000000000000000",
            "18446744073709551616",
            "3.5",
            "-2",
            "1e3",
            "0.0",
            "junk",
            "",
            "007",
            "+5",
            "1.",
            "NaN-ish",
        ] {
            let slow = tok.parse::<f64>().unwrap_or(-1.0);
            let fast = parse_field(tok);
            assert!(
                fast == slow || (fast.is_nan() && slow.is_nan()),
                "token {tok:?}: fast {fast} vs parse {slow}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_on_sample() {
        let seq = parse_swf(SAMPLE).unwrap();
        for threads in [1usize, 2, 3, 4, 9] {
            let par = parse_swf_parallel(SAMPLE, threads).unwrap();
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn parallel_error_line_is_global() {
        // The bad record lands in a late chunk; its reported line number
        // must still be the global one.
        let mut src = String::from("; Computer: X\n");
        for i in 0..100 {
            src.push_str(&format!("{i} 0 10 3600 64\n"));
        }
        src.push_str("bad line\n");
        let seq = parse_swf(&src).unwrap_err();
        assert_eq!(seq.line, 102);
        for threads in [2usize, 4, 7] {
            let par = parse_swf_parallel(&src, threads).unwrap_err();
            assert_eq!(par.line, seq.line, "threads {threads}");
        }
    }

    #[test]
    fn parallel_header_last_write_wins() {
        // Later header lines overwrite earlier ones even when they fall
        // into different chunks; an unparseable MaxNodes resets to None.
        let mut src = String::from("; MaxNodes: 10\n; Computer: A\n");
        for i in 0..50 {
            src.push_str(&format!("{i} 0 10 3600 64\n"));
        }
        src.push_str("; Computer: B\n; MaxNodes: bogus\n");
        let seq = parse_swf(&src).unwrap();
        assert_eq!(seq.0.computer.as_deref(), Some("B"));
        assert_eq!(seq.0.max_nodes, None);
        for threads in [2usize, 3, 8] {
            let par = parse_swf_parallel(&src, threads).unwrap();
            assert_eq!(par, seq, "threads {threads}");
        }
    }
}
