//! Alternative schedule input format: CSV.
//!
//! The paper notes that Jedule can be extended "with a different parser …
//! not necessarily in XML". This dialect is convenient for spreadsheet and
//! awk pipelines:
//!
//! ```text
//! # comment lines start with '#'
//! cluster,0,cluster-0,8
//! meta,algorithm,cpa
//! task,<id>,<type>,<start>,<end>,<cluster>:<hosts>[;<cluster>:<hosts>...]
//! ```
//!
//! where `<hosts>` is a host-list expression like `0-3`, `5`, or `0-1+4-5`
//! (ranges joined by `+`).

use crate::error::IoError;
use crate::ingest::{self, Record};
use jedule_core::{Allocation, HostRange, HostSet, Schedule, Task};

/// Parses the host-list expression `0-3+7+9-10`.
pub fn parse_hostlist(expr: &str) -> Result<HostSet, IoError> {
    let mut set = HostSet::new();
    for part in expr.split('+') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((a, b)) => {
                let lo: u32 = a
                    .trim()
                    .parse()
                    .map_err(|_| IoError::number("host range", part))?;
                let hi: u32 = b
                    .trim()
                    .parse()
                    .map_err(|_| IoError::number("host range", part))?;
                if hi < lo {
                    return Err(IoError::format(format!("descending host range {part:?}")));
                }
                set.insert_range(HostRange::new(lo, hi - lo + 1));
            }
            None => {
                let h: u32 = part.parse().map_err(|_| IoError::number("host", part))?;
                set.insert_range(HostRange::new(h, 1));
            }
        }
    }
    Ok(set)
}

/// Formats a host set in the `+`-joined expression syntax.
pub fn format_hostlist(hosts: &HostSet) -> String {
    hosts
        .ranges()
        .iter()
        .map(|r| {
            if r.nb == 1 {
                r.start.to_string()
            } else {
                format!("{}-{}", r.start, r.end() - 1)
            }
        })
        .collect::<Vec<_>>()
        .join("+")
}

/// Parses one CSV line into a [`Record`] (`None` for blank/comment
/// lines). `ln` is the 1-based global line number used in errors.
fn csv_record(raw: &str, ln: usize) -> Result<Option<Record>, IoError> {
    let line = raw.trim();
    // Blank lines, `#` comments and XML-style `<!-- ... -->` banner
    // lines (as emitted by converters) carry no records.
    if line.is_empty() || line.starts_with('#') || crate::is_banner_comment(line) {
        return Ok(None);
    }
    let mut fields = line.split(',').map(str::trim);
    let record = fields.next().unwrap_or("");
    let ctx = |msg: &str| IoError::format(format!("line {ln}: {msg}"));
    match record {
        "cluster" => {
            let id: u32 = fields
                .next()
                .ok_or_else(|| ctx("cluster needs an id"))?
                .parse()
                .map_err(|_| ctx("bad cluster id"))?;
            let name = fields.next().ok_or_else(|| ctx("cluster needs a name"))?;
            let hosts: u32 = fields
                .next()
                .ok_or_else(|| ctx("cluster needs a host count"))?
                .parse()
                .map_err(|_| ctx("bad cluster host count"))?;
            Ok(Some(Record::Cluster {
                id,
                name: name.to_string(),
                hosts,
            }))
        }
        "meta" => {
            let k = fields.next().ok_or_else(|| ctx("meta needs a key"))?;
            let v = fields.next().unwrap_or("");
            Ok(Some(Record::Meta {
                key: k.to_string(),
                value: v.to_string(),
            }))
        }
        "task" => {
            let id = fields.next().ok_or_else(|| ctx("task needs an id"))?;
            let kind = fields.next().ok_or_else(|| ctx("task needs a type"))?;
            let start: f64 = fields
                .next()
                .ok_or_else(|| ctx("task needs a start time"))?
                .parse()
                .map_err(|_| ctx("bad start time"))?;
            let end: f64 = fields
                .next()
                .ok_or_else(|| ctx("task needs an end time"))?
                .parse()
                .map_err(|_| ctx("bad end time"))?;
            let allocs = fields.next().ok_or_else(|| ctx("task needs allocations"))?;
            let mut task = Task::new(id, kind, start, end);
            for spec in allocs.split(';') {
                let (c, hl) = spec
                    .split_once(':')
                    .ok_or_else(|| ctx("allocation must be cluster:hosts"))?;
                let cluster: u32 = c
                    .trim()
                    .parse()
                    .map_err(|_| ctx("bad allocation cluster id"))?;
                task.allocations
                    .push(Allocation::new(cluster, parse_hostlist(hl)?));
            }
            Ok(Some(Record::Task(task)))
        }
        other => Err(ctx(&format!("unknown record type {other:?}"))),
    }
}

/// Reads a schedule from CSV text.
pub fn read_schedule_csv(src: &str) -> Result<Schedule, IoError> {
    ingest::read_lines(src, 1, csv_record)
}

/// Parallel [`read_schedule_csv`]: chunked line-parallel ingest with the
/// workspace `threads` knob (`0` auto, `1` sequential, `n` workers).
/// Result and error reporting are identical to the sequential reader —
/// see the `ingest` module for why.
pub fn read_schedule_csv_parallel(src: &str, threads: usize) -> Result<Schedule, IoError> {
    ingest::read_lines(src, threads, csv_record)
}

/// Writes a schedule as CSV text.
pub fn write_schedule_csv(schedule: &Schedule) -> String {
    let mut out = String::from("# jedule schedule (CSV dialect)\n");
    for c in &schedule.clusters {
        out.push_str(&format!("cluster,{},{},{}\n", c.id, c.name, c.hosts));
    }
    for (k, v) in schedule.meta.iter() {
        out.push_str(&format!("meta,{k},{v}\n"));
    }
    for t in &schedule.tasks {
        let allocs = t
            .allocations
            .iter()
            .map(|a| format!("{}:{}", a.cluster, format_hostlist(&a.hosts)))
            .collect::<Vec<_>>()
            .join(";");
        out.push_str(&format!(
            "task,{},{},{},{},{}\n",
            t.id, t.kind, t.start, t.end, allocs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo
cluster,0,c0,8
cluster,1,c1,4
meta,alg,heft
task,t1,computation,0,2.5,0:0-7
task,t2,transfer,2.5,3.0,0:4-5;1:0-1
task,t3,computation,3,4,1:0+2-3
";

    #[test]
    fn parses_sample() {
        let s = read_schedule_csv(SAMPLE).unwrap();
        assert_eq!(s.clusters.len(), 2);
        assert_eq!(s.tasks.len(), 3);
        assert_eq!(s.meta.get("alg"), Some("heft"));
        let t2 = s.task_by_id("t2").unwrap();
        assert_eq!(t2.allocations.len(), 2);
        let t3 = s.task_by_id("t3").unwrap();
        assert_eq!(t3.resource_count(), 3);
        assert!(!t3.allocations[0].hosts.is_contiguous());
    }

    #[test]
    fn roundtrip() {
        let s = read_schedule_csv(SAMPLE).unwrap();
        let text = write_schedule_csv(&s);
        assert_eq!(read_schedule_csv(&text).unwrap(), s);
    }

    #[test]
    fn hostlist_expressions() {
        assert_eq!(parse_hostlist("0-3").unwrap(), HostSet::contiguous(0, 4));
        assert_eq!(parse_hostlist("5").unwrap(), HostSet::contiguous(5, 1));
        assert_eq!(
            parse_hostlist("0-1+4-5").unwrap(),
            HostSet::from_hosts([0, 1, 4, 5])
        );
        assert_eq!(
            format_hostlist(&HostSet::from_hosts([0, 1, 4, 5])),
            "0-1+4-5"
        );
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = read_schedule_csv("cluster,0,c,4\nbogus,1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn descending_range_rejected() {
        assert!(parse_hostlist("5-2").is_err());
    }

    #[test]
    fn semantic_validation_applies() {
        let res = read_schedule_csv("cluster,0,c,2\ntask,t,x,0,1,0:0-7\n");
        assert!(res.is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = read_schedule_csv(SAMPLE).unwrap();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                read_schedule_csv_parallel(SAMPLE, threads).unwrap(),
                seq,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_error_line_is_global() {
        let mut src = String::from("cluster,0,c,8\n");
        for i in 0..40 {
            src.push_str(&format!("task,t{i},x,0,1,0:0-3\n"));
        }
        src.push_str("bogus,1\n");
        for threads in [2usize, 5] {
            let err = read_schedule_csv_parallel(&src, threads).unwrap_err();
            assert!(err.to_string().contains("line 42"), "{err}");
        }
    }
}
