//! Alternative schedule input format: JSON lines.
//!
//! One JSON object per line; the `rec` field selects the record type:
//!
//! ```text
//! {"rec":"cluster","id":0,"name":"c0","hosts":8}
//! {"rec":"meta","name":"alg","value":"cpa"}
//! {"rec":"task","id":"t1","type":"computation","start":0.0,"end":2.5,
//!  "allocations":[{"cluster":0,"hosts":[[0,8]]}]}
//! ```
//!
//! `hosts` is a list of `[start, nb]` ranges, mirroring the XML
//! `<hosts start nb/>` elements.

use crate::error::IoError;
use crate::ingest::{self, Record};
use crate::json::{obj, parse, Json};
use jedule_core::{Allocation, HostRange, HostSet, Schedule, Task};

fn field_str<'a>(v: &'a Json, key: &str, line: usize) -> Result<&'a str, IoError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| IoError::format(format!("line {line}: missing string field {key:?}")))
}

fn field_num(v: &Json, key: &str, line: usize) -> Result<f64, IoError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| IoError::format(format!("line {line}: missing numeric field {key:?}")))
}

/// Parses one JSONL line into a [`Record`] (`None` for blank/comment
/// lines). `ln` is the 1-based global line number used in errors.
fn jsonl_record(raw: &str, ln: usize) -> Result<Option<Record>, IoError> {
    let line = raw.trim();
    // Blank lines, `#` comments and XML-style `<!-- ... -->` banner
    // lines (as emitted by converters) carry no records.
    if line.is_empty() || line.starts_with('#') || crate::is_banner_comment(line) {
        return Ok(None);
    }
    let v = parse(line)?;
    match field_str(&v, "rec", ln)? {
        "cluster" => {
            let id = field_num(&v, "id", ln)? as u32;
            let hosts = field_num(&v, "hosts", ln)? as u32;
            let name = v
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("cluster-{id}"));
            Ok(Some(Record::Cluster { id, name, hosts }))
        }
        "meta" => Ok(Some(Record::Meta {
            key: field_str(&v, "name", ln)?.to_string(),
            value: field_str(&v, "value", ln)?.to_string(),
        })),
        "task" => {
            let mut task = Task::new(
                field_str(&v, "id", ln)?,
                field_str(&v, "type", ln)?,
                field_num(&v, "start", ln)?,
                field_num(&v, "end", ln)?,
            );
            let allocs = v.get("allocations").and_then(Json::as_arr).ok_or_else(|| {
                IoError::format(format!("line {ln}: task needs an allocations array"))
            })?;
            for a in allocs {
                let cluster = field_num(a, "cluster", ln)? as u32;
                let ranges = a.get("hosts").and_then(Json::as_arr).ok_or_else(|| {
                    IoError::format(format!("line {ln}: allocation needs a hosts array"))
                })?;
                let mut hosts = HostSet::new();
                for r in ranges {
                    let pair = r.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        IoError::format(format!("line {ln}: host range must be [start, nb]"))
                    })?;
                    let start = pair[0].as_f64().unwrap_or(-1.0);
                    let nb = pair[1].as_f64().unwrap_or(-1.0);
                    if start < 0.0 || nb < 0.0 {
                        return Err(IoError::format(format!(
                            "line {ln}: negative host range values"
                        )));
                    }
                    hosts.insert_range(HostRange::new(start as u32, nb as u32));
                }
                task.allocations.push(Allocation::new(cluster, hosts));
            }
            if let Some(attrs) = v.get("attrs").and_then(Json::as_obj) {
                for (k, val) in attrs {
                    if let Some(s) = val.as_str() {
                        task.attrs.push((k.clone(), s.to_owned()));
                    }
                }
            }
            Ok(Some(Record::Task(task)))
        }
        other => Err(IoError::format(format!(
            "line {ln}: unknown record type {other:?}"
        ))),
    }
}

/// Reads a schedule from JSON-lines text.
pub fn read_schedule_jsonl(src: &str) -> Result<Schedule, IoError> {
    ingest::read_lines(src, 1, jsonl_record)
}

/// Parallel [`read_schedule_jsonl`]: chunked line-parallel ingest with
/// the workspace `threads` knob (`0` auto, `1` sequential, `n` workers).
/// Result and error reporting are identical to the sequential reader —
/// see the `ingest` module for why.
pub fn read_schedule_jsonl_parallel(src: &str, threads: usize) -> Result<Schedule, IoError> {
    ingest::read_lines(src, threads, jsonl_record)
}

/// Writes a schedule as JSON-lines text.
pub fn write_schedule_jsonl(schedule: &Schedule) -> String {
    let mut out = String::new();
    for c in &schedule.clusters {
        out.push_str(
            &obj([
                ("rec", Json::Str("cluster".into())),
                ("id", Json::Num(f64::from(c.id))),
                ("name", Json::Str(c.name.clone())),
                ("hosts", Json::Num(f64::from(c.hosts))),
            ])
            .to_string_compact(),
        );
        out.push('\n');
    }
    for (k, v) in schedule.meta.iter() {
        out.push_str(
            &obj([
                ("rec", Json::Str("meta".into())),
                ("name", Json::Str(k.into())),
                ("value", Json::Str(v.into())),
            ])
            .to_string_compact(),
        );
        out.push('\n');
    }
    for t in &schedule.tasks {
        let allocs: Vec<Json> = t
            .allocations
            .iter()
            .map(|a| {
                let ranges: Vec<Json> = a
                    .hosts
                    .ranges()
                    .iter()
                    .map(|r| {
                        Json::Arr(vec![
                            Json::Num(f64::from(r.start)),
                            Json::Num(f64::from(r.nb)),
                        ])
                    })
                    .collect();
                obj([
                    ("cluster", Json::Num(f64::from(a.cluster))),
                    ("hosts", Json::Arr(ranges)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("rec", Json::Str("task".into())),
            ("id", Json::Str(t.id.clone())),
            ("type", Json::Str(t.kind.clone())),
            ("start", Json::Num(t.start)),
            ("end", Json::Num(t.end)),
            ("allocations", Json::Arr(allocs)),
        ];
        if !t.attrs.is_empty() {
            fields.push((
                "attrs",
                Json::Obj(
                    t.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        out.push_str(&obj(fields).to_string_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_core::ScheduleBuilder;

    fn sample() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 8)
            .meta("alg", "mcpa")
            .task(
                Task::new("a", "computation", 0.0, 1.5)
                    .on(Allocation::contiguous(0, 0, 4))
                    .with_attr("level", "2"),
            )
            .task(
                Task::new("b", "transfer", 1.5, 2.0)
                    .on(Allocation::new(0, HostSet::from_hosts([0, 2, 5]))),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let text = write_schedule_jsonl(&s);
        assert_eq!(read_schedule_jsonl(&text).unwrap(), s);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let s = sample();
        let text = format!("# header\n\n{}", write_schedule_jsonl(&s));
        assert_eq!(read_schedule_jsonl(&text).unwrap(), s);
    }

    #[test]
    fn missing_fields_report_line() {
        let err = read_schedule_jsonl("{\"rec\":\"cluster\",\"id\":0}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn unknown_record_rejected() {
        assert!(read_schedule_jsonl("{\"rec\":\"frob\"}\n").is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let text = format!("# banner\n\n{}", write_schedule_jsonl(&sample()));
        let seq = read_schedule_jsonl(&text).unwrap();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                read_schedule_jsonl_parallel(&text, threads).unwrap(),
                seq,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_error_line_is_global() {
        let mut src = String::from("{\"rec\":\"cluster\",\"id\":0,\"hosts\":4}\n");
        for i in 0..30 {
            src.push_str(&format!(
                "{{\"rec\":\"task\",\"id\":\"t{i}\",\"type\":\"x\",\"start\":0,\"end\":1,\"allocations\":[{{\"cluster\":0,\"hosts\":[[0,2]]}}]}}\n"
            ));
        }
        src.push_str("{\"rec\":\"frob\"}\n");
        for threads in [2usize, 6] {
            let err = read_schedule_jsonl_parallel(&src, threads).unwrap_err();
            assert!(err.to_string().contains("line 32"), "{err}");
        }
    }

    #[test]
    fn negative_host_range_rejected() {
        let line = r#"{"rec":"cluster","id":0,"hosts":4}
{"rec":"task","id":"t","type":"x","start":0,"end":1,"allocations":[{"cluster":0,"hosts":[[-1,2]]}]}"#;
        assert!(read_schedule_jsonl(line).is_err());
    }
}
