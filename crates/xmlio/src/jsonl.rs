//! Alternative schedule input format: JSON lines.
//!
//! One JSON object per line; the `rec` field selects the record type:
//!
//! ```text
//! {"rec":"cluster","id":0,"name":"c0","hosts":8}
//! {"rec":"meta","name":"alg","value":"cpa"}
//! {"rec":"task","id":"t1","type":"computation","start":0.0,"end":2.5,
//!  "allocations":[{"cluster":0,"hosts":[[0,8]]}]}
//! ```
//!
//! `hosts` is a list of `[start, nb]` ranges, mirroring the XML
//! `<hosts start nb/>` elements.

use crate::error::IoError;
use crate::ingest::{self, Record};
use crate::json::{obj, parse, Json};
use jedule_core::{Allocation, HostRange, HostSet, Schedule, Task};

fn field_str<'a>(v: &'a Json, key: &str, line: usize) -> Result<&'a str, IoError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| IoError::format(format!("line {line}: missing string field {key:?}")))
}

fn field_num(v: &Json, key: &str, line: usize) -> Result<f64, IoError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| IoError::format(format!("line {line}: missing numeric field {key:?}")))
}

/// Parses one JSONL line into a [`Record`] (`None` for blank/comment
/// lines). `ln` is the 1-based global line number used in errors.
///
/// The borrowed-slice fast path handles the overwhelmingly common
/// shapes without building a [`Json`] tree (no `BTreeMap`, no per-key
/// `String`); anything it does not fully recognize — escapes, odd
/// nesting, every error case — falls through to the generic parser, so
/// accepted inputs and error messages are identical either way
/// (property-tested below).
fn jsonl_record(raw: &str, ln: usize) -> Result<Option<Record>, IoError> {
    let line = raw.trim();
    // Blank lines, `#` comments and XML-style `<!-- ... -->` banner
    // lines (as emitted by converters) carry no records.
    if line.is_empty() || line.starts_with('#') || crate::is_banner_comment(line) {
        return Ok(None);
    }
    if let Some(rec) = fast::record(line) {
        return Ok(Some(rec));
    }
    generic_record(line, ln).map(Some)
}

/// The tree-building reference parser the fast path defers to.
fn generic_record(line: &str, ln: usize) -> Result<Record, IoError> {
    let v = parse(line)?;
    match field_str(&v, "rec", ln)? {
        "cluster" => {
            let id = field_num(&v, "id", ln)? as u32;
            let hosts = field_num(&v, "hosts", ln)? as u32;
            let name = v
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("cluster-{id}"));
            Ok(Record::Cluster { id, name, hosts })
        }
        "meta" => Ok(Record::Meta {
            key: field_str(&v, "name", ln)?.to_string(),
            value: field_str(&v, "value", ln)?.to_string(),
        }),
        "task" => {
            let mut task = Task::new(
                field_str(&v, "id", ln)?,
                field_str(&v, "type", ln)?,
                field_num(&v, "start", ln)?,
                field_num(&v, "end", ln)?,
            );
            let allocs = v.get("allocations").and_then(Json::as_arr).ok_or_else(|| {
                IoError::format(format!("line {ln}: task needs an allocations array"))
            })?;
            for a in allocs {
                let cluster = field_num(a, "cluster", ln)? as u32;
                let ranges = a.get("hosts").and_then(Json::as_arr).ok_or_else(|| {
                    IoError::format(format!("line {ln}: allocation needs a hosts array"))
                })?;
                let mut hosts = HostSet::new();
                for r in ranges {
                    let pair = r.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        IoError::format(format!("line {ln}: host range must be [start, nb]"))
                    })?;
                    let start = pair[0].as_f64().unwrap_or(-1.0);
                    let nb = pair[1].as_f64().unwrap_or(-1.0);
                    if start < 0.0 || nb < 0.0 {
                        return Err(IoError::format(format!(
                            "line {ln}: negative host range values"
                        )));
                    }
                    hosts.insert_range(HostRange::new(start as u32, nb as u32));
                }
                task.allocations.push(Allocation::new(cluster, hosts));
            }
            if let Some(attrs) = v.get("attrs").and_then(Json::as_obj) {
                for (k, val) in attrs {
                    if let Some(s) = val.as_str() {
                        task.attrs.push((k.clone(), s.to_owned()));
                    }
                }
            }
            Ok(Record::Task(task))
        }
        other => Err(IoError::format(format!(
            "line {ln}: unknown record type {other:?}"
        ))),
    }
}

/// The allocation-lean line parser: scans the JSON object once with
/// borrowed string slices and builds the [`Record`] directly. Returns
/// `None` (→ the caller re-parses generically) for anything outside
/// the recognized subset: string escapes, duplicate known keys,
/// unexpected value shapes, and **every** case the generic path would
/// reject — so error reporting stays byte-identical.
mod fast {
    use super::*;

    pub fn record(line: &str) -> Option<Record> {
        let mut p = Scan {
            b: line.as_bytes(),
            i: 0,
        };
        // Collected fields; `Some` twice for the same key → bail so the
        // generic parser's last-wins semantics decide.
        let mut rec: Option<&str> = None;
        let mut id_str: Option<&str> = None;
        let mut id_num: Option<f64> = None;
        let mut kind: Option<&str> = None;
        let mut name: Option<&str> = None;
        let mut value: Option<&str> = None;
        let mut hosts_num: Option<f64> = None;
        let mut start: Option<f64> = None;
        let mut end: Option<f64> = None;
        let mut allocations: Option<Vec<Allocation>> = None;
        let mut attrs: Vec<(&str, &str)> = Vec::new();
        let mut saw_attrs = false;

        if !p.eat(b'{') {
            return None;
        }
        if !p.eat(b'}') {
            loop {
                let key = p.string()?;
                if !p.eat(b':') {
                    return None;
                }
                match key {
                    "rec" => set(&mut rec, p.string()?)?,
                    "id" => match p.peek()? {
                        b'"' => set(&mut id_str, p.string()?)?,
                        _ => set(&mut id_num, p.number()?)?,
                    },
                    "type" => set(&mut kind, p.string()?)?,
                    "name" => match p.peek()? {
                        b'"' => set(&mut name, p.string()?)?,
                        _ => p.skip_value()?, // non-string: generic treats as absent
                    },
                    "value" => set(&mut value, p.string()?)?,
                    "hosts" => match p.peek()? {
                        b'"' | b'[' | b'{' => p.skip_value()?, // not the cluster count
                        _ => set(&mut hosts_num, p.number()?)?,
                    },
                    "start" => set(&mut start, p.number()?)?,
                    "end" => set(&mut end, p.number()?)?,
                    "allocations" => {
                        if allocations.is_some() {
                            return None;
                        }
                        allocations = Some(p.allocations()?);
                    }
                    "attrs" => {
                        if saw_attrs {
                            return None;
                        }
                        saw_attrs = true;
                        match p.peek()? {
                            b'{' => p.attrs(&mut attrs)?,
                            _ => p.skip_value()?, // non-object: generic ignores it
                        }
                    }
                    _ => p.skip_value()?, // unknown fields are allowed and ignored
                }
                if p.eat(b',') {
                    continue;
                }
                if p.eat(b'}') {
                    break;
                }
                return None;
            }
        }
        p.ws();
        if p.i != p.b.len() {
            return None; // trailing content: generic reports it
        }

        match rec? {
            "cluster" => {
                let id = id_num? as u32;
                Some(Record::Cluster {
                    id,
                    name: name
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("cluster-{id}")),
                    hosts: hosts_num? as u32,
                })
            }
            "meta" => Some(Record::Meta {
                key: name?.to_string(),
                value: value?.to_string(),
            }),
            "task" => {
                let mut task = Task::new(id_str?, kind?, start?, end?);
                task.allocations = allocations?;
                // The generic path reads attrs out of a `BTreeMap`, so
                // they land sorted by key with duplicate keys collapsed
                // last-wins; replicate that exactly.
                attrs.sort_by_key(|&(k, _)| k);
                for (k, v) in attrs {
                    task.attrs.push((k.to_owned(), v.to_owned()));
                }
                Some(Record::Task(task))
            }
            _ => None,
        }
    }

    /// First write wins here — a second sighting of the same key bails
    /// the whole fast path (the generic parser's map semantics apply).
    fn set<T>(slot: &mut Option<T>, v: T) -> Option<()> {
        if slot.is_some() {
            return None;
        }
        *slot = Some(v);
        Some(())
    }

    struct Scan<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> Scan<'a> {
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.i += 1;
            }
        }

        /// Skips whitespace, then consumes `c` if it is next.
        fn eat(&mut self, c: u8) -> bool {
            self.ws();
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                return true;
            }
            false
        }

        fn peek(&mut self) -> Option<u8> {
            self.ws();
            self.b.get(self.i).copied()
        }

        /// A quoted string as a borrowed slice. Bails on escapes and on
        /// raw control characters (the generic parser owns both cases:
        /// unescaping needs an owned buffer, control chars are errors).
        fn string(&mut self) -> Option<&'a str> {
            if !self.eat(b'"') {
                return None;
            }
            let start = self.i;
            loop {
                match self.b.get(self.i)? {
                    b'"' => break,
                    b'\\' => return None,
                    c if *c < 0x20 => return None,
                    _ => self.i += 1,
                }
            }
            let s = &self.b[start..self.i];
            self.i += 1;
            // The line came in as &str, so any slice between ASCII
            // quotes is still valid UTF-8.
            std::str::from_utf8(s).ok()
        }

        /// A number, with the same accepted grammar and `f64` parse as
        /// the generic parser.
        fn number(&mut self) -> Option<f64> {
            self.ws();
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.b.get(self.i) == Some(&b'.') {
                self.i += 1;
                while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()?
                .parse()
                .ok()
        }

        /// `[{"cluster":n,"hosts":[[a,b],...]}, ...]` with unknown keys
        /// skipped. Bails on every malformed shape the generic parser
        /// rejects (missing fields, non-pair ranges, negative values).
        fn allocations(&mut self) -> Option<Vec<Allocation>> {
            if !self.eat(b'[') {
                return None;
            }
            let mut out = Vec::new();
            if self.eat(b']') {
                return Some(out);
            }
            loop {
                if !self.eat(b'{') {
                    return None;
                }
                let mut cluster: Option<f64> = None;
                let mut hosts: Option<HostSet> = None;
                if !self.eat(b'}') {
                    loop {
                        let key = self.string()?;
                        if !self.eat(b':') {
                            return None;
                        }
                        match key {
                            "cluster" => set(&mut cluster, self.number()?)?,
                            "hosts" => {
                                if hosts.is_some() {
                                    return None;
                                }
                                hosts = Some(self.host_ranges()?);
                            }
                            _ => self.skip_value()?,
                        }
                        if self.eat(b',') {
                            continue;
                        }
                        if self.eat(b'}') {
                            break;
                        }
                        return None;
                    }
                }
                out.push(Allocation::new(cluster? as u32, hosts?));
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b']') {
                    return Some(out);
                }
                return None;
            }
        }

        /// `[[start, nb], ...]` into a [`HostSet`], bailing on negative
        /// values and on anything but two-number pairs.
        fn host_ranges(&mut self) -> Option<HostSet> {
            if !self.eat(b'[') {
                return None;
            }
            let mut hosts = HostSet::new();
            if self.eat(b']') {
                return Some(hosts);
            }
            loop {
                if !self.eat(b'[') {
                    return None;
                }
                let start = self.number()?;
                if !self.eat(b',') {
                    return None;
                }
                let nb = self.number()?;
                if !self.eat(b']') {
                    return None;
                }
                if start < 0.0 || nb < 0.0 {
                    return None;
                }
                hosts.insert_range(HostRange::new(start as u32, nb as u32));
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b']') {
                    return Some(hosts);
                }
                return None;
            }
        }

        /// `{"k":"v", ...}`; string values collect (duplicate keys
        /// last-wins like a map insert), other values are skipped just
        /// like the generic path ignores them.
        fn attrs(&mut self, out: &mut Vec<(&'a str, &'a str)>) -> Option<()> {
            if !self.eat(b'{') {
                return None;
            }
            if self.eat(b'}') {
                return Some(());
            }
            loop {
                let key = self.string()?;
                if !self.eat(b':') {
                    return None;
                }
                if self.peek()? == b'"' {
                    let val = self.string()?;
                    match out.iter_mut().find(|(k, _)| *k == key) {
                        Some(slot) => slot.1 = val,
                        None => out.push((key, val)),
                    }
                } else {
                    self.skip_value()?;
                }
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b'}') {
                    return Some(());
                }
                return None;
            }
        }

        /// Skips one value of the recognized subset; bails on anything
        /// the generic parser might still reject (escaped strings, bad
        /// literals) so validation always happens somewhere.
        fn skip_value(&mut self) -> Option<()> {
            match self.peek()? {
                b'"' => self.string().map(|_| ()),
                b'[' => {
                    self.i += 1;
                    if self.eat(b']') {
                        return Some(());
                    }
                    loop {
                        self.skip_value()?;
                        if self.eat(b',') {
                            continue;
                        }
                        if self.eat(b']') {
                            return Some(());
                        }
                        return None;
                    }
                }
                b'{' => {
                    self.i += 1;
                    if self.eat(b'}') {
                        return Some(());
                    }
                    loop {
                        self.string()?;
                        if !self.eat(b':') {
                            return None;
                        }
                        self.skip_value()?;
                        if self.eat(b',') {
                            continue;
                        }
                        if self.eat(b'}') {
                            return Some(());
                        }
                        return None;
                    }
                }
                b't' => self.lit(b"true"),
                b'f' => self.lit(b"false"),
                b'n' => self.lit(b"null"),
                _ => self.number().map(|_| ()),
            }
        }

        fn lit(&mut self, s: &[u8]) -> Option<()> {
            if self.b[self.i..].starts_with(s) {
                self.i += s.len();
                return Some(());
            }
            None
        }
    }
}

/// Reads a schedule from JSON-lines text.
pub fn read_schedule_jsonl(src: &str) -> Result<Schedule, IoError> {
    ingest::read_lines(src, 1, jsonl_record)
}

/// Parallel [`read_schedule_jsonl`]: chunked line-parallel ingest with
/// the workspace `threads` knob (`0` auto, `1` sequential, `n` workers).
/// Result and error reporting are identical to the sequential reader —
/// see the `ingest` module for why.
pub fn read_schedule_jsonl_parallel(src: &str, threads: usize) -> Result<Schedule, IoError> {
    ingest::read_lines(src, threads, jsonl_record)
}

/// Writes a schedule as JSON-lines text.
pub fn write_schedule_jsonl(schedule: &Schedule) -> String {
    let mut out = String::new();
    for c in &schedule.clusters {
        out.push_str(
            &obj([
                ("rec", Json::Str("cluster".into())),
                ("id", Json::Num(f64::from(c.id))),
                ("name", Json::Str(c.name.clone())),
                ("hosts", Json::Num(f64::from(c.hosts))),
            ])
            .to_string_compact(),
        );
        out.push('\n');
    }
    for (k, v) in schedule.meta.iter() {
        out.push_str(
            &obj([
                ("rec", Json::Str("meta".into())),
                ("name", Json::Str(k.into())),
                ("value", Json::Str(v.into())),
            ])
            .to_string_compact(),
        );
        out.push('\n');
    }
    for t in &schedule.tasks {
        let allocs: Vec<Json> = t
            .allocations
            .iter()
            .map(|a| {
                let ranges: Vec<Json> = a
                    .hosts
                    .ranges()
                    .iter()
                    .map(|r| {
                        Json::Arr(vec![
                            Json::Num(f64::from(r.start)),
                            Json::Num(f64::from(r.nb)),
                        ])
                    })
                    .collect();
                obj([
                    ("cluster", Json::Num(f64::from(a.cluster))),
                    ("hosts", Json::Arr(ranges)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("rec", Json::Str("task".into())),
            ("id", Json::Str(t.id.clone())),
            ("type", Json::Str(t.kind.clone())),
            ("start", Json::Num(t.start)),
            ("end", Json::Num(t.end)),
            ("allocations", Json::Arr(allocs)),
        ];
        if !t.attrs.is_empty() {
            fields.push((
                "attrs",
                Json::Obj(
                    t.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        out.push_str(&obj(fields).to_string_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_core::ScheduleBuilder;

    fn sample() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 8)
            .meta("alg", "mcpa")
            .task(
                Task::new("a", "computation", 0.0, 1.5)
                    .on(Allocation::contiguous(0, 0, 4))
                    .with_attr("level", "2"),
            )
            .task(
                Task::new("b", "transfer", 1.5, 2.0)
                    .on(Allocation::new(0, HostSet::from_hosts([0, 2, 5]))),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let text = write_schedule_jsonl(&s);
        assert_eq!(read_schedule_jsonl(&text).unwrap(), s);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let s = sample();
        let text = format!("# header\n\n{}", write_schedule_jsonl(&s));
        assert_eq!(read_schedule_jsonl(&text).unwrap(), s);
    }

    #[test]
    fn missing_fields_report_line() {
        let err = read_schedule_jsonl("{\"rec\":\"cluster\",\"id\":0}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn unknown_record_rejected() {
        assert!(read_schedule_jsonl("{\"rec\":\"frob\"}\n").is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let text = format!("# banner\n\n{}", write_schedule_jsonl(&sample()));
        let seq = read_schedule_jsonl(&text).unwrap();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                read_schedule_jsonl_parallel(&text, threads).unwrap(),
                seq,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_error_line_is_global() {
        let mut src = String::from("{\"rec\":\"cluster\",\"id\":0,\"hosts\":4}\n");
        for i in 0..30 {
            src.push_str(&format!(
                "{{\"rec\":\"task\",\"id\":\"t{i}\",\"type\":\"x\",\"start\":0,\"end\":1,\"allocations\":[{{\"cluster\":0,\"hosts\":[[0,2]]}}]}}\n"
            ));
        }
        src.push_str("{\"rec\":\"frob\"}\n");
        for threads in [2usize, 6] {
            let err = read_schedule_jsonl_parallel(&src, threads).unwrap_err();
            assert!(err.to_string().contains("line 32"), "{err}");
        }
    }

    #[test]
    fn negative_host_range_rejected() {
        let line = r#"{"rec":"cluster","id":0,"hosts":4}
{"rec":"task","id":"t","type":"x","start":0,"end":1,"allocations":[{"cluster":0,"hosts":[[-1,2]]}]}"#;
        assert!(read_schedule_jsonl(line).is_err());
    }

    /// Every line our writer emits takes the fast path, and the record
    /// it yields equals the generic parser's.
    #[test]
    fn fast_path_covers_writer_output_and_matches_generic() {
        for line in write_schedule_jsonl(&sample()).lines() {
            let f = fast::record(line).expect("writer output takes the fast path");
            assert_eq!(f, generic_record(line, 1).unwrap(), "{line}");
        }
    }

    /// Shapes the fast path must either bail on (→ `None`, generic
    /// decides) or parse exactly like the generic path: escapes,
    /// unknown/reordered fields, duplicate keys, nested junk, non-map
    /// attrs, missing names.
    #[test]
    fn fast_path_agrees_with_generic_on_edge_lines() {
        let lines = [
            // Escaped strings force the generic path.
            r#"{"rec":"task","id":"a\nb","type":"x","start":0,"end":1,"allocations":[]}"#,
            // Unknown fields of every shape are skipped.
            r#"{"rec":"cluster","id":1,"hosts":4,"extra":[1,{"k":null},true],"note":"hi"}"#,
            // Field order permuted; name after id.
            r#"{"hosts":2,"name":"n0","rec":"cluster","id":7}"#,
            // Missing cluster name falls back to the default.
            r#"{"rec":"cluster","id":3,"hosts":1}"#,
            // Non-string name: generic ignores it, default applies.
            r#"{"rec":"cluster","id":3,"hosts":1,"name":5}"#,
            // Attrs sorted by key, duplicates last-wins, non-strings skipped.
            r#"{"rec":"task","id":"t","type":"x","start":0,"end":1,"allocations":[],"attrs":{"z":"1","a":"2","z":"3","n":7}}"#,
            // Attrs not an object: ignored entirely.
            r#"{"rec":"task","id":"t","type":"x","start":0,"end":1,"allocations":[],"attrs":[1]}"#,
            // Allocation objects with extra keys; multiple ranges.
            r#"{"rec":"task","id":"t","type":"x","start":0.5,"end":1.5e1,"allocations":[{"cluster":2,"hosts":[[0,2],[5,1]],"why":"because"}]}"#,
            // Meta record.
            r#"{"rec":"meta","name":"alg","value":"cpa"}"#,
            // Whitespace everywhere.
            r#" { "rec" : "cluster" , "id" : 0 , "hosts" : 8 } "#,
        ];
        for line in lines {
            let generic = generic_record(line, 1).unwrap();
            if let Some(f) = fast::record(line) {
                assert_eq!(f, generic, "{line}");
            }
        }
    }

    /// Error lines must never be *accepted* by the fast path: whatever
    /// the generic parser rejects, the fast path bails on (or was never
    /// asked about), so the error surface is exactly the generic one.
    #[test]
    fn fast_path_never_accepts_generic_errors() {
        let bad = [
            r#"{"rec":"cluster","id":0}"#,
            r#"{"rec":"meta","name":"x"}"#,
            r#"{"rec":"task","id":"t","type":"x","start":0,"end":1}"#,
            r#"{"rec":"task","id":"t","type":"x","start":0,"end":1,"allocations":[{"cluster":0,"hosts":[[-1,2]]}]}"#,
            r#"{"rec":"task","id":"t","type":"x","start":0,"end":1,"allocations":[{"cluster":0,"hosts":[[1]]}]}"#,
            r#"{"rec":"frob"}"#,
            r#"{"rec":"task","id":"t","type":"x","start":"late","end":1,"allocations":[]}"#,
            r#"{"rec":"cluster","id":0,"hosts":4} trailing"#,
            r#"{"rec":"cluster","id":0,"hosts":4,"x":nulL}"#,
        ];
        for line in bad {
            assert!(generic_record(line, 1).is_err(), "{line}");
            assert!(fast::record(line).is_none(), "{line}");
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// A JSONL-ish line generator biased toward near-valid records:
        /// random record types with random key/value pairs (including
        /// duplicates, wrong types, allocations/attrs bodies and junk),
        /// so the two parsers meet on valid, bail-worthy and invalid
        /// lines alike.
        fn arb_line() -> BoxedStrategy<String> {
            let key = prop_oneof![
                Just("id"),
                Just("type"),
                Just("name"),
                Just("value"),
                Just("hosts"),
                Just("start"),
                Just("end"),
                Just("junk"),
                Just("allocations"),
                Just("attrs"),
            ];
            let val = prop_oneof![
                proptest::string::string_regex("\"[a-z ]{0,6}\"").expect("valid regex"),
                proptest::string::string_regex("-?[0-9]{1,3}").expect("valid regex"),
                proptest::string::string_regex("[0-9]\\.[0-9]e[0-9]").expect("valid regex"),
                Just("null".to_string()),
                Just("true".to_string()),
                Just("[]".to_string()),
                Just("[[0,2]]".to_string()),
                Just("[{\"cluster\":0,\"hosts\":[[0,2]]}]".to_string()),
                Just("[{\"cluster\":1,\"hosts\":[[1,3],[5,1]],\"x\":9}]".to_string()),
                Just("{\"b\":\"y\",\"a\":\"x\",\"n\":3}".to_string()),
            ];
            let rec = prop_oneof![Just("task"), Just("cluster"), Just("meta"), Just("x")];
            (rec, proptest::collection::vec((key, val), 0..6))
                .prop_map(|(rec, fields)| {
                    let mut s = format!("{{\"rec\":\"{rec}\"");
                    for (k, v) in fields {
                        s.push_str(&format!(",\"{k}\":{v}"));
                    }
                    s.push('}');
                    s
                })
                .boxed()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn fast_agrees_with_generic(line in arb_line()) {
                match (fast::record(&line), generic_record(&line, 1)) {
                    (Some(f), Ok(g)) => prop_assert_eq!(f, g, "{}", line),
                    (Some(f), Err(e)) => {
                        panic!("fast accepted {line:?} as {f:?}, generic errors: {e}");
                    }
                    (None, _) => {} // fast bailed: generic is authoritative
                }
            }

            #[test]
            fn fast_never_panics(garbage in proptest::string::string_regex(".{0,120}").unwrap()) {
                let _ = fast::record(&garbage);
            }
        }
    }
}
