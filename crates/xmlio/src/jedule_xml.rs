//! The Jedule schedule XML format (paper, Fig. 1 and §II-C).
//!
//! Document layout:
//!
//! ```xml
//! <jedule version="0.2">
//!   <jedule_meta>
//!     <info name="alg" value="cpa"/>
//!   </jedule_meta>
//!   <platform>
//!     <cluster id="0" name="cluster-0" hosts="8"/>
//!   </platform>
//!   <node_infos>
//!     <node_statistics>
//!       <node_property name="id" value="1"/>
//!       <node_property name="type" value="computation"/>
//!       <node_property name="start_time" value="0.000"/>
//!       <node_property name="end_time" value="0.310"/>
//!       <configuration>
//!         <conf_property name="cluster_id" value="0"/>
//!         <conf_property name="host_nb" value="8"/>
//!         <host_lists>
//!           <hosts start="0" nb="8"/>
//!         </host_lists>
//!       </configuration>
//!     </node_statistics>
//!   </node_infos>
//! </jedule>
//! ```
//!
//! A `<node_statistics>` may carry several `<configuration>` entries — e.g.
//! a communication between clusters (paper, Fig. 1 caption) — and
//! additional `<node_property>` entries are preserved as task attributes.
//! A `<meta_info>`/`<meta .../>` block (paper, §II-C2) is accepted as an
//! alias for `<jedule_meta>`.

use crate::error::IoError;
use crate::xml::{self, Element};
use jedule_core::{Allocation, HostRange, HostSet, Schedule, ScheduleBuilder, Task};
use std::path::Path;

const KNOWN_PROPS: [&str; 4] = ["id", "type", "start_time", "end_time"];

fn parse_f64(field: &str, v: &str) -> Result<f64, IoError> {
    v.trim()
        .parse::<f64>()
        .map_err(|_| IoError::number(field, v))
}

fn parse_u32(field: &str, v: &str) -> Result<u32, IoError> {
    v.trim()
        .parse::<u32>()
        .map_err(|_| IoError::number(field, v))
}

/// Reads a schedule from Jedule XML text.
pub fn read_schedule(src: &str) -> Result<Schedule, IoError> {
    let root = xml::parse(src)?;
    if root.name != "jedule" {
        return Err(IoError::format(format!(
            "expected <jedule> root element, found <{}>",
            root.name
        )));
    }
    let mut b = ScheduleBuilder::new();

    // Meta information: <jedule_meta><info .../> or <meta_info><meta .../>.
    for meta_el in root
        .find_all("jedule_meta")
        .chain(root.find_all("meta_info"))
    {
        for info in meta_el.elements() {
            if info.name == "info" || info.name == "meta" {
                b = b.meta(info.require_attr("name")?, info.require_attr("value")?);
            }
        }
    }

    // Platform header: at least one cluster is required (paper, §II-C1).
    let platform = root
        .find("platform")
        .ok_or_else(|| IoError::format("missing <platform> header"))?;
    let mut n_clusters = 0u32;
    for c in platform.find_all("cluster") {
        let id = parse_u32("cluster id", c.require_attr("id")?)?;
        let hosts = parse_u32("cluster hosts", c.require_attr("hosts")?)?;
        let name = c
            .get_attr("name")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("cluster-{id}"));
        b = b.cluster(id, name, hosts);
        n_clusters += 1;
    }
    if n_clusters == 0 {
        return Err(IoError::format(
            "a schedule requires at least one <cluster>",
        ));
    }

    // Tasks.
    if let Some(infos) = root.find("node_infos") {
        for node in infos.find_all("node_statistics") {
            b = b.task(read_task(node)?);
        }
    }

    Ok(b.build()?)
}

fn read_task(node: &Element) -> Result<Task, IoError> {
    let mut id: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut start: Option<f64> = None;
    let mut end: Option<f64> = None;
    let mut attrs: Vec<(String, String)> = Vec::new();

    for p in node.find_all("node_property") {
        let name = p.require_attr("name")?;
        let value = p.require_attr("value")?;
        match name {
            "id" => id = Some(value.to_owned()),
            "type" => kind = Some(value.to_owned()),
            "start_time" => start = Some(parse_f64("start_time", value)?),
            "end_time" => end = Some(parse_f64("end_time", value)?),
            _ => attrs.push((name.to_owned(), value.to_owned())),
        }
    }

    let id = id.ok_or_else(|| IoError::format("<node_statistics> without id property"))?;
    let missing = |what: &str| IoError::format(format!("task {id:?} is missing {what}"));
    let mut task = Task::new(
        id.clone(),
        kind.ok_or_else(|| missing("a type property"))?,
        start.ok_or_else(|| missing("a start_time property"))?,
        end.ok_or_else(|| missing("an end_time property"))?,
    );
    task.attrs = attrs;

    for conf in node.find_all("configuration") {
        let mut cluster: Option<u32> = None;
        let mut host_nb: Option<u32> = None;
        for p in conf.find_all("conf_property") {
            let name = p.require_attr("name")?;
            let value = p.require_attr("value")?;
            match name {
                "cluster_id" => cluster = Some(parse_u32("cluster_id", value)?),
                "host_nb" => host_nb = Some(parse_u32("host_nb", value)?),
                _ => {}
            }
        }
        let cluster = cluster.ok_or_else(|| {
            IoError::format(format!("task {id:?}: configuration without cluster_id"))
        })?;
        let mut hosts = HostSet::new();
        if let Some(hl) = conf.find("host_lists") {
            for h in hl.find_all("hosts") {
                let s = parse_u32("hosts start", h.require_attr("start")?)?;
                let nb = parse_u32("hosts nb", h.require_attr("nb")?)?;
                hosts.insert_range(HostRange::new(s, nb));
            }
        }
        // Sanity check mentioned in the paper's introduction: the number of
        // requested (host_nb) and assigned processors must agree.
        if let Some(nb) = host_nb {
            if hosts.count() != nb {
                return Err(IoError::format(format!(
                    "task {id:?}: host_nb={nb} but host list contains {} hosts",
                    hosts.count()
                )));
            }
        }
        task.allocations.push(Allocation::new(cluster, hosts));
    }

    Ok(task)
}

/// Serializes a schedule to Jedule XML.
pub fn write_schedule_string(schedule: &Schedule) -> String {
    let mut root = Element::new("jedule").attr("version", "0.2");

    if !schedule.meta.is_empty() {
        let mut meta = Element::new("jedule_meta");
        for (k, v) in schedule.meta.iter() {
            meta = meta.child(Element::new("info").attr("name", k).attr("value", v));
        }
        root = root.child(meta);
    }

    let mut platform = Element::new("platform");
    for c in &schedule.clusters {
        platform = platform.child(
            Element::new("cluster")
                .attr("id", c.id.to_string())
                .attr("name", &c.name)
                .attr("hosts", c.hosts.to_string()),
        );
    }
    root = root.child(platform);

    let mut infos = Element::new("node_infos");
    for t in &schedule.tasks {
        let mut node = Element::new("node_statistics")
            .child(prop("id", &t.id))
            .child(prop("type", &t.kind))
            .child(prop("start_time", &format_time(t.start)))
            .child(prop("end_time", &format_time(t.end)));
        for (k, v) in &t.attrs {
            if !KNOWN_PROPS.contains(&k.as_str()) {
                node = node.child(prop(k, v));
            }
        }
        for a in &t.allocations {
            let mut conf = Element::new("configuration")
                .child(conf_prop("cluster_id", &a.cluster.to_string()))
                .child(conf_prop("host_nb", &a.hosts.count().to_string()));
            let mut hl = Element::new("host_lists");
            for r in a.hosts.ranges() {
                hl = hl.child(
                    Element::new("hosts")
                        .attr("start", r.start.to_string())
                        .attr("nb", r.nb.to_string()),
                );
            }
            conf = conf.child(hl);
            node = node.child(conf);
        }
        infos = infos.child(node);
    }
    root = root.child(infos);

    xml::write_document(&root)
}

fn format_time(t: f64) -> String {
    // Shortest representation that round-trips exactly.
    let mut s = format!("{t}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

fn prop(name: &str, value: &str) -> Element {
    Element::new("node_property")
        .attr("name", name)
        .attr("value", value)
}

fn conf_prop(name: &str, value: &str) -> Element {
    Element::new("conf_property")
        .attr("name", name)
        .attr("value", value)
}

/// Writes a schedule to a file.
pub fn write_schedule(schedule: &Schedule, path: impl AsRef<Path>) -> Result<(), IoError> {
    std::fs::write(path, write_schedule_string(schedule))?;
    Ok(())
}

/// Reads a schedule from a file.
pub fn read_schedule_file(path: impl AsRef<Path>) -> Result<Schedule, IoError> {
    let src = std::fs::read_to_string(path)?;
    read_schedule(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jedule_core::ScheduleBuilder;

    fn sample() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 8)
            .cluster(1, "c1", 4)
            .meta("mindelta", "-2")
            .meta("sort", "comm")
            .task(Task::new("1", "computation", 0.0, 0.31).on(Allocation::contiguous(0, 0, 8)))
            .task(
                Task::new("2", "transfer", 0.31, 0.5)
                    .on(Allocation::new(0, HostSet::from_hosts([1, 3, 5])))
                    .on(Allocation::contiguous(1, 0, 2))
                    .with_attr("note", "inter-cluster"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_schedule() {
        let s = sample();
        let text = write_schedule_string(&s);
        let back = read_schedule(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn fig1_document_parses() {
        let src = r#"<jedule>
  <platform><cluster id="0" hosts="8"/></platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.000"/>
      <node_property name="end_time" value="0.310"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="8"/>
        <host_lists>
          <hosts start="0" nb="8"/>
        </host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>"#;
        let s = read_schedule(src).unwrap();
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.tasks.len(), 1);
        let t = &s.tasks[0];
        assert_eq!(t.id, "1");
        assert_eq!(t.kind, "computation");
        assert_eq!(t.start, 0.0);
        assert!((t.end - 0.31).abs() < 1e-12);
        assert_eq!(t.resource_count(), 8);
    }

    #[test]
    fn meta_info_alias_accepted() {
        let src = r#"<jedule>
  <meta_info>
    <meta name="mindelta" value="-2"/>
    <meta name="maxdelta" value="2"/>
    <meta name="sort" value="comm"/>
  </meta_info>
  <platform><cluster id="0" hosts="1"/></platform>
</jedule>"#;
        let s = read_schedule(src).unwrap();
        assert_eq!(s.meta.get("mindelta"), Some("-2"));
        assert_eq!(s.meta.get("maxdelta"), Some("2"));
        assert_eq!(s.meta.get("sort"), Some("comm"));
    }

    #[test]
    fn host_nb_mismatch_rejected() {
        let src = r#"<jedule>
  <platform><cluster id="0" hosts="8"/></platform>
  <node_infos><node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="t"/>
      <node_property name="start_time" value="0"/>
      <node_property name="end_time" value="1"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="4"/>
        <host_lists><hosts start="0" nb="8"/></host_lists>
      </configuration>
  </node_statistics></node_infos>
</jedule>"#;
        let err = read_schedule(src).unwrap_err();
        assert!(err.to_string().contains("host_nb"), "{err}");
    }

    #[test]
    fn missing_platform_rejected() {
        assert!(read_schedule("<jedule/>").is_err());
        assert!(read_schedule("<jedule><platform/></jedule>").is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        let err = read_schedule("<schedule/>").unwrap_err();
        assert!(err.to_string().contains("jedule"));
    }

    #[test]
    fn out_of_range_host_rejected_semantically() {
        let src = r#"<jedule>
  <platform><cluster id="0" hosts="4"/></platform>
  <node_infos><node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="t"/>
      <node_property name="start_time" value="0"/>
      <node_property name="end_time" value="1"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <host_lists><hosts start="2" nb="8"/></host_lists>
      </configuration>
  </node_statistics></node_infos>
</jedule>"#;
        assert!(matches!(read_schedule(src), Err(IoError::Core(_))));
    }

    #[test]
    fn extra_properties_preserved() {
        let s = sample();
        let back = read_schedule(&write_schedule_string(&s)).unwrap();
        let t = back.task_by_id("2").unwrap();
        assert_eq!(
            t.attrs,
            vec![("note".to_string(), "inter-cluster".to_string())]
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("jedule_xml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.jed");
        let s = sample();
        write_schedule(&s, &path).unwrap();
        assert_eq!(read_schedule_file(&path).unwrap(), s);
    }

    #[test]
    fn time_format_roundtrips_exactly() {
        for t in [0.0, 0.31, 140.9, 1e-9, 12345.6789, 3.0] {
            let s: f64 = format_time(t).parse().unwrap();
            assert_eq!(s, t);
        }
    }
}
