//! Shared driver for the line-oriented readers (CSV, JSON lines), with a
//! sequential and a parallel chunked mode behind one entry point.
//!
//! Both formats are "one record per line": each line independently parses
//! to a [`Record`] (or to nothing, for blanks/comments), and the schedule
//! is the in-order application of the records to a `ScheduleBuilder`.
//! That makes them trivially chunkable — split the document at line
//! boundaries ([`jedule_core::line_chunks`]), parse chunks concurrently,
//! splice the record lists back in chunk order. Because application order
//! is preserved and every worker knows its chunk's global first line
//! number, the result (schedule, error, and error line number alike) is
//! identical to a sequential scan.

use crate::error::IoError;
use jedule_core::{effective_threads, line_chunks, obs, Schedule, ScheduleBuilder, Task};

/// One parsed line of a line-oriented schedule document.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    Cluster { id: u32, name: String, hosts: u32 },
    Meta { key: String, value: String },
    Task(Task),
}

fn apply(b: ScheduleBuilder, rec: Record) -> ScheduleBuilder {
    match rec {
        Record::Cluster { id, name, hosts } => b.cluster(id, name, hosts),
        Record::Meta { key, value } => b.meta(key, value),
        Record::Task(t) => b.task(t),
    }
}

/// Below this size auto mode (`threads == 0`) stays sequential — the
/// spawn/splice overhead would outweigh the win. An explicit `threads ≥ 2`
/// always chunks, keeping the parallel path testable on tiny documents.
const PARALLEL_MIN_BYTES: usize = 1 << 20;

/// Parses a line-oriented document by applying `parse_line(raw, ln)` to
/// every line (1-based global `ln`) and building the schedule from the
/// yielded records in document order.
///
/// `threads` follows the workspace knob convention: `0` = auto (all
/// cores, sequential for small inputs), `1` = strictly sequential, `n` =
/// exactly `n` workers. Every mode produces the same schedule, and a bad
/// line is reported with the same global line number in every mode: the
/// workers stop at their chunk's first error and chunks are spliced in
/// line order, so the first error seen is the sequential one.
pub(crate) fn read_lines<F>(src: &str, threads: usize, parse_line: F) -> Result<Schedule, IoError>
where
    F: Fn(&str, usize) -> Result<Option<Record>, IoError> + Sync,
{
    let workers = effective_threads(threads);
    if workers <= 1 || (threads == 0 && src.len() < PARALLEL_MIN_BYTES) {
        let mut b = ScheduleBuilder::new();
        for (i, raw) in src.lines().enumerate() {
            if let Some(rec) = parse_line(raw, i + 1)? {
                b = apply(b, rec);
            }
        }
        return Ok(b.build()?);
    }

    let chunks = line_chunks(src, workers);
    // Worker threads don't inherit the parent's collector; hand each one
    // a handle so per-chunk spans land in the same trace (no-op when
    // observability is disabled).
    let obs_handle = obs::handle();
    let parts = crossbeam::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let parse_line = &parse_line;
                let (text, first_line) = (c.text, c.first_line);
                let obs_handle = obs_handle.clone();
                s.spawn(move |_| -> Result<Vec<Record>, IoError> {
                    let _att = obs_handle.attach();
                    let _sp = obs::span_with("ingest.chunk", || {
                        format!("chunk {ci} @ line {first_line}")
                    });
                    let mut recs = Vec::new();
                    for (off, raw) in text.lines().enumerate() {
                        if let Some(rec) = parse_line(raw, first_line + off)? {
                            recs.push(rec);
                        }
                    }
                    Ok(recs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("ingest scope failed");

    let mut b = ScheduleBuilder::new();
    {
        let _sp = obs::span("ingest.splice");
        for part in parts {
            for rec in part? {
                b = apply(b, rec);
            }
        }
    }
    Ok(b.build()?)
}
