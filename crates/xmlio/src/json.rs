//! A minimal JSON parser and writer.
//!
//! Used by the JSON-lines schedule format (`jsonl`) and by the CLI's stats
//! output. Supports the full JSON grammar except that numbers are always
//! represented as `f64`.

use crate::error::{IoError, Pos};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Serializes compactly.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds an object from pairs.
pub fn obj<I, S>(pairs: I) -> Json
where
    I: IntoIterator<Item = (S, Json)>,
    S: Into<String>,
{
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Parses a JSON document.
pub fn parse(src: &str) -> Result<Json, IoError> {
    let mut p = P {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i < p.b.len() {
        return Err(IoError::xml("trailing JSON content", p.pos()));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> P<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, IoError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(v)
        } else {
            Err(IoError::xml(format!("expected {s}"), self.pos()))
        }
    }

    fn value(&mut self) -> Result<Json, IoError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(IoError::xml("expected a JSON value", self.pos())),
        }
    }

    fn array(&mut self) -> Result<Json, IoError> {
        self.bump(); // [
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(out)),
                _ => return Err(IoError::xml("expected ',' or ']'", self.pos())),
            }
        }
    }

    fn object(&mut self) -> Result<Json, IoError> {
        self.bump(); // {
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            if self.peek() != Some(b'"') {
                return Err(IoError::xml("expected object key string", self.pos()));
            }
            let k = self.string()?;
            self.ws();
            if self.bump() != Some(b':') {
                return Err(IoError::xml("expected ':'", self.pos()));
            }
            self.ws();
            let v = self.value()?;
            out.insert(k, v);
            self.ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(out)),
                _ => return Err(IoError::xml("expected ',' or '}'", self.pos())),
            }
        }
    }

    fn string(&mut self) -> Result<String, IoError> {
        let at = self.pos();
        self.bump(); // "
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(IoError::xml("unterminated string", at)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| IoError::xml("bad \\u escape", at))?;
                            v = v * 16 + d;
                        }
                        // Surrogate pairs.
                        if (0xd800..0xdc00).contains(&v) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(IoError::xml("lone high surrogate", at));
                            }
                            let mut lo = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .bump()
                                    .and_then(|c| (c as char).to_digit(16))
                                    .ok_or_else(|| IoError::xml("bad \\u escape", at))?;
                                lo = lo * 16 + d;
                            }
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(IoError::xml("invalid low surrogate", at));
                            }
                            v = 0x10000 + ((v - 0xd800) << 10) + (lo - 0xdc00);
                        }
                        out.push(
                            char::from_u32(v)
                                .ok_or_else(|| IoError::xml("invalid code point", at))?,
                        );
                    }
                    _ => return Err(IoError::xml("bad escape", at)),
                },
                Some(c) if c < 0x20 => {
                    return Err(IoError::xml("raw control character in string", at))
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = if c >= 0xf0 {
                            4
                        } else if c >= 0xe0 {
                            3
                        } else {
                            2
                        };
                        let start = self.i - 1;
                        for _ in 1..len {
                            self.bump();
                        }
                        let s = std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| IoError::xml("invalid UTF-8", at))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, IoError> {
        let at = self.pos();
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        txt.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| IoError::xml(format!("bad number {txt:?}"), at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\nb\t\"c\"A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\nb\t\"c\"A😀");
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"héllo wörld ✓\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo wörld ✓");
    }

    #[test]
    fn roundtrip() {
        let src = r#"{"arr":[1,2.5,"x"],"nested":{"t":true},"z":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{a:1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn obj_builder() {
        let v = obj([("x", Json::Num(1.0)), ("y", Json::Str("s".into()))]);
        assert_eq!(v.to_string_compact(), r#"{"x":1,"y":"s"}"#);
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }
}
