//! The color-map XML format (paper, Fig. 2).
//!
//! ```xml
//! <cmap name="standard_map">
//!   <conf name="min_fontsize_label" value="11"/>
//!   <conf name="fontsize_label" value="13"/>
//!   <conf name="fontsize_axes" value="12"/>
//!   <task id="computation">
//!     <color type="fg" rgb="FFFFFF"/>
//!     <color type="bg" rgb="0000FF"/>
//!   </task>
//!   <composite>
//!     <task id="computation"/>
//!     <task id="transfer"/>
//!     <color type="fg" rgb="FFFFFF"/>
//!     <color type="bg" rgb="ff6200"/>
//!   </composite>
//! </cmap>
//! ```

use crate::error::IoError;
use crate::xml::{self, Element};
use jedule_core::{Color, ColorMap, ColorPair};
use std::path::Path;

/// Reads a color map from XML text.
pub fn read_colormap(src: &str) -> Result<ColorMap, IoError> {
    let root = xml::parse(src)?;
    if root.name != "cmap" {
        return Err(IoError::format(format!(
            "expected <cmap> root element, found <{}>",
            root.name
        )));
    }
    let name = root.get_attr("name").unwrap_or("unnamed");
    let mut map = ColorMap::new(name);

    for conf in root.find_all("conf") {
        let cname = conf.require_attr("name")?;
        let value = conf.require_attr("value")?;
        let v: f64 = value
            .trim()
            .parse()
            .map_err(|_| IoError::number(cname, value))?;
        match cname {
            "min_fontsize_label" => map.config.min_font_size_label = v,
            "fontsize_label" => map.config.font_size_label = v,
            "fontsize_axes" => map.config.font_size_axes = v,
            _ => {} // unknown drawing knobs are ignored, like the original
        }
    }

    for el in root.elements() {
        match el.name.as_str() {
            "task" => {
                let id = el.require_attr("id")?;
                map.set(id, read_colors(el, id)?);
            }
            "composite" => {
                let types: Vec<String> = el
                    .find_all("task")
                    .map(|t| t.require_attr("id").map(str::to_owned))
                    .collect::<Result<_, _>>()?;
                if types.is_empty() {
                    return Err(IoError::format("<composite> without <task> members"));
                }
                map.add_composite(types, read_colors(el, "composite")?);
            }
            _ => {}
        }
    }

    Ok(map)
}

/// Extracts the fg/bg `<color>` pair of an element.
fn read_colors(el: &Element, what: &str) -> Result<ColorPair, IoError> {
    let mut fg: Option<Color> = None;
    let mut bg: Option<Color> = None;
    for c in el.find_all("color") {
        let ty = c.require_attr("type")?;
        let rgb = c.require_attr("rgb")?;
        let color = Color::parse(rgb)?;
        match ty {
            "fg" => fg = Some(color),
            "bg" => bg = Some(color),
            other => {
                return Err(IoError::format(format!(
                    "unknown color type {other:?} in {what} (expected fg or bg)"
                )))
            }
        }
    }
    let bg = bg.ok_or_else(|| IoError::format(format!("{what}: missing bg color")))?;
    Ok(ColorPair {
        fg: fg.unwrap_or_else(|| bg.contrasting_fg()),
        bg,
    })
}

/// Serializes a color map to XML.
pub fn write_colormap_string(map: &ColorMap) -> String {
    let mut root = Element::new("cmap").attr("name", &map.name);
    root = root
        .child(conf("min_fontsize_label", map.config.min_font_size_label))
        .child(conf("fontsize_label", map.config.font_size_label))
        .child(conf("fontsize_axes", map.config.font_size_axes));

    for (kind, pair) in map.entries() {
        root = root.child(
            Element::new("task")
                .attr("id", kind)
                .child(color_el("fg", pair.fg))
                .child(color_el("bg", pair.bg)),
        );
    }
    for rule in map.composites() {
        let mut comp = Element::new("composite");
        for t in &rule.types {
            comp = comp.child(Element::new("task").attr("id", t));
        }
        comp = comp
            .child(color_el("fg", rule.colors.fg))
            .child(color_el("bg", rule.colors.bg));
        root = root.child(comp);
    }

    xml::write_document(&root)
}

fn conf(name: &str, value: f64) -> Element {
    let v = if value.fract() == 0.0 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    };
    Element::new("conf").attr("name", name).attr("value", v)
}

fn color_el(ty: &str, c: Color) -> Element {
    Element::new("color")
        .attr("type", ty)
        .attr("rgb", c.to_hex())
}

/// Reads a color map from a file.
pub fn read_colormap_file(path: impl AsRef<Path>) -> Result<ColorMap, IoError> {
    read_colormap(&std::fs::read_to_string(path)?)
}

/// Writes a color map to a file.
pub fn write_colormap(map: &ColorMap, path: impl AsRef<Path>) -> Result<(), IoError> {
    std::fs::write(path, write_colormap_string(map))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 of the paper, verbatim modulo scan whitespace.
    const FIG2: &str = r#"<cmap name="standard_map">
  <conf name="min_fontsize_label" value="11"/>
  <conf name="fontsize_label" value="13"/>
  <conf name="fontsize_axes" value="12"/>
  <task id="computation">
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="0000FF"/>
  </task>
  <task id="transfer">
    <color type="fg" rgb="000000"/>
    <color type="bg" rgb="f10000"/>
  </task>
  <composite>
    <task id="computation"/>
    <task id="transfer"/>
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="ff6200"/>
  </composite>
</cmap>"#;

    #[test]
    fn fig2_parses_to_standard_map() {
        let map = read_colormap(FIG2).unwrap();
        assert_eq!(map, ColorMap::standard());
    }

    #[test]
    fn roundtrip() {
        let map = ColorMap::standard();
        let text = write_colormap_string(&map);
        assert_eq!(read_colormap(&text).unwrap(), map);
    }

    #[test]
    fn font_config_parsed() {
        let map = read_colormap(FIG2).unwrap();
        assert_eq!(map.config.min_font_size_label, 11.0);
        assert_eq!(map.config.font_size_label, 13.0);
        assert_eq!(map.config.font_size_axes, 12.0);
    }

    #[test]
    fn missing_fg_defaults_to_contrast() {
        let src = r#"<cmap name="m"><task id="x"><color type="bg" rgb="000000"/></task></cmap>"#;
        let map = read_colormap(src).unwrap();
        assert_eq!(map.get("x").unwrap().fg, Color::WHITE);
    }

    #[test]
    fn missing_bg_rejected() {
        let src = r#"<cmap name="m"><task id="x"><color type="fg" rgb="000000"/></task></cmap>"#;
        assert!(read_colormap(src).is_err());
    }

    #[test]
    fn bad_color_type_rejected() {
        let src =
            r#"<cmap name="m"><task id="x"><color type="border" rgb="000000"/></task></cmap>"#;
        assert!(read_colormap(src).is_err());
    }

    #[test]
    fn empty_composite_rejected() {
        let src = r#"<cmap name="m"><composite><color type="bg" rgb="000000"/></composite></cmap>"#;
        assert!(read_colormap(src).is_err());
    }

    #[test]
    fn bad_rgb_rejected() {
        let src = r#"<cmap name="m"><task id="x"><color type="bg" rgb="zzz"/></task></cmap>"#;
        assert!(read_colormap(src).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(read_colormap("<colors/>").is_err());
    }
}
