//! Chrome trace-event JSON as a *schedule input format*.
//!
//! `jedule_core::obs` exports pipeline profiles as Chrome trace-event
//! JSON (`--profile out.json`). This module closes the loop: it reads
//! such a trace back as a [`Schedule`] — one cluster of "hosts" (the
//! threads of the trace), one task per event — so Jedule can render its
//! own pipeline as a Gantt chart, exactly the round trip the Gantt task
//! taxonomy literature motivates.
//!
//! Accepted input is the JSON Object Format (`{"traceEvents": […]}`) or
//! the bare JSON Array Format. Supported events:
//!
//! * `ph:"X"` complete events (`ts` + `dur`, microseconds), and
//! * `ph:"B"`/`ph:"E"` duration pairs, matched per `(pid, tid)` in
//!   stack order as the trace-event spec prescribes.
//!
//! Everything else (metadata, counters, instant events) is skipped.
//! Timestamps are converted to seconds and shifted so the earliest event
//! starts at 0; each distinct `(pid, tid)` becomes one host row in
//! first-appearance order.

use crate::error::IoError;
use crate::json::{self, Json};
use jedule_core::{Allocation, Schedule, ScheduleBuilder, Task};

/// One event extracted from the trace: name, host row, seconds.
struct Event {
    name: String,
    row: u32,
    start_us: f64,
    end_us: f64,
}

fn num_or_str_key(v: Option<&Json>) -> String {
    match v {
        Some(Json::Num(n)) => format!("{n}"),
        Some(Json::Str(s)) => s.clone(),
        _ => "0".to_string(),
    }
}

/// Parses Chrome trace-event JSON into a schedule (cluster 0 "threads",
/// one host per `(pid, tid)` lane, one task per duration event).
pub fn read_chrome_trace(src: &str) -> Result<Schedule, IoError> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .or_else(|| doc.as_arr())
        .ok_or_else(|| {
            IoError::format("chrome trace: expected {\"traceEvents\": [...]} or a top-level array")
        })?;

    let mut rows: Vec<String> = Vec::new(); // (pid, tid) keys, first-appearance order
    let mut row_of = |key: String| -> u32 {
        match rows.iter().position(|k| *k == key) {
            Some(i) => i as u32,
            None => {
                rows.push(key);
                (rows.len() - 1) as u32
            }
        }
    };
    // Per-row stack of open B events: (name, start ts).
    let mut open: Vec<Vec<(String, f64)>> = Vec::new();
    let mut out: Vec<Event> = Vec::new();

    for ev in events {
        let Some(ph) = ev.get("ph").and_then(Json::as_str) else {
            continue;
        };
        let lane = format!(
            "{}/{}",
            num_or_str_key(ev.get("pid")),
            num_or_str_key(ev.get("tid"))
        );
        let row = row_of(lane);
        if open.len() <= row as usize {
            open.resize_with(row as usize + 1, Vec::new);
        }
        let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("event")
            .to_string();
        match ph {
            "X" => {
                let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0).max(0.0);
                out.push(Event {
                    name,
                    row,
                    start_us: ts,
                    end_us: ts + dur,
                });
            }
            "B" => open[row as usize].push((name, ts)),
            "E" => {
                if let Some((bname, bts)) = open[row as usize].pop() {
                    out.push(Event {
                        name: bname,
                        row,
                        start_us: bts,
                        end_us: ts.max(bts),
                    });
                }
            }
            _ => {}
        }
    }

    if out.is_empty() {
        return Err(IoError::format(
            "chrome trace: no duration events (ph \"X\" or \"B\"/\"E\") found",
        ));
    }

    let t0 = out.iter().map(|e| e.start_us).fold(f64::INFINITY, f64::min);
    // Stable event order: by start, then row — the builder keeps task
    // declaration order, and deterministic order keeps renders stable.
    out.sort_by(|a, b| {
        a.start_us
            .total_cmp(&b.start_us)
            .then(a.row.cmp(&b.row))
            .then(a.end_us.total_cmp(&b.end_us))
    });

    let mut b = ScheduleBuilder::new()
        .cluster(0, "threads", rows.len() as u32)
        .meta("source", "chrome-trace");
    for (i, e) in out.iter().enumerate() {
        let start = (e.start_us - t0) / 1e6;
        let end = (e.end_us - t0) / 1e6;
        b = b.task(
            Task::new(format!("e{i}"), e.name.clone(), start, end)
                .on(Allocation::contiguous(0, e.row, 1)),
        );
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_object_form_complete_events() {
        let src = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"ingest","cat":"jedule","ph":"X","ts":1000.0,"dur":500.0,"pid":1,"tid":1},
            {"name":"render","cat":"jedule","ph":"X","ts":1500.0,"dur":2500.0,"pid":1,"tid":1},
            {"name":"chunk","cat":"jedule","ph":"X","ts":1100.0,"dur":200.0,"pid":1,"tid":2}
        ],"otherData":{"counters":{"n":3}}}"#;
        let s = read_chrome_trace(src).unwrap();
        assert_eq!(s.clusters.len(), 1);
        assert_eq!(s.clusters[0].hosts, 2); // tids 1 and 2
        assert_eq!(s.tasks.len(), 3);
        // Earliest event shifted to t = 0, µs → s.
        let ingest = s.tasks.iter().find(|t| t.kind == "ingest").unwrap();
        assert_eq!(ingest.start, 0.0);
        assert!((ingest.end - 500e-6).abs() < 1e-12);
        let chunk = s.tasks.iter().find(|t| t.kind == "chunk").unwrap();
        assert_eq!(chunk.allocations[0].hosts.ranges()[0].start, 1);
        assert_eq!(s.meta.get("source"), Some("chrome-trace"));
    }

    #[test]
    fn reads_array_form_and_be_pairs() {
        let src = r#"[
            {"name":"outer","ph":"B","ts":0,"pid":1,"tid":7},
            {"name":"inner","ph":"B","ts":10,"pid":1,"tid":7},
            {"name":"inner","ph":"E","ts":30,"pid":1,"tid":7},
            {"name":"outer","ph":"E","ts":100,"pid":1,"tid":7},
            {"name":"meta","ph":"M","ts":0,"pid":1,"tid":7}
        ]"#;
        let s = read_chrome_trace(src).unwrap();
        assert_eq!(s.tasks.len(), 2);
        let outer = s.tasks.iter().find(|t| t.kind == "outer").unwrap();
        let inner = s.tasks.iter().find(|t| t.kind == "inner").unwrap();
        assert_eq!(outer.start, 0.0);
        assert!((outer.end - 100e-6).abs() < 1e-12);
        assert!(inner.start >= outer.start && inner.end <= outer.end);
    }

    #[test]
    fn rejects_event_free_input() {
        assert!(read_chrome_trace("{}").is_err());
        assert!(read_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(read_chrome_trace("[1,2,3]").is_err());
        assert!(read_chrome_trace("not json").is_err());
    }

    #[test]
    fn roundtrips_an_obs_export() {
        use jedule_core::obs::Collector;
        let col = Collector::new();
        {
            let _g = col.install();
            let _a = jedule_core::obs::span("ingest");
            let _b = jedule_core::obs::span("ingest.parse");
        }
        let trace = col.report().to_chrome_trace();
        let s = read_chrome_trace(&trace).unwrap();
        assert_eq!(s.tasks.len(), 2);
        assert!(s.tasks.iter().any(|t| t.kind == "ingest"));
        assert!(s.tasks.iter().any(|t| t.kind == "ingest.parse"));
    }
}
