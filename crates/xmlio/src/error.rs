//! I/O and parse errors with source positions.

use jedule_core::CoreError;
use std::fmt;

/// Position in a source document, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced while reading or writing schedule files.
#[derive(Debug)]
pub enum IoError {
    /// Malformed document syntax with a description and position (raised
    /// by both the XML and the JSON mini-parser, hence the neutral
    /// display label).
    Xml { msg: String, pos: Pos },
    /// Structurally valid XML that is not a valid Jedule document.
    Format(String),
    /// A field failed to parse as a number.
    Number { field: String, value: String },
    /// Semantic error from the core model.
    Core(CoreError),
    /// Underlying file-system error.
    Io(std::io::Error),
}

impl IoError {
    pub fn xml(msg: impl Into<String>, pos: Pos) -> Self {
        IoError::Xml {
            msg: msg.into(),
            pos,
        }
    }

    pub fn format(msg: impl Into<String>) -> Self {
        IoError::Format(msg.into())
    }

    pub fn number(field: impl Into<String>, value: impl Into<String>) -> Self {
        IoError::Number {
            field: field.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Xml { msg, pos } => write!(f, "parse error at {pos}: {msg}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
            IoError::Number { field, value } => {
                write!(f, "cannot parse {field}={value:?} as a number")
            }
            IoError::Core(e) => write!(f, "schedule error: {e}"),
            IoError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<CoreError> for IoError {
    fn from(e: CoreError) -> Self {
        IoError::Core(e)
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
