//! # jedule-xmlio
//!
//! Input/output formats of the Jedule reproduction.
//!
//! Jedule is bundled with a parser for its custom XML input format and
//! "one can also extend Jedule with a different parser … not necessarily
//! in XML" (paper, §II-C1). Accordingly this crate provides:
//!
//! * `xml` — a from-scratch, dependency-free XML subset parser and writer
//!   (elements, attributes, comments, CDATA, character references) with
//!   line/column error reporting.
//! * `jedule_xml` — the Jedule schedule format of Fig. 1
//!   (`<node_statistics>` with `<node_property>`, `<configuration>`,
//!   `<host_lists>`, plus platform header and `<meta_info>`).
//! * `cmap_xml` — the color-map format of Fig. 2 (`<cmap>`, `<task>`,
//!   `<color type="fg|bg" rgb="RRGGBB">`, `<composite>`).
//! * `parser` — the pluggable [`ScheduleParser`] trait with a format
//!   registry, plus alternative built-in formats: a CSV dialect
//!   (`csvfmt`), JSON lines (`jsonl`, backed by the `json` mini-parser),
//!   and Chrome trace-event JSON (`chrome`) so profiles exported by
//!   `jedule --profile` can be rendered back as schedules.

pub mod chrome;
pub mod cmap_xml;
pub mod csvfmt;
pub mod error;
pub(crate) mod ingest;
pub mod jedule_xml;
pub mod json;
pub mod jsonl;
pub mod parser;
pub mod stream;
pub mod xml;

/// True for a whole-line XML-style comment (`<!-- ... -->`). Converter
/// tools prepend such banner lines to exports; the line-oriented CSV and
/// JSONL readers skip them like `#` comments so a banner never turns a
/// parsable file into a parse error (see `parser::parse_any`).
pub(crate) fn is_banner_comment(line: &str) -> bool {
    line.starts_with("<!--") && line.ends_with("-->")
}

pub use chrome::read_chrome_trace;
pub use cmap_xml::{read_colormap, write_colormap_string};
pub use csvfmt::{read_schedule_csv, read_schedule_csv_parallel, write_schedule_csv};
pub use error::IoError;
pub use jedule_xml::{read_schedule, read_schedule_file, write_schedule, write_schedule_string};
pub use jsonl::{read_schedule_jsonl, read_schedule_jsonl_parallel, write_schedule_jsonl};
pub use parser::{detect_format, parse_any, parse_any_parallel, Format, ScheduleParser};
pub use stream::{read_schedule_streaming, stream_schedule, StreamEvent};
