//! A from-scratch XML subset parser and writer.
//!
//! Supports what the Jedule formats need (and a bit more): elements with
//! single- or double-quoted attributes, self-closing tags, text nodes,
//! comments, CDATA sections, processing instructions, a skipped DOCTYPE,
//! and the five predefined entities plus numeric character references.
//! Namespaces are treated as plain name prefixes. Errors carry 1-based
//! line/column positions.

use crate::error::{IoError, Pos};

/// A DOM node: element or text.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Element(Element),
    Text(String),
}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Node>,
}

impl Element {
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder: adds a child element.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: adds a text child.
    pub fn text_child(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Attribute value by name.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute value or a format error naming the element.
    pub fn require_attr(&self, name: &str) -> Result<&str, IoError> {
        self.get_attr(name).ok_or_else(|| {
            IoError::format(format!(
                "<{}> is missing required attribute {name:?}",
                self.name
            ))
        })
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// All child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Concatenated text content of direct text children.
    pub fn text(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Scanner<'a> {
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Scanner {
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.i..].starts_with(s.as_bytes())
    }

    fn consume(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), IoError> {
        if self.consume(s) {
            Ok(())
        } else {
            Err(IoError::xml(format!("expected {s:?}"), self.pos()))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Consumes until the delimiter string, returning the consumed slice
    /// (delimiter excluded but consumed).
    fn until(&mut self, delim: &str) -> Result<String, IoError> {
        let start = self.i;
        let at = self.pos();
        while self.peek().is_some() {
            if self.starts_with(delim) {
                let s = std::str::from_utf8(&self.bytes[start..self.i])
                    .map_err(|_| IoError::xml("invalid UTF-8", at))?
                    .to_owned();
                self.expect(delim)?;
                return Ok(s);
            }
            self.bump();
        }
        Err(IoError::xml(
            format!("unterminated section, expected {delim:?}"),
            at,
        ))
    }

    fn name(&mut self) -> Result<String, IoError> {
        let start = self.i;
        let at = self.pos();
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.bump();
        }
        if self.i == start {
            return Err(IoError::xml("expected a name", at));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| IoError::xml("invalid UTF-8 in name", at))?
            .to_owned())
    }
}

/// Decodes the predefined entities and numeric character references.
pub fn unescape(raw: &str, at: Pos) -> Result<String, IoError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| IoError::xml("unterminated entity reference", at))?;
        let ent = &rest[1..end];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let v = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| IoError::xml(format!("bad character reference &{ent};"), at))?;
                out.push(
                    char::from_u32(v)
                        .ok_or_else(|| IoError::xml(format!("invalid code point &{ent};"), at))?,
                );
            }
            _ if ent.starts_with('#') => {
                let v: u32 = ent[1..]
                    .parse()
                    .map_err(|_| IoError::xml(format!("bad character reference &{ent};"), at))?;
                out.push(
                    char::from_u32(v)
                        .ok_or_else(|| IoError::xml(format!("invalid code point &{ent};"), at))?,
                );
            }
            _ => {
                return Err(IoError::xml(format!("unknown entity &{ent};"), at));
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escapes text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quote convention).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Parses a document and returns its root element.
pub fn parse(src: &str) -> Result<Element, IoError> {
    let mut sc = Scanner::new(src);
    skip_misc(&mut sc)?;
    let at = sc.pos();
    if sc.peek() != Some(b'<') {
        return Err(IoError::xml("expected root element", at));
    }
    let root = parse_element(&mut sc)?;
    skip_misc(&mut sc)?;
    if sc.peek().is_some() {
        return Err(IoError::xml(
            "trailing content after root element",
            sc.pos(),
        ));
    }
    Ok(root)
}

/// Skips whitespace, comments, processing instructions and DOCTYPE.
fn skip_misc(sc: &mut Scanner) -> Result<(), IoError> {
    loop {
        sc.skip_ws();
        if sc.starts_with("<!--") {
            sc.expect("<!--")?;
            sc.until("-->")?;
        } else if sc.starts_with("<?") {
            sc.expect("<?")?;
            sc.until("?>")?;
        } else if sc.starts_with("<!DOCTYPE") || sc.starts_with("<!doctype") {
            // Skip until the matching '>', allowing one bracket nesting
            // level for an internal subset.
            for _ in 0..9 {
                sc.bump();
            }
            let mut depth = 0i32;
            loop {
                match sc.bump() {
                    Some(b'[') => depth += 1,
                    Some(b']') => depth -= 1,
                    Some(b'>') if depth <= 0 => break,
                    Some(_) => {}
                    None => return Err(IoError::xml("unterminated DOCTYPE", sc.pos())),
                }
            }
        } else {
            return Ok(());
        }
    }
}

fn parse_element(sc: &mut Scanner) -> Result<Element, IoError> {
    sc.expect("<")?;
    let name = sc.name()?;
    let mut el = Element::new(name);

    // Attributes.
    loop {
        sc.skip_ws();
        match sc.peek() {
            Some(b'/') => {
                sc.expect("/>")?;
                return Ok(el);
            }
            Some(b'>') => {
                sc.bump();
                break;
            }
            Some(_) => {
                let at = sc.pos();
                let aname = sc.name()?;
                sc.skip_ws();
                sc.expect("=")?;
                sc.skip_ws();
                let quote = match sc.bump() {
                    Some(q @ (b'"' | b'\'')) => q,
                    _ => return Err(IoError::xml("expected quoted attribute value", at)),
                };
                let raw = sc.until(if quote == b'"' { "\"" } else { "'" })?;
                el.attrs.push((aname, unescape(&raw, at)?));
            }
            None => return Err(IoError::xml("unterminated start tag", sc.pos())),
        }
    }

    // Children.
    let mut text_buf = String::new();
    loop {
        if sc.starts_with("</") {
            flush_text(&mut el, &mut text_buf);
            sc.expect("</")?;
            let at = sc.pos();
            let close = sc.name()?;
            if close != el.name {
                return Err(IoError::xml(
                    format!("mismatched closing tag </{close}> for <{}>", el.name),
                    at,
                ));
            }
            sc.skip_ws();
            sc.expect(">")?;
            return Ok(el);
        } else if sc.starts_with("<!--") {
            sc.expect("<!--")?;
            sc.until("-->")?;
        } else if sc.starts_with("<![CDATA[") {
            sc.expect("<![CDATA[")?;
            let raw = sc.until("]]>")?;
            text_buf.push_str(&raw);
        } else if sc.starts_with("<?") {
            sc.expect("<?")?;
            sc.until("?>")?;
        } else if sc.starts_with("<") {
            flush_text(&mut el, &mut text_buf);
            let child = parse_element(sc)?;
            el.children.push(Node::Element(child));
        } else {
            let at = sc.pos();
            match sc.peek() {
                None => return Err(IoError::xml(format!("unclosed element <{}>", el.name), at)),
                Some(_) => {
                    let start = sc.i;
                    while sc.peek().is_some() && sc.peek() != Some(b'<') {
                        sc.bump();
                    }
                    let raw = std::str::from_utf8(&sc.bytes[start..sc.i])
                        .map_err(|_| IoError::xml("invalid UTF-8 in text", at))?;
                    text_buf.push_str(&unescape(raw, at)?);
                }
            }
        }
    }
}

fn flush_text(el: &mut Element, buf: &mut String) {
    if !buf.trim().is_empty() {
        el.children.push(Node::Text(std::mem::take(buf)));
    } else {
        buf.clear();
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes an element as a pretty-printed document with XML prolog.
pub fn write_document(root: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element(root, 0, &mut out);
    out
}

/// Serializes one element (no prolog) at the given indent depth.
pub fn write_element(el: &Element, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    let only_text = el.children.iter().all(|n| matches!(n, Node::Text(_)));
    if only_text {
        out.push('>');
        for n in &el.children {
            if let Node::Text(t) = n {
                out.push_str(&escape_text(t));
            }
        }
        out.push_str("</");
        out.push_str(&el.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for n in &el.children {
        match n {
            Node::Element(c) => write_element(c, depth + 1, out),
            Node::Text(t) => {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&escape_text(t));
                out.push('\n');
            }
        }
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_structure() {
        // The paper's Fig. 1 XML (whitespace in the scan normalized).
        let src = r#"
<node_statistics>
  <node_property name="id" value="1"/>
  <node_property name="type" value="computation"/>
  <node_property name="start_time" value="0.000"/>
  <node_property name="end_time" value="0.310"/>
  <configuration>
    <conf_property name="cluster_id" value="0"/>
    <conf_property name="host_nb" value="8"/>
    <host_lists>
      <hosts start="0" nb="8"/>
    </host_lists>
  </configuration>
</node_statistics>"#;
        let el = parse(src).unwrap();
        assert_eq!(el.name, "node_statistics");
        assert_eq!(el.find_all("node_property").count(), 4);
        let conf = el.find("configuration").unwrap();
        let hosts = conf.find("host_lists").unwrap().find("hosts").unwrap();
        assert_eq!(hosts.get_attr("start"), Some("0"));
        assert_eq!(hosts.get_attr("nb"), Some("8"));
    }

    #[test]
    fn roundtrip_through_writer() {
        let el = Element::new("root")
            .attr("a", "1")
            .child(Element::new("child").attr("x", "y<z&\"q\""))
            .child(Element::new("t").text_child("hello <world> & co"));
        let doc = write_document(&el);
        let back = parse(&doc).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn prolog_comments_doctype_skipped() {
        let src = r#"<?xml version="1.0"?>
<!DOCTYPE jedule [ <!ELEMENT jedule ANY> ]>
<!-- a comment -->
<jedule><!-- inner --><a/></jedule>"#;
        let el = parse(src).unwrap();
        assert_eq!(el.name, "jedule");
        assert_eq!(el.elements().count(), 1);
    }

    #[test]
    fn cdata_becomes_text() {
        let el = parse("<x><![CDATA[a < b && c]]></x>").unwrap();
        assert_eq!(el.text(), "a < b && c");
    }

    #[test]
    fn entities_decoded() {
        let el = parse(r#"<x a="&lt;&amp;&quot;&#65;&#x42;">&gt;&apos;</x>"#).unwrap();
        assert_eq!(el.get_attr("a"), Some("<&\"AB"));
        assert_eq!(el.text(), ">'");
    }

    #[test]
    fn single_quoted_attributes() {
        let el = parse("<x a='v1' b=\"v2\"/>").unwrap();
        assert_eq!(el.get_attr("a"), Some("v1"));
        assert_eq!(el.get_attr("b"), Some("v2"));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        match err {
            IoError::Xml { pos, .. } => {
                assert_eq!(pos.line, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mismatched_tag_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_rejected() {
        for bad in [
            "<a>",
            "<a",
            "<a x=>",
            "<a x='1'",
            "<!-- foo",
            "<a>&unknown;</a>",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let el = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(el.children.len(), 2);
    }

    #[test]
    fn require_attr_errors_helpfully() {
        let el = parse("<hosts start=\"0\"/>").unwrap();
        let err = el.require_attr("nb").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("hosts") && msg.contains("nb"), "{msg}");
    }

    #[test]
    fn deep_nesting() {
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("<n{i}>"));
        }
        for i in (0..200).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let el = parse(&src).unwrap();
        assert_eq!(el.name, "n0");
    }
}
