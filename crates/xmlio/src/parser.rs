//! Pluggable schedule parsers.
//!
//! The original Jedule ships with an XML parser but is explicitly designed
//! so that "it is … possible to have different input formats, not
//! necessarily in XML" (paper, §II-C1). [`ScheduleParser`] is that
//! extension point; the three built-in formats register themselves and
//! [`parse_any`] sniffs which one applies.

use crate::chrome;
use crate::csvfmt;
use crate::error::IoError;
use crate::jedule_xml;
use crate::jsonl;
use jedule_core::{obs, Schedule};
use std::path::Path;

/// Identifier of a built-in format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The paper's XML format (Fig. 1).
    JeduleXml,
    /// The CSV dialect.
    Csv,
    /// Chrome trace-event JSON (as exported by `--profile`), read back
    /// as a schedule of one task per duration event.
    ChromeTrace,
    /// JSON lines.
    JsonLines,
}

impl Format {
    pub fn name(&self) -> &'static str {
        match self {
            Format::JeduleXml => "jedule-xml",
            Format::Csv => "csv",
            Format::ChromeTrace => "chrome-trace",
            Format::JsonLines => "jsonl",
        }
    }

    /// All built-in formats. `ChromeTrace` sorts before `JsonLines`: a
    /// one-line trace document also looks like a `{`-opened JSONL line,
    /// and candidate order is what breaks such ties in [`parse_any`].
    pub fn all() -> [Format; 4] {
        [
            Format::JeduleXml,
            Format::Csv,
            Format::ChromeTrace,
            Format::JsonLines,
        ]
    }
}

/// A parser for one schedule input format. Implement this trait to plug a
/// custom format into the CLI and library entry points.
pub trait ScheduleParser {
    /// Short format name (used in CLI `--format` flags).
    fn name(&self) -> &str;

    /// Quick syntactic sniff: could `src` be this format?
    fn sniff(&self, src: &str) -> bool;

    /// Full parse.
    fn parse(&self, src: &str) -> Result<Schedule, IoError>;

    /// Serialize (optional; formats may be read-only).
    fn write(&self, _schedule: &Schedule) -> Option<String> {
        None
    }
}

/// The first few lines a sniffer considers significant: non-empty after
/// trimming and not `#` comments (which the CSV and JSONL readers skip).
fn significant_lines(src: &str) -> impl Iterator<Item = &str> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .take(8)
}

struct XmlParser;

impl ScheduleParser for XmlParser {
    fn name(&self) -> &str {
        "jedule-xml"
    }

    fn sniff(&self, src: &str) -> bool {
        significant_lines(src)
            .any(|l| l.starts_with("<?xml") || l.starts_with("<jedule") || l.starts_with("<!--"))
    }

    fn parse(&self, src: &str) -> Result<Schedule, IoError> {
        jedule_xml::read_schedule(src)
    }

    fn write(&self, schedule: &Schedule) -> Option<String> {
        Some(jedule_xml::write_schedule_string(schedule))
    }
}

struct CsvParser;

impl ScheduleParser for CsvParser {
    fn name(&self) -> &str {
        "csv"
    }

    fn sniff(&self, src: &str) -> bool {
        significant_lines(src)
            .any(|l| l.starts_with("cluster,") || l.starts_with("task,") || l.starts_with("meta,"))
    }

    fn parse(&self, src: &str) -> Result<Schedule, IoError> {
        csvfmt::read_schedule_csv(src)
    }

    fn write(&self, schedule: &Schedule) -> Option<String> {
        Some(csvfmt::write_schedule_csv(schedule))
    }
}

struct ChromeTraceParser;

impl ScheduleParser for ChromeTraceParser {
    fn name(&self) -> &str {
        "chrome-trace"
    }

    fn sniff(&self, src: &str) -> bool {
        // Object form carries a "traceEvents" key; array form opens with
        // `[` and its events carry the mandatory "ph" phase key.
        let head: String = src.chars().take(4096).collect();
        head.contains("\"traceEvents\"")
            || (head.trim_start().starts_with('[') && head.contains("\"ph\""))
    }

    fn parse(&self, src: &str) -> Result<Schedule, IoError> {
        chrome::read_chrome_trace(src)
    }
}

struct JsonlParser;

impl ScheduleParser for JsonlParser {
    fn name(&self) -> &str {
        "jsonl"
    }

    fn sniff(&self, src: &str) -> bool {
        significant_lines(src).any(|l| l.starts_with('{'))
    }

    fn parse(&self, src: &str) -> Result<Schedule, IoError> {
        jsonl::read_schedule_jsonl(src)
    }

    fn write(&self, schedule: &Schedule) -> Option<String> {
        Some(jsonl::write_schedule_jsonl(schedule))
    }
}

/// Returns the built-in parser for a format.
pub fn builtin(format: Format) -> Box<dyn ScheduleParser> {
    match format {
        Format::JeduleXml => Box::new(XmlParser),
        Format::Csv => Box::new(CsvParser),
        Format::ChromeTrace => Box::new(ChromeTraceParser),
        Format::JsonLines => Box::new(JsonlParser),
    }
}

/// The format implied by a file extension, if any.
fn format_from_extension(path: &Path) -> Option<Format> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("jed" | "xml" | "jedule") => Some(Format::JeduleXml),
        Some("csv") => Some(Format::Csv),
        Some("jsonl" | "ndjson") => Some(Format::JsonLines),
        _ => None,
    }
}

/// Every built-in format whose sniffer matches `src`, in the fixed,
/// deterministic [`Format::all`] order. Content can legitimately match
/// more than one sniffer (e.g. an XML-style `<!--` comment header above
/// JSON lines); callers that need exactly one format must disambiguate —
/// [`parse_any`] does so by attempting the candidates in this order.
pub fn detect_formats(src: &str) -> Vec<Format> {
    Format::all()
        .into_iter()
        .filter(|f| builtin(*f).sniff(src))
        .collect()
}

/// Sniffs the format of `src`; file `path` extension (if given) wins.
/// When several sniffers match, the first in [`Format::all`] order is
/// returned (use [`detect_formats`] to see every candidate).
pub fn detect_format(src: &str, path: Option<&Path>) -> Option<Format> {
    if let Some(f) = path.and_then(format_from_extension) {
        return Some(f);
    }
    detect_formats(src).into_iter().next()
}

/// Parses `src` with format auto-detection.
///
/// A trusted file extension selects the parser outright. Otherwise every
/// sniffer is consulted in deterministic order; if more than one format
/// matches, the candidates are attempted in that order and the first
/// successful parse wins, so ambiguous-looking input (say, a JSONL file
/// under an XML-comment banner) still routes to the format that can
/// actually read it. If all candidates fail, the error names each
/// format that matched and why it failed.
pub fn parse_any(src: &str, path: Option<&Path>) -> Result<Schedule, IoError> {
    parse_any_parallel(src, path, 1)
}

/// Parses one format with the given ingest thread count. The
/// line-oriented formats (CSV, JSONL) route through their chunked
/// parallel readers; XML is a document format and always parses
/// sequentially.
fn parse_threads(format: Format, src: &str, threads: usize) -> Result<Schedule, IoError> {
    let _s = obs::span_with("ingest.parse", || format.name().to_string());
    obs::count("ingest.bytes", src.len() as u64);
    let parsed = match format {
        Format::JeduleXml => jedule_xml::read_schedule(src),
        Format::Csv => csvfmt::read_schedule_csv_parallel(src, threads),
        Format::ChromeTrace => chrome::read_chrome_trace(src),
        Format::JsonLines => jsonl::read_schedule_jsonl_parallel(src, threads),
    };
    if let Ok(s) = &parsed {
        obs::count("ingest.tasks_parsed", s.tasks.len() as u64);
    }
    parsed
}

/// [`parse_any`] with a `threads` knob (`0` auto, `1` sequential, `n`
/// workers) for the line-oriented formats. Detection, candidate order,
/// results and errors are identical to [`parse_any`] for every thread
/// count — only wall-clock time changes.
pub fn parse_any_parallel(
    src: &str,
    path: Option<&Path>,
    threads: usize,
) -> Result<Schedule, IoError> {
    if let Some(f) = path.and_then(format_from_extension) {
        return parse_threads(f, src, threads);
    }
    let candidates = detect_formats(src);
    match candidates.as_slice() {
        [] => Err(IoError::format("cannot detect schedule input format")),
        [only] => parse_threads(*only, src, threads),
        several => {
            let mut failures = Vec::with_capacity(several.len());
            for f in several {
                match parse_threads(*f, src, threads) {
                    Ok(schedule) => return Ok(schedule),
                    Err(e) => failures.push(format!("{}: {e}", f.name())),
                }
            }
            let names: Vec<&str> = several.iter().map(|f| f.name()).collect();
            Err(IoError::format(format!(
                "ambiguous input sniffed as {} formats ({}); every candidate failed to parse: {}",
                names.len(),
                names.join(", "),
                failures.join("; ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jedule_xml::write_schedule_string;
    use jedule_core::{Allocation, ScheduleBuilder, Task};

    fn sample() -> Schedule {
        ScheduleBuilder::new()
            .cluster(0, "c0", 4)
            .task(Task::new("t", "x", 0.0, 1.0).on(Allocation::contiguous(0, 0, 4)))
            .build()
            .unwrap()
    }

    #[test]
    fn detect_by_content() {
        let s = sample();
        let xml = write_schedule_string(&s);
        assert_eq!(detect_format(&xml, None), Some(Format::JeduleXml));
        let csv = crate::csvfmt::write_schedule_csv(&s);
        assert_eq!(detect_format(&csv, None), Some(Format::Csv));
        let jl = crate::jsonl::write_schedule_jsonl(&s);
        assert_eq!(detect_format(&jl, None), Some(Format::JsonLines));
        assert_eq!(detect_format("random text", None), None);
    }

    #[test]
    fn detect_by_extension_wins() {
        let p = Path::new("x.csv");
        assert_eq!(detect_format("<jedule/>", Some(p)), Some(Format::Csv));
    }

    #[test]
    fn parse_any_roundtrips_all_writable_formats() {
        let s = sample();
        let mut writable = 0;
        for f in Format::all() {
            // Chrome trace is read-only (it ingests `--profile` exports).
            let Some(text) = builtin(f).write(&s) else {
                assert_eq!(f, Format::ChromeTrace);
                continue;
            };
            writable += 1;
            let back = parse_any(&text, None).unwrap();
            assert_eq!(back, s, "format {}", f.name());
        }
        assert_eq!(writable, 3);
    }

    #[test]
    fn chrome_trace_sniffs_and_parses_via_parse_any() {
        let src = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}]}"#;
        assert_eq!(detect_format(src, None), Some(Format::ChromeTrace));
        let s = parse_any(src, None).unwrap();
        assert_eq!(s.tasks.len(), 1);
        assert_eq!(s.tasks[0].kind, "a");
    }

    #[test]
    fn parse_any_rejects_unknown() {
        assert!(parse_any("????", None).is_err());
    }

    #[test]
    fn ambiguous_xml_jsonl_routes_to_the_parsing_format() {
        // An XML-comment banner above JSON lines sniffs as both
        // jedule-xml and jsonl; only jsonl can actually parse it.
        let s = sample();
        let src = format!(
            "<!-- exported from jedule -->\n{}",
            crate::jsonl::write_schedule_jsonl(&s)
        );
        let formats = detect_formats(&src);
        assert_eq!(formats, vec![Format::JeduleXml, Format::JsonLines]);
        // Pre-fix, detect_format returned JeduleXml and parse_any failed.
        let back = parse_any(&src, None).expect("routes to jsonl");
        assert_eq!(back, s);
    }

    #[test]
    fn ambiguous_xml_csv_routes_to_the_parsing_format() {
        let s = sample();
        let src = format!(
            "<!-- exported from jedule -->\n{}",
            crate::csvfmt::write_schedule_csv(&s)
        );
        let formats = detect_formats(&src);
        assert_eq!(formats, vec![Format::JeduleXml, Format::Csv]);
        let back = parse_any(&src, None).expect("routes to csv");
        assert_eq!(back, s);
    }

    #[test]
    fn ambiguous_csv_jsonl_reports_matched_formats_when_all_fail() {
        // First line looks like CSV, second like JSONL; neither parser
        // accepts the whole document, and the error must say which
        // formats were sniffed.
        let src = "cluster,0,c0,4\n{\"rec\":\"bogus\"}\n";
        let formats = detect_formats(src);
        assert_eq!(formats, vec![Format::Csv, Format::JsonLines]);
        let err = parse_any(src, None).unwrap_err().to_string();
        assert!(err.contains("csv"), "error should name csv: {err}");
        assert!(err.contains("jsonl"), "error should name jsonl: {err}");
    }

    #[test]
    fn detect_formats_order_is_deterministic() {
        // All three sniffers match this input; the candidate list must
        // always come back in Format::all() order.
        let src = "<!-- banner -->\ncluster,0,c0,4\n{\"rec\":\"meta\"}\n";
        for _ in 0..10 {
            assert_eq!(
                detect_formats(src),
                vec![Format::JeduleXml, Format::Csv, Format::JsonLines]
            );
        }
    }

    #[test]
    fn custom_parser_trait_object() {
        // A user-supplied parser: one task per line "<id> <start> <end>".
        struct Tiny;
        impl ScheduleParser for Tiny {
            fn name(&self) -> &str {
                "tiny"
            }
            fn sniff(&self, _: &str) -> bool {
                true
            }
            fn parse(&self, src: &str) -> Result<Schedule, IoError> {
                let mut b = ScheduleBuilder::new().cluster(0, "c", 1);
                for l in src.lines() {
                    let mut it = l.split_whitespace();
                    let id = it.next().unwrap_or("?");
                    let s: f64 = it.next().unwrap_or("0").parse().unwrap_or(0.0);
                    let e: f64 = it.next().unwrap_or("0").parse().unwrap_or(0.0);
                    b = b.task(Task::new(id, "t", s, e).on(Allocation::contiguous(0, 0, 1)));
                }
                Ok(b.build()?)
            }
        }
        let p: Box<dyn ScheduleParser> = Box::new(Tiny);
        let s = p.parse("a 0 1\nb 1 2\n").unwrap();
        assert_eq!(s.tasks.len(), 2);
        assert!(p.write(&s).is_none());
    }
}
